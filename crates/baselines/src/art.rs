//! An Adaptive Radix Tree (ART) index [Leis et al., ICDE'13], the third
//! competitor of the paper's evaluation.
//!
//! Keys are the workload's fixed 8-byte integers, encoded big-endian with the
//! sign bit flipped so that byte-wise (radix) order equals numeric order. The
//! tree uses the four classic adaptive node types — `Node4`, `Node16`,
//! `Node48` and `Node256` — which grow as children are added. Because keys
//! have a fixed length of 8 bytes, path compression is unnecessary: the tree
//! is at most 8 levels deep.
//!
//! Substitution note (documented in DESIGN.md): the paper's ART uses
//! optimistic lock coupling for synchronisation. Here the radix tree itself is
//! a sequential structure and [`ArtIndex`] wraps it in a readers-writer lock:
//! lookups and scans run concurrently, updates serialise. This underestimates
//! ART's update scalability, which is why the harness's headline
//! "ART/B+-tree" competitor is the lock-coupled [`crate::btree::BPlusTree`];
//! the ART is used for point-lookup comparisons and as a secondary-index
//! building block.

use parking_lot::RwLock;
use pma_common::{ConcurrentMap, Key, ScanStats, Value};

const KEY_LEN: usize = 8;

/// Encodes a signed key so byte-wise lexicographic order equals numeric order.
#[inline]
fn key_bytes(key: Key) -> [u8; KEY_LEN] {
    ((key as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// One node of the radix tree.
//
// A `Box<ArtNode>` allocates the size of the *largest* variant, so the child
// arrays of `Node16`/`Node48`/`Node256` are boxed: without that, every boxed
// node — including each of the millions of leaves a large tree holds — would
// cost a ~2 KiB allocation (the `Node256` child array), which made ART bulk
// loads crawl. With the arrays out of line the enum stays under 64 bytes
// (asserted by `art_node_stays_small`), at the price of one extra pointer
// chase on the descent path of the three larger node types. `Node4`, the most
// common inner node, keeps its children inline.
#[derive(Debug)]
enum ArtNode {
    /// A full key/value pair.
    Leaf { key: Key, value: Value },
    /// Up to 4 children, keys kept sorted.
    Node4 {
        len: u8,
        keys: [u8; 4],
        children: [Option<Box<ArtNode>>; 4],
    },
    /// Up to 16 children, keys kept sorted.
    Node16 {
        len: u8,
        keys: [u8; 16],
        children: Box<[Option<Box<ArtNode>>; 16]>,
    },
    /// Up to 48 children, indexed through a 256-entry indirection array.
    Node48 {
        len: u8,
        /// `index[byte]` is the child slot + 1 (0 = absent).
        index: Box<[u8; 256]>,
        children: Box<[Option<Box<ArtNode>>; 48]>,
    },
    /// Up to 256 children, directly indexed.
    Node256 {
        len: u16,
        children: Box<[Option<Box<ArtNode>>; 256]>,
    },
}

impl ArtNode {
    fn new_node4() -> ArtNode {
        ArtNode::Node4 {
            len: 0,
            keys: [0; 4],
            children: std::array::from_fn(|_| None),
        }
    }

    /// Finds the child for `byte`.
    fn child(&self, byte: u8) -> Option<&ArtNode> {
        match self {
            ArtNode::Leaf { .. } => None,
            ArtNode::Node4 {
                len,
                keys,
                children,
            } => (0..*len as usize)
                .find(|&i| keys[i] == byte)
                .and_then(|i| children[i].as_deref()),
            ArtNode::Node16 {
                len,
                keys,
                children,
            } => keys[..*len as usize]
                .binary_search(&byte)
                .ok()
                .and_then(|i| children[i].as_deref()),
            ArtNode::Node48 {
                index, children, ..
            } => {
                let slot = index[byte as usize];
                if slot == 0 {
                    None
                } else {
                    children[slot as usize - 1].as_deref()
                }
            }
            ArtNode::Node256 { children, .. } => children[byte as usize].as_deref(),
        }
    }

    fn child_mut(&mut self, byte: u8) -> Option<&mut Box<ArtNode>> {
        match self {
            ArtNode::Leaf { .. } => None,
            ArtNode::Node4 {
                len,
                keys,
                children,
            } => (0..*len as usize)
                .find(|&i| keys[i] == byte)
                .and_then(move |i| children[i].as_mut()),
            ArtNode::Node16 {
                len,
                keys,
                children,
            } => keys[..*len as usize]
                .binary_search(&byte)
                .ok()
                .and_then(move |i| children[i].as_mut()),
            ArtNode::Node48 {
                index, children, ..
            } => {
                let slot = index[byte as usize];
                if slot == 0 {
                    None
                } else {
                    children[slot as usize - 1].as_mut()
                }
            }
            ArtNode::Node256 { children, .. } => children[byte as usize].as_mut(),
        }
    }

    fn is_full(&self) -> bool {
        match self {
            ArtNode::Leaf { .. } => true,
            ArtNode::Node4 { len, .. } => *len as usize >= 4,
            ArtNode::Node16 { len, .. } => *len as usize >= 16,
            ArtNode::Node48 { len, .. } => *len as usize >= 48,
            ArtNode::Node256 { .. } => false,
        }
    }

    /// Grows the node to the next larger type, preserving all children.
    fn grow(&mut self) {
        let grown = match self {
            ArtNode::Node4 {
                len,
                keys,
                children,
            } => {
                let mut new_keys = [0u8; 16];
                let mut new_children: Box<[Option<Box<ArtNode>>; 16]> =
                    Box::new(std::array::from_fn(|_| None));
                for i in 0..*len as usize {
                    new_keys[i] = keys[i];
                    new_children[i] = children[i].take();
                }
                ArtNode::Node16 {
                    len: *len,
                    keys: new_keys,
                    children: new_children,
                }
            }
            ArtNode::Node16 {
                len,
                keys,
                children,
            } => {
                let mut index = Box::new([0u8; 256]);
                let mut new_children: Box<[Option<Box<ArtNode>>; 48]> =
                    Box::new(std::array::from_fn(|_| None));
                for i in 0..*len as usize {
                    index[keys[i] as usize] = (i + 1) as u8;
                    new_children[i] = children[i].take();
                }
                ArtNode::Node48 {
                    len: *len,
                    index,
                    children: new_children,
                }
            }
            ArtNode::Node48 {
                len,
                index,
                children,
            } => {
                let mut new_children: Box<[Option<Box<ArtNode>>; 256]> =
                    Box::new(std::array::from_fn(|_| None));
                for byte in 0..256usize {
                    let slot = index[byte];
                    if slot != 0 {
                        new_children[byte] = children[slot as usize - 1].take();
                    }
                }
                ArtNode::Node256 {
                    len: *len as u16,
                    children: new_children,
                }
            }
            ArtNode::Node256 { .. } | ArtNode::Leaf { .. } => return,
        };
        *self = grown;
    }

    /// Adds a child for `byte`; the caller must ensure the node is not full
    /// and the byte is not present.
    fn add_child(&mut self, byte: u8, child: Box<ArtNode>) {
        match self {
            ArtNode::Node4 {
                len,
                keys,
                children,
            } => {
                let n = *len as usize;
                let pos = keys[..n].iter().position(|&k| k > byte).unwrap_or(n);
                for i in (pos..n).rev() {
                    keys[i + 1] = keys[i];
                    children[i + 1] = children[i].take();
                }
                keys[pos] = byte;
                children[pos] = Some(child);
                *len += 1;
            }
            ArtNode::Node16 {
                len,
                keys,
                children,
            } => {
                let n = *len as usize;
                let pos = keys[..n].binary_search(&byte).unwrap_err();
                for i in (pos..n).rev() {
                    keys[i + 1] = keys[i];
                    children[i + 1] = children[i].take();
                }
                keys[pos] = byte;
                children[pos] = Some(child);
                *len += 1;
            }
            ArtNode::Node48 {
                len,
                index,
                children,
            } => {
                let slot = (0..48)
                    .position(|i| children[i].is_none())
                    .expect("node48 has room");
                children[slot] = Some(child);
                index[byte as usize] = (slot + 1) as u8;
                *len += 1;
            }
            ArtNode::Node256 { len, children } => {
                debug_assert!(children[byte as usize].is_none());
                children[byte as usize] = Some(child);
                *len += 1;
            }
            ArtNode::Leaf { .. } => unreachable!("cannot add a child to a leaf"),
        }
    }

    /// Removes the child for `byte` and returns it.
    fn remove_child(&mut self, byte: u8) -> Option<Box<ArtNode>> {
        match self {
            ArtNode::Leaf { .. } => None,
            ArtNode::Node4 {
                len,
                keys,
                children,
            } => {
                let n = *len as usize;
                let pos = keys[..n].iter().position(|&k| k == byte)?;
                let removed = children[pos].take();
                for i in pos..n - 1 {
                    keys[i] = keys[i + 1];
                    children[i] = children[i + 1].take();
                }
                *len -= 1;
                removed
            }
            ArtNode::Node16 {
                len,
                keys,
                children,
            } => {
                let n = *len as usize;
                let pos = keys[..n].binary_search(&byte).ok()?;
                let removed = children[pos].take();
                for i in pos..n - 1 {
                    keys[i] = keys[i + 1];
                    children[i] = children[i + 1].take();
                }
                *len -= 1;
                removed
            }
            ArtNode::Node48 {
                len,
                index,
                children,
            } => {
                let slot = index[byte as usize];
                if slot == 0 {
                    return None;
                }
                index[byte as usize] = 0;
                *len -= 1;
                children[slot as usize - 1].take()
            }
            ArtNode::Node256 { len, children } => {
                let removed = children[byte as usize].take();
                if removed.is_some() {
                    *len -= 1;
                }
                removed
            }
        }
    }

    /// Number of children (0 for leaves).
    fn child_count(&self) -> usize {
        match self {
            ArtNode::Leaf { .. } => 0,
            ArtNode::Node4 { len, .. }
            | ArtNode::Node16 { len, .. }
            | ArtNode::Node48 { len, .. } => *len as usize,
            ArtNode::Node256 { len, .. } => *len as usize,
        }
    }

    /// Visits the subtree in ascending key order.
    fn for_each(&self, f: &mut dyn FnMut(Key, Value)) {
        match self {
            ArtNode::Leaf { key, value } => f(*key, *value),
            ArtNode::Node4 { len, children, .. } => {
                for child in children[..*len as usize].iter().flatten() {
                    child.for_each(f);
                }
            }
            ArtNode::Node16 { len, children, .. } => {
                for child in children[..*len as usize].iter().flatten() {
                    child.for_each(f);
                }
            }
            ArtNode::Node48 {
                index, children, ..
            } => {
                // `index` is scanned in byte order so children are visited in
                // ascending key order.
                for &slot in index.iter() {
                    if slot != 0 {
                        if let Some(child) = &children[slot as usize - 1] {
                            child.for_each(f);
                        }
                    }
                }
            }
            ArtNode::Node256 { children, .. } => {
                for child in children.iter().flatten() {
                    child.for_each(f);
                }
            }
        }
    }
}

/// The sequential radix tree.
#[derive(Debug, Default)]
struct ArtTree {
    root: Option<Box<ArtNode>>,
    len: usize,
}

impl ArtTree {
    fn get(&self, key: Key) -> Option<Value> {
        let bytes = key_bytes(key);
        let mut node = self.root.as_deref()?;
        for &b in bytes.iter() {
            match node {
                ArtNode::Leaf { key: k, value } => {
                    return if *k == key { Some(*value) } else { None };
                }
                _ => node = node.child(b)?,
            }
        }
        match node {
            ArtNode::Leaf { key: k, value } if *k == key => Some(*value),
            _ => None,
        }
    }

    fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        let bytes = key_bytes(key);
        match self.root.as_mut() {
            None => {
                self.root = Some(Box::new(ArtNode::Leaf { key, value }));
                self.len += 1;
                None
            }
            Some(root) => {
                let old = Self::insert_rec(root, &bytes, 0, key, value);
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    fn insert_rec(
        node: &mut Box<ArtNode>,
        bytes: &[u8; KEY_LEN],
        depth: usize,
        key: Key,
        value: Value,
    ) -> Option<Value> {
        // If we hit a leaf before exhausting the key, either replace its value
        // (same key) or split it into a chain of inner nodes until the two
        // keys diverge (lazy expansion).
        if let ArtNode::Leaf {
            key: existing_key,
            value: existing_value,
        } = &mut **node
        {
            if *existing_key == key {
                return Some(std::mem::replace(existing_value, value));
            }
            let existing = (*existing_key, *existing_value);
            let existing_bytes = key_bytes(existing.0);
            // Depth at which the two keys diverge (they differ, so d < 8).
            let mut d = depth;
            while existing_bytes[d] == bytes[d] {
                d += 1;
            }
            // Build the diverging node with both leaves, then wrap it in
            // single-child Node4s back up to the current depth.
            let mut chain = ArtNode::new_node4();
            chain.add_child(
                existing_bytes[d],
                Box::new(ArtNode::Leaf {
                    key: existing.0,
                    value: existing.1,
                }),
            );
            chain.add_child(bytes[d], Box::new(ArtNode::Leaf { key, value }));
            while d > depth {
                d -= 1;
                let mut parent = ArtNode::new_node4();
                parent.add_child(bytes[d], Box::new(chain));
                chain = parent;
            }
            **node = chain;
            return None;
        }
        let byte = bytes[depth];
        if node.child(byte).is_none() {
            if node.is_full() {
                node.grow();
            }
            node.add_child(byte, Box::new(ArtNode::Leaf { key, value }));
            return None;
        }
        Self::insert_rec(
            node.child_mut(byte).expect("child exists, checked above"),
            bytes,
            depth + 1,
            key,
            value,
        )
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        let bytes = key_bytes(key);
        // Root is a leaf.
        if let Some(root) = self.root.as_deref() {
            if let ArtNode::Leaf { key: k, value } = root {
                if *k == key {
                    let v = *value;
                    self.root = None;
                    self.len -= 1;
                    return Some(v);
                }
                return None;
            }
        } else {
            return None;
        }
        let removed = Self::remove_rec(self.root.as_mut().unwrap(), &bytes, 0, key)?;
        self.len -= 1;
        Some(removed)
    }

    fn remove_rec(
        node: &mut Box<ArtNode>,
        bytes: &[u8; KEY_LEN],
        depth: usize,
        key: Key,
    ) -> Option<Value> {
        let byte = bytes[depth];
        let child_is_match_leaf = matches!(
            node.child(byte),
            Some(ArtNode::Leaf { key: k, .. }) if *k == key
        );
        if child_is_match_leaf {
            let leaf = node.remove_child(byte)?;
            if let ArtNode::Leaf { value, .. } = *leaf {
                return Some(value);
            }
            unreachable!("checked to be a leaf above");
        }
        match node.child(byte) {
            Some(ArtNode::Leaf { .. }) | None => None,
            Some(_) => {
                let child = node.child_mut(byte)?;
                let result = Self::remove_rec(child, bytes, depth + 1, key);
                if result.is_some() && child.child_count() == 0 {
                    // Prune inner nodes left empty by the removal.
                    node.remove_child(byte);
                }
                result
            }
        }
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Value)) {
        if let Some(root) = &self.root {
            root.for_each(f);
        }
    }

    /// Builds the subtree over `items` (strictly increasing keys that all
    /// share their first `depth` encoded bytes) in one recursive pass.
    ///
    /// Because the keys are sorted and the encoding is order-preserving, the
    /// children at `depth` are contiguous runs of the slice: each run becomes
    /// one child, and the node starts as a `Node4` and grows to exactly the
    /// adaptive node type its fanout needs — the same shapes point insertion
    /// produces, without any per-key descent.
    fn build_rec(items: &[(Key, Value)], depth: usize) -> Box<ArtNode> {
        debug_assert!(!items.is_empty());
        if items.len() == 1 {
            let (key, value) = items[0];
            return Box::new(ArtNode::Leaf { key, value });
        }
        debug_assert!(depth < KEY_LEN, "distinct keys diverge within 8 bytes");
        let mut node = ArtNode::new_node4();
        let mut start = 0usize;
        while start < items.len() {
            let byte = key_bytes(items[start].0)[depth];
            let run = items[start..].partition_point(|&(k, _)| key_bytes(k)[depth] == byte);
            let child = Self::build_rec(&items[start..start + run], depth + 1);
            if node.is_full() {
                node.grow();
            }
            node.add_child(byte, child);
            start += run;
        }
        Box::new(node)
    }
}

/// A concurrent ART index: the radix tree guarded by a readers-writer lock.
///
/// # Examples
/// ```
/// use pma_baselines::art::ArtIndex;
/// use pma_common::ConcurrentMap;
///
/// let art = ArtIndex::new();
/// art.insert(-5, 1);
/// art.insert(1_000_000, 2);
/// assert_eq!(art.get(-5), Some(1));
/// assert_eq!(art.scan_all().count, 2);
/// ```
#[derive(Debug, Default)]
pub struct ArtIndex {
    tree: RwLock<ArtTree>,
}

impl ArtIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index pre-populated with `items`, which must be sorted by
    /// key in non-decreasing order (the last entry wins on duplicate keys).
    ///
    /// The radix tree is constructed recursively from the sorted run —
    /// children of a node are contiguous sub-runs sharing a key byte — so the
    /// load is a single O(N) pass instead of N root-to-leaf descents.
    pub fn from_sorted(items: &[(Key, Value)]) -> Result<Self, pma_common::PmaError> {
        pma_common::check_sorted(items)?;
        let items = pma_common::dedup_sorted_last_wins(items);
        let tree = ArtTree {
            root: if items.is_empty() {
                None
            } else {
                Some(ArtTree::build_rec(&items, 0))
            },
            len: items.len(),
        };
        Ok(Self {
            tree: RwLock::new(tree),
        })
    }
}

impl ConcurrentMap for ArtIndex {
    fn insert(&self, key: Key, value: Value) {
        self.tree.write().insert(key, value);
    }

    fn remove(&self, key: Key) -> Option<Value> {
        self.tree.write().remove(key)
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.tree.read().get(key)
    }

    fn len(&self) -> usize {
        self.tree.read().len
    }

    fn scan_all(&self) -> ScanStats {
        let mut stats = ScanStats::default();
        self.tree.read().for_each(&mut |k, v| stats.visit(k, v));
        stats
    }

    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        if lo > hi {
            return;
        }
        self.tree.read().for_each(&mut |k, v| {
            if k >= lo && k <= hi {
                visitor(k, v);
            }
        });
    }

    fn from_sorted(items: &[(Key, Value)]) -> Result<Self, pma_common::PmaError>
    where
        Self: Sized + Default,
    {
        ArtIndex::from_sorted(items)
    }

    fn name(&self) -> &'static str {
        "ART"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bulk_load_builds_adaptive_nodes_and_matches_point_inserts() {
        // Keys engineered to exercise every node fanout class at the deepest
        // byte: 0..N spans runs of 4, 16, 48 and 256 children.
        let items: Vec<(i64, i64)> = (0..4_000i64).map(|k| (k * 3 - 1_000, k)).collect();
        let bulk = ArtIndex::from_sorted(&items).unwrap();
        let pointwise = ArtIndex::new();
        for &(k, v) in &items {
            pointwise.insert(k, v);
        }
        assert_eq!(bulk.len(), pointwise.len());
        assert_eq!(bulk.scan_all(), pointwise.scan_all());
        for k in (0..4_000i64).step_by(37) {
            assert_eq!(bulk.get(k * 3 - 1_000), Some(k));
            assert_eq!(bulk.get(k * 3 - 999), None);
        }
        // The loaded tree accepts updates through the ordinary path.
        bulk.insert(i64::MIN + 1, 7);
        assert_eq!(bulk.get(i64::MIN + 1), Some(7));
        assert_eq!(bulk.remove(-1_000), Some(0));
        assert_eq!(bulk.len(), 4_000);
        // Edge cases.
        let empty = ArtIndex::from_sorted(&[]).unwrap();
        assert_eq!(empty.len(), 0);
        let dup = ArtIndex::from_sorted(&[(9, 1), (9, 2)]).unwrap();
        assert_eq!(dup.get(9), Some(2));
        assert!(ArtIndex::from_sorted(&[(2, 0), (1, 0)]).is_err());
    }

    #[test]
    fn art_node_stays_small() {
        // The large child arrays are boxed precisely so that a boxed node —
        // most importantly each leaf — allocates tens of bytes instead of the
        // ~2 KiB an inline `Node256` child array forces onto every variant.
        assert!(
            std::mem::size_of::<ArtNode>() <= 64,
            "ArtNode grew to {} bytes",
            std::mem::size_of::<ArtNode>()
        );
    }

    #[test]
    fn key_encoding_preserves_order() {
        let keys = [i64::MIN, -1_000_000, -1, 0, 1, 42, 1_000_000, i64::MAX];
        for w in keys.windows(2) {
            assert!(key_bytes(w[0]) < key_bytes(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn empty_tree() {
        let art = ArtIndex::new();
        assert_eq!(art.len(), 0);
        assert_eq!(art.get(1), None);
        assert_eq!(art.remove(1), None);
        assert_eq!(art.scan_all().count, 0);
    }

    #[test]
    fn insert_and_get_dense_keys() {
        let art = ArtIndex::new();
        for k in 0..10_000i64 {
            art.insert(k, k * 2);
        }
        assert_eq!(art.len(), 10_000);
        for k in 0..10_000i64 {
            assert_eq!(art.get(k), Some(k * 2), "key {k}");
        }
        assert_eq!(art.get(10_000), None);
        assert_eq!(art.get(-1), None);
    }

    #[test]
    fn insert_sparse_and_negative_keys() {
        let art = ArtIndex::new();
        let keys = [
            i64::MIN + 1,
            -123_456_789,
            -1,
            0,
            7,
            1 << 20,
            1 << 40,
            i64::MAX - 1,
        ];
        for (i, &k) in keys.iter().enumerate() {
            art.insert(k, i as i64);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(art.get(k), Some(i as i64), "key {k}");
        }
        assert_eq!(art.len(), keys.len());
        // Scans come back in numeric order.
        let mut seen = Vec::new();
        art.range(i64::MIN, i64::MAX, &mut |k, _| seen.push(k));
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn upsert_and_remove() {
        let art = ArtIndex::new();
        art.insert(99, 1);
        art.insert(99, 2);
        assert_eq!(art.len(), 1);
        assert_eq!(art.get(99), Some(2));
        assert_eq!(art.remove(99), Some(2));
        assert_eq!(art.remove(99), None);
        assert_eq!(art.len(), 0);
        assert_eq!(art.get(99), None);
    }

    #[test]
    fn node_type_growth_to_node256() {
        let art = ArtIndex::new();
        // 300 keys differing only in the low bytes force Node4 -> Node16 ->
        // Node48 -> Node256 growth at the deepest levels.
        for k in 0..300i64 {
            art.insert(k, -k);
        }
        assert_eq!(art.len(), 300);
        for k in 0..300i64 {
            assert_eq!(art.get(k), Some(-k));
        }
    }

    #[test]
    fn remove_prunes_and_keeps_siblings() {
        let art = ArtIndex::new();
        for k in 0..1000i64 {
            art.insert(k, k);
        }
        for k in (0..1000i64).step_by(2) {
            assert_eq!(art.remove(k), Some(k));
        }
        assert_eq!(art.len(), 500);
        for k in 0..1000i64 {
            if k % 2 == 0 {
                assert_eq!(art.get(k), None);
            } else {
                assert_eq!(art.get(k), Some(k));
            }
        }
    }

    #[test]
    fn scan_is_ordered() {
        let art = ArtIndex::new();
        for k in [5i64, -7, 123, 0, 99, -1000, 7777] {
            art.insert(k, k);
        }
        let mut seen = Vec::new();
        art.range(i64::MIN, i64::MAX, &mut |k, _| seen.push(k));
        assert_eq!(seen, vec![-1000, -7, 0, 5, 99, 123, 7777]);
        let mut bounded = Vec::new();
        art.range(0, 100, &mut |k, _| bounded.push(k));
        assert_eq!(bounded, vec![0, 5, 99]);
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let art = Arc::new(ArtIndex::new());
        for k in 0..5000i64 {
            art.insert(k, k);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let art = art.clone();
            handles.push(std::thread::spawn(move || {
                for k in (0..5000i64).step_by(7) {
                    assert_eq!(art.get(k), Some(k));
                }
            }));
        }
        let writer = {
            let art = art.clone();
            std::thread::spawn(move || {
                for k in 5000..6000i64 {
                    art.insert(k, k);
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        writer.join().unwrap();
        assert_eq!(art.len(), 6000);
    }
}
