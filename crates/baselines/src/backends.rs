//! Registry entries for the tree baselines of the paper's evaluation.
//!
//! [`register_backends`] installs the four competitors — the Masstree-like
//! tree, the Bw-Tree-like delta structure, the lock-coupled B+-tree
//! ("ART/B+tree" in the figures) and the standalone ART — into a
//! [`Registry`], so they are constructible by spec string (`"masstree"`,
//! `"btree:8k"`, ...).

use std::sync::Arc;

use pma_common::registry::{BackendDef, BackendSpec, ByteBackendDef, Registry};
use pma_common::{ConcurrentMap, PmaError};

use crate::art::ArtIndex;
use crate::btree::{BPlusTree, BTreeConfig};
use crate::bwtree::BwTreeLike;
use crate::bytebtree::ByteBTree;
use crate::masstree::MasstreeLike;

fn leaf_variant(spec: &BackendSpec<'_>) -> Result<bool, PmaError> {
    match spec.arg {
        None | Some("4k") | Some("4K") | Some("4096") => Ok(false),
        Some("8k") | Some("8K") | Some("8192") => Ok(true),
        Some(other) => Err(PmaError::invalid(
            "backend_spec",
            format!(
                "`{}`: unknown leaf size `{other}` (expected 4k or 8k)",
                spec.raw
            ),
        )),
    }
}

/// `(config, display name)` for a `btree[:4k|8k]` spec, shared by the plain
/// and the bulk-loading builder.
fn btree_variant(spec: &BackendSpec<'_>) -> Result<(BTreeConfig, &'static str), PmaError> {
    Ok(if leaf_variant(spec)? {
        (BTreeConfig::large_leaves(), "B+tree 8KB")
    } else {
        (BTreeConfig::default(), "B+tree")
    })
}

fn build_btree(
    _registry: &Registry,
    spec: &BackendSpec<'_>,
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    let (config, name) = btree_variant(spec)?;
    Ok(Arc::new(BPlusTree::with_name(config, name)))
}

/// Registers every tree baseline: `masstree`, `bwtree`, `art` and
/// `btree[:4k|8k]`. Every entry registers its native bulk loader, so
/// `Registry::build_loaded` comparisons against the PMA's `from_sorted` stay
/// apples-to-apples (each structure loads through its own bottom-up
/// construction, not through point inserts).
pub fn register_backends(registry: &Registry) {
    registry.register(BackendDef {
        name: "masstree",
        description: "Masstree-like write-optimised tree",
        label: |_| "MassTree".to_string(),
        build: |_, _| Ok(Arc::new(MasstreeLike::new())),
        build_loaded: Some(|_, _, items| Ok(Arc::new(MasstreeLike::from_sorted(items)?))),
    });
    registry.register(BackendDef {
        name: "bwtree",
        description: "Bw-Tree-like delta structure",
        label: |_| "BwTree".to_string(),
        build: |_, _| Ok(Arc::new(BwTreeLike::new())),
        build_loaded: Some(|_, _, items| {
            Ok(Arc::new(BwTreeLike::from_sorted(
                crate::bwtree::BwTreeConfig::default(),
                items,
            )?))
        }),
    });
    registry.register(BackendDef {
        name: "art",
        description: "standalone Adaptive Radix Tree (coarse readers-writer lock)",
        label: |_| "ART".to_string(),
        build: |_, _| Ok(Arc::new(ArtIndex::new())),
        build_loaded: Some(|_, _, items| Ok(Arc::new(ArtIndex::from_sorted(items)?))),
    });
    registry.register(BackendDef {
        name: "btree",
        description: "ART/B+-tree: lock-coupled B+-tree; arg = leaf size, 4k (default) or 8k \
                      (section 4.1 ablation)",
        label: |spec| match leaf_variant(spec) {
            Ok(true) => "ART/B+tree 8KB".to_string(),
            _ => "ART/B+tree".to_string(),
        },
        build: build_btree,
        build_loaded: Some(|_, spec, items| {
            let (config, name) = btree_variant(spec)?;
            Ok(Arc::new(BPlusTree::from_sorted(config, name, items)?))
        }),
    });
    registry.register_bytes(ByteBackendDef {
        name: "bbtree",
        description: "byte-keyed std BTreeMap behind an RwLock; the uncompressed \
                      bytes/key baseline (no argument)",
        label: |_| "ByteBTree".to_string(),
        build: |_, _| Ok(Arc::new(ByteBTree::new())),
        build_loaded: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_baseline_builds_and_works() {
        let registry = Registry::new();
        register_backends(&registry);
        for spec in ["masstree", "bwtree", "art", "btree", "btree:8k"] {
            let map = registry.build(spec).unwrap();
            for k in 0..300i64 {
                map.insert(k, -k);
            }
            assert_eq!(map.len(), 300, "{spec}");
            assert_eq!(map.get(123), Some(-123), "{spec}");
            assert_eq!(map.scan_range(0, 99).count, 100, "{spec}");
        }
    }

    #[test]
    fn every_baseline_bulk_loads_natively() {
        let registry = Registry::new();
        register_backends(&registry);
        let items: Vec<(i64, i64)> = (0..2_000i64).map(|k| (k * 2, -k)).collect();
        for spec in ["masstree", "bwtree", "art", "btree", "btree:8k"] {
            let map = registry.build_loaded(spec, &items).unwrap();
            assert_eq!(map.len(), 2_000, "{spec}");
            assert_eq!(map.get(100), Some(-50), "{spec}");
            assert_eq!(map.scan_range(0, 199).count, 100, "{spec}");
            // The loaded structure accepts ordinary updates.
            map.insert(1, 1);
            assert_eq!(map.get(1), Some(1), "{spec}");
        }
    }

    #[test]
    fn labels_match_paper_names() {
        let registry = Registry::new();
        register_backends(&registry);
        assert_eq!(registry.label("masstree").unwrap(), "MassTree");
        assert_eq!(registry.label("bwtree").unwrap(), "BwTree");
        assert_eq!(registry.label("art").unwrap(), "ART");
        assert_eq!(registry.label("btree").unwrap(), "ART/B+tree");
        assert_eq!(registry.label("btree:8k").unwrap(), "ART/B+tree 8KB");
    }

    #[test]
    fn bad_leaf_size_is_rejected() {
        let registry = Registry::new();
        register_backends(&registry);
        assert!(registry.build("btree:16k").is_err());
    }
}
