//! A concurrent B+-tree baseline.
//!
//! This is the storage layer of the paper's "ART / B+-tree" competitor: the
//! elements ultimately live in fixed-capacity leaves (4 KiB by default, i.e.
//! 256 key/value pairs of 16 bytes) and leaves are chained for range scans.
//!
//! Concurrency follows the B-link approach: every node carries a *high key*
//! (exclusive upper bound of the keys it may route/store) and a right-sibling
//! link. A thread therefore never holds more than one node lock: if, after
//! locking a node, the search key is at or above the node's high key — which
//! can only happen because a concurrent split moved the upper half of the node
//! to a new right sibling — the thread simply follows the right link. Splits
//! are performed pre-emptively during the write descent (a full child is split
//! while the parent is still write-locked), so they never propagate upwards.
//!
//! Two leaf layouts are supported:
//! * **sorted** leaves (the default) — binary search, cheap scans;
//! * **unsorted** leaves with a permutation array — insertions append and only
//!   update the permutation, which is what Masstree does to speed up writes at
//!   the expense of scans. [`crate::masstree::MasstreeLike`] uses this layout
//!   with small leaves.
//!
//! Deletions remove entries in place but never merge underfull leaves (lazy
//! deletion); the paper's workloads keep the tree densely populated, so this
//! does not change the measured behaviour.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use pma_common::{ConcurrentMap, Key, PmaError, ScanStats, Value, KEY_MAX};

/// Reference-counted, reader-writer-locked tree node.
type NodeRef = Arc<RwLock<Node>>;

/// Configuration of a [`BPlusTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeConfig {
    /// Maximum number of key/value pairs per leaf.
    pub leaf_capacity: usize,
    /// Maximum number of children per internal node.
    pub inner_fanout: usize,
    /// Whether leaves keep entries unsorted (append order) with a permutation
    /// array, Masstree-style.
    pub unsorted_leaves: bool,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        // 4 KiB leaves of 16-byte pairs, as in the paper's ART/B+-tree.
        Self {
            leaf_capacity: 256,
            inner_fanout: 64,
            unsorted_leaves: false,
        }
    }
}

impl BTreeConfig {
    /// The 8 KiB-leaf variant discussed in the paper's section 4.1 ablation.
    pub fn large_leaves() -> Self {
        Self {
            leaf_capacity: 512,
            ..Self::default()
        }
    }

    /// Masstree-style nodes: tiny leaves with unsorted entries.
    pub fn masstree_like() -> Self {
        Self {
            leaf_capacity: 16,
            inner_fanout: 16,
            unsorted_leaves: true,
        }
    }

    fn validated(self) -> Self {
        assert!(self.leaf_capacity >= 4, "leaf capacity must be at least 4");
        assert!(self.inner_fanout >= 4, "inner fanout must be at least 4");
        self
    }
}

#[derive(Debug)]
enum Node {
    Internal(InternalNode),
    Leaf(LeafNode),
}

impl Node {
    fn high_key(&self) -> Key {
        match self {
            Node::Internal(n) => n.high_key,
            Node::Leaf(n) => n.high_key,
        }
    }

    fn right(&self) -> Option<NodeRef> {
        match self {
            Node::Internal(n) => n.next.clone(),
            Node::Leaf(n) => n.next.clone(),
        }
    }
}

#[derive(Debug)]
struct InternalNode {
    /// `keys[i]` is the smallest key reachable through `children[i + 1]`.
    keys: Vec<Key>,
    children: Vec<NodeRef>,
    /// Exclusive upper bound of the keys routed by this node (`KEY_MAX` means
    /// unbounded, i.e. the rightmost node of its level).
    high_key: Key,
    /// Right sibling at the same level.
    next: Option<NodeRef>,
}

#[derive(Debug)]
struct LeafNode {
    /// Entries, sorted by key when `sorted` is set, in insertion order
    /// otherwise.
    keys: Vec<Key>,
    values: Vec<Value>,
    /// When entries are unsorted: indices of `keys` in ascending key order.
    permutation: Vec<u32>,
    sorted: bool,
    /// Exclusive upper bound of the keys this leaf may store.
    high_key: Key,
    /// Next leaf in key order, for range scans and B-link right moves.
    next: Option<NodeRef>,
}

impl InternalNode {
    /// Index of the child that covers `key`.
    fn child_index(&self, key: Key) -> usize {
        match self.keys.binary_search(&key) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}

impl LeafNode {
    fn new(sorted: bool) -> Self {
        Self {
            keys: Vec::new(),
            values: Vec::new(),
            permutation: Vec::new(),
            sorted,
            high_key: KEY_MAX,
            next: None,
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn out_of_range(&self, key: Key) -> bool {
        self.high_key != KEY_MAX && key >= self.high_key
    }

    /// Position of `key` in storage order, if present.
    fn find(&self, key: Key) -> Option<usize> {
        if self.sorted {
            self.keys.binary_search(&key).ok()
        } else {
            self.keys.iter().position(|&k| k == key)
        }
    }

    fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        if let Some(pos) = self.find(key) {
            return Some(std::mem::replace(&mut self.values[pos], value));
        }
        if self.sorted {
            let pos = self.keys.binary_search(&key).unwrap_err();
            self.keys.insert(pos, key);
            self.values.insert(pos, value);
        } else {
            // Append and maintain the permutation (Masstree-style).
            self.keys.push(key);
            self.values.push(value);
            let new_idx = (self.keys.len() - 1) as u32;
            let pos = self
                .permutation
                .binary_search_by_key(&key, |&i| self.keys[i as usize])
                .unwrap_err();
            self.permutation.insert(pos, new_idx);
        }
        None
    }

    fn remove(&mut self, key: Key) -> Option<Value> {
        let pos = self.find(key)?;
        let value = self.values.remove(pos);
        self.keys.remove(pos);
        if !self.sorted {
            self.permutation.retain(|&i| i as usize != pos);
            for i in &mut self.permutation {
                if *i as usize > pos {
                    *i -= 1;
                }
            }
        }
        Some(value)
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.find(key).map(|pos| self.values[pos])
    }

    /// Visits the entries in ascending key order.
    fn for_each_ordered(&self, f: &mut dyn FnMut(Key, Value)) {
        if self.sorted {
            for (k, v) in self.keys.iter().zip(self.values.iter()) {
                f(*k, *v);
            }
        } else {
            for &i in &self.permutation {
                f(self.keys[i as usize], self.values[i as usize]);
            }
        }
    }

    /// Splits off the upper half, returning `(separator, new_right_leaf)`.
    /// The caller is responsible for linking `next` to the new leaf.
    fn split(&mut self) -> (Key, LeafNode) {
        // Work on the ordered view so the split point is a key boundary.
        let mut ordered: Vec<(Key, Value)> = Vec::with_capacity(self.len());
        self.for_each_ordered(&mut |k, v| ordered.push((k, v)));
        let mid = ordered.len() / 2;
        let right_entries = ordered.split_off(mid);
        let separator = right_entries[0].0;

        let mut right = LeafNode::new(self.sorted);
        for (k, v) in &right_entries {
            right.keys.push(*k);
            right.values.push(*v);
        }
        if !self.sorted {
            right.permutation = (0..right.keys.len() as u32).collect();
        }
        right.high_key = self.high_key;
        right.next = self.next.take();
        self.high_key = separator;

        self.keys.clear();
        self.values.clear();
        self.permutation.clear();
        for (k, v) in &ordered {
            self.keys.push(*k);
            self.values.push(*v);
        }
        if !self.sorted {
            self.permutation = (0..self.keys.len() as u32).collect();
        }
        (separator, right)
    }
}

/// A thread-safe B+-tree mapping [`Key`] to [`Value`].
///
/// # Examples
/// ```
/// use pma_baselines::btree::BPlusTree;
/// use pma_common::ConcurrentMap;
///
/// let tree = BPlusTree::with_defaults();
/// tree.insert(3, 30);
/// tree.insert(1, 10);
/// assert_eq!(tree.get(3), Some(30));
/// assert_eq!(tree.scan_all().count, 2);
/// ```
pub struct BPlusTree {
    config: BTreeConfig,
    root: RwLock<NodeRef>,
    len: AtomicUsize,
    name: &'static str,
}

impl std::fmt::Debug for BPlusTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BPlusTree")
            .field("len", &self.len())
            .field("config", &self.config)
            .finish()
    }
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl BPlusTree {
    /// Creates an empty tree with the given configuration.
    pub fn new(config: BTreeConfig) -> Self {
        Self::with_name(config, "B+tree")
    }

    /// Creates an empty tree with a custom display name (used by the bench
    /// harness to label variants such as the 8 KiB-leaf ablation).
    pub fn with_name(config: BTreeConfig, name: &'static str) -> Self {
        let config = config.validated();
        let root: NodeRef = Arc::new(RwLock::new(Node::Leaf(LeafNode::new(
            !config.unsorted_leaves,
        ))));
        Self {
            config,
            root: RwLock::new(root),
            len: AtomicUsize::new(0),
            name,
        }
    }

    /// Creates an empty tree with 4 KiB sorted leaves.
    pub fn with_defaults() -> Self {
        Self::new(BTreeConfig::default())
    }

    /// Builds a tree pre-populated with `items`, which must be sorted by key
    /// in non-decreasing order (the last entry wins on duplicate keys).
    ///
    /// The classic bottom-up bulk load: the leaf level is written out in one
    /// pass (leaves filled to 3/4 so later point insertions have headroom),
    /// then each internal level is built over the previous one until a single
    /// root remains — no descent, no splits. Sibling links and high keys are
    /// set during construction, so the B-link invariants hold from the start.
    pub fn from_sorted(
        config: BTreeConfig,
        name: &'static str,
        items: &[(Key, Value)],
    ) -> Result<Self, PmaError> {
        let config = config.validated();
        pma_common::check_sorted(items)?;
        let items = pma_common::dedup_sorted_last_wins(items);
        if items.is_empty() {
            return Ok(Self::with_name(config, name));
        }
        let sorted = !config.unsorted_leaves;

        // Leaf level: (low key, node) pairs in key order, chained via `next`.
        let per_leaf = (config.leaf_capacity * 3 / 4).max(1);
        let mut level: Vec<(Key, NodeRef)> = Vec::new();
        let mut prev: Option<NodeRef> = None;
        for chunk in items.chunks(per_leaf) {
            let mut leaf = LeafNode::new(sorted);
            for &(k, v) in chunk {
                leaf.keys.push(k);
                leaf.values.push(v);
            }
            if !sorted {
                leaf.permutation = (0..chunk.len() as u32).collect();
            }
            let low = chunk[0].0;
            let node: NodeRef = Arc::new(RwLock::new(Node::Leaf(leaf)));
            if let Some(prev) = prev.take() {
                match &mut *prev.write() {
                    Node::Leaf(p) => {
                        p.next = Some(Arc::clone(&node));
                        p.high_key = low;
                    }
                    Node::Internal(_) => unreachable!("leaf level holds only leaves"),
                }
            }
            prev = Some(Arc::clone(&node));
            level.push((low, node));
        }

        // Internal levels, bottom-up until one node remains.
        let per_inner = (config.inner_fanout * 3 / 4).max(2);
        while level.len() > 1 {
            let mut next_level: Vec<(Key, NodeRef)> = Vec::new();
            let mut prev: Option<NodeRef> = None;
            for group in level.chunks(per_inner) {
                let low = group[0].0;
                let inner = InternalNode {
                    // keys[i] routes to children[i + 1]: the low keys of all
                    // children but the first.
                    keys: group[1..].iter().map(|&(k, _)| k).collect(),
                    children: group.iter().map(|(_, n)| Arc::clone(n)).collect(),
                    high_key: KEY_MAX,
                    next: None,
                };
                let node: NodeRef = Arc::new(RwLock::new(Node::Internal(inner)));
                if let Some(prev) = prev.take() {
                    match &mut *prev.write() {
                        Node::Internal(p) => {
                            p.next = Some(Arc::clone(&node));
                            p.high_key = low;
                        }
                        Node::Leaf(_) => unreachable!("internal level holds only internals"),
                    }
                }
                prev = Some(Arc::clone(&node));
                next_level.push((low, node));
            }
            level = next_level;
        }

        let (_, root) = level.pop().expect("non-empty input builds a root");
        Ok(Self {
            config,
            root: RwLock::new(root),
            len: AtomicUsize::new(items.len()),
            name,
        })
    }

    /// The tree's configuration.
    pub fn config(&self) -> &BTreeConfig {
        &self.config
    }

    fn node_full(&self, node: &Node) -> bool {
        match node {
            Node::Leaf(l) => l.len() >= self.config.leaf_capacity,
            Node::Internal(i) => i.children.len() >= self.config.inner_fanout,
        }
    }

    /// Splits the full child at `child_idx` of `parent` (held in write mode).
    fn split_child(&self, parent: &mut InternalNode, child_idx: usize) {
        let child_ref = Arc::clone(&parent.children[child_idx]);
        let mut child = child_ref.write();
        match &mut *child {
            Node::Leaf(leaf) => {
                if leaf.len() < self.config.leaf_capacity {
                    return; // someone else split it first
                }
                let (sep, right) = leaf.split();
                let right_ref: NodeRef = Arc::new(RwLock::new(Node::Leaf(right)));
                leaf.next = Some(Arc::clone(&right_ref));
                parent.keys.insert(child_idx, sep);
                parent.children.insert(child_idx + 1, right_ref);
            }
            Node::Internal(inner) => {
                if inner.children.len() < self.config.inner_fanout {
                    return;
                }
                let mid = inner.keys.len() / 2;
                let sep = inner.keys[mid];
                let right_keys = inner.keys.split_off(mid + 1);
                inner.keys.pop(); // the separator moves up
                let right_children = inner.children.split_off(mid + 1);
                let right = InternalNode {
                    keys: right_keys,
                    children: right_children,
                    high_key: inner.high_key,
                    next: inner.next.take(),
                };
                let right_ref: NodeRef = Arc::new(RwLock::new(Node::Internal(right)));
                inner.high_key = sep;
                inner.next = Some(Arc::clone(&right_ref));
                parent.keys.insert(child_idx, sep);
                parent.children.insert(child_idx + 1, right_ref);
            }
        }
    }

    /// Grows the tree by one level when the root node is full.
    fn maybe_grow_root(&self) {
        let mut root_slot = self.root.write();
        let root_full = {
            let root = root_slot.read();
            self.node_full(&root)
        };
        if !root_full {
            return;
        }
        let old_root = Arc::clone(&root_slot);
        let mut new_root = InternalNode {
            keys: Vec::new(),
            children: vec![old_root],
            high_key: KEY_MAX,
            next: None,
        };
        self.split_child(&mut new_root, 0);
        *root_slot = Arc::new(RwLock::new(Node::Internal(new_root)));
    }

    /// Leftmost leaf of the tree (entry point of full scans).
    fn leftmost_leaf(&self) -> NodeRef {
        let mut current = Arc::clone(&self.root.read());
        loop {
            let next = {
                let node = current.read();
                match &*node {
                    Node::Leaf(_) => None,
                    Node::Internal(inner) => Some(Arc::clone(&inner.children[0])),
                }
            };
            match next {
                Some(n) => current = n,
                None => return current,
            }
        }
    }

    /// Leaf that covers `key` (read descent, at most one lock held; right
    /// moves repair races with concurrent splits).
    fn find_leaf(&self, key: Key) -> NodeRef {
        let mut current = Arc::clone(&self.root.read());
        loop {
            let next = {
                let node = current.read();
                if node.high_key() != KEY_MAX && key >= node.high_key() {
                    node.right()
                        .expect("a bounded node always has a right sibling")
                } else {
                    match &*node {
                        Node::Leaf(_) => return Arc::clone(&current),
                        Node::Internal(inner) => {
                            Arc::clone(&inner.children[inner.child_index(key)])
                        }
                    }
                }
            };
            current = next;
        }
    }
}

impl ConcurrentMap for BPlusTree {
    fn insert(&self, key: Key, value: Value) {
        loop {
            self.maybe_grow_root();
            // Descend with write locks on internal nodes, splitting full
            // children pre-emptively so splits never propagate upwards. Only
            // one lock is held at a time; the B-link right moves repair any
            // race with a concurrent split.
            let mut current = Arc::clone(&self.root.read());
            let mut restart = false;
            loop {
                let next = {
                    let mut node = current.write();
                    if node.high_key() != KEY_MAX && key >= node.high_key() {
                        node.right()
                            .expect("a bounded node always has a right sibling")
                    } else {
                        match &mut *node {
                            Node::Leaf(leaf) => {
                                if leaf.len() >= self.config.leaf_capacity {
                                    // Reached a full leaf directly (e.g. the
                                    // root is a leaf, or a concurrent insert
                                    // filled it); restart so a parent splits
                                    // it.
                                    restart = true;
                                    break;
                                }
                                if leaf.insert(key, value).is_none() {
                                    self.len.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            Node::Internal(inner) => {
                                let mut idx = inner.child_index(key);
                                let child_full = {
                                    let child = inner.children[idx].read();
                                    self.node_full(&child)
                                };
                                if child_full {
                                    if inner.children.len() >= self.config.inner_fanout {
                                        // This node would overflow; restart so
                                        // its own parent (or the root path)
                                        // splits it first.
                                        restart = true;
                                        break;
                                    }
                                    self.split_child(inner, idx);
                                    idx = inner.child_index(key);
                                }
                                Arc::clone(&inner.children[idx])
                            }
                        }
                    }
                };
                current = next;
            }
            if !restart {
                return;
            }
        }
    }

    fn remove(&self, key: Key) -> Option<Value> {
        loop {
            let leaf = self.find_leaf(key);
            let mut node = leaf.write();
            match &mut *node {
                Node::Leaf(l) => {
                    if l.out_of_range(key) {
                        // A split moved the key range right between find_leaf
                        // and the write lock; retry.
                        continue;
                    }
                    let removed = l.remove(key);
                    if removed.is_some() {
                        self.len.fetch_sub(1, Ordering::Relaxed);
                    }
                    return removed;
                }
                Node::Internal(_) => unreachable!("find_leaf returned an internal node"),
            }
        }
    }

    fn get(&self, key: Key) -> Option<Value> {
        loop {
            let leaf = self.find_leaf(key);
            let node = leaf.read();
            match &*node {
                Node::Leaf(l) => {
                    if l.out_of_range(key) {
                        continue;
                    }
                    return l.get(key);
                }
                Node::Internal(_) => unreachable!("find_leaf returned an internal node"),
            }
        }
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn scan_all(&self) -> ScanStats {
        let mut stats = ScanStats::default();
        let mut current = self.leftmost_leaf();
        loop {
            let next = {
                let node = current.read();
                match &*node {
                    Node::Leaf(l) => {
                        l.for_each_ordered(&mut |k, v| stats.visit(k, v));
                        l.next.clone()
                    }
                    Node::Internal(_) => unreachable!("leaf chain contains an internal node"),
                }
            };
            match next {
                Some(n) => current = n,
                None => return stats,
            }
        }
    }

    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        if lo > hi {
            return;
        }
        let mut current = self.find_leaf(lo);
        loop {
            let next = {
                let node = current.read();
                match &*node {
                    Node::Leaf(l) => {
                        let mut past_hi = false;
                        let mut ordered: Vec<(Key, Value)> = Vec::with_capacity(l.len());
                        l.for_each_ordered(&mut |k, v| ordered.push((k, v)));
                        for (k, v) in ordered {
                            if k > hi {
                                past_hi = true;
                                break;
                            }
                            if k >= lo {
                                visitor(k, v);
                            }
                        }
                        if past_hi {
                            None
                        } else {
                            l.next.clone()
                        }
                    }
                    Node::Internal(_) => unreachable!("leaf chain contains an internal node"),
                }
            };
            match next {
                Some(n) => current = n,
                None => return,
            }
        }
    }

    fn from_sorted(items: &[(Key, Value)]) -> Result<Self, PmaError>
    where
        Self: Sized + Default,
    {
        BPlusTree::from_sorted(BTreeConfig::default(), "B+tree", items)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn small_tree() -> BPlusTree {
        BPlusTree::new(BTreeConfig {
            leaf_capacity: 8,
            inner_fanout: 4,
            unsorted_leaves: false,
        })
    }

    #[test]
    fn empty_tree() {
        let t = small_tree();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert_eq!(t.remove(1), None);
        assert_eq!(t.scan_all().count, 0);
    }

    #[test]
    fn insert_get_many_keys_forces_splits() {
        let t = small_tree();
        for k in 0..5000i64 {
            t.insert(k, k * 2);
        }
        assert_eq!(t.len(), 5000);
        for k in 0..5000i64 {
            assert_eq!(t.get(k), Some(k * 2), "key {k}");
        }
        assert_eq!(t.get(-1), None);
        assert_eq!(t.get(5000), None);
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        let t = small_tree();
        for k in (0..2000i64).rev() {
            t.insert(k, -k);
        }
        // Pseudo-shuffled second wave.
        for k in 0..2000i64 {
            t.insert((k * 733) % 4001 + 10_000, k);
        }
        let stats = t.scan_all();
        assert_eq!(stats.count as usize, t.len());
        // Order check through a full range scan.
        let mut prev = None;
        t.range(i64::MIN, i64::MAX, &mut |k, _| {
            if let Some(p) = prev {
                assert!(p < k, "keys out of order: {p} then {k}");
            }
            prev = Some(k);
        });
    }

    #[test]
    fn upsert_and_remove() {
        let t = small_tree();
        t.insert(42, 1);
        t.insert(42, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(42), Some(2));
        assert_eq!(t.remove(42), Some(2));
        assert_eq!(t.remove(42), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn scan_all_matches_inserted_checksum() {
        let t = small_tree();
        let mut expected = ScanStats::default();
        for k in 0..1000i64 {
            t.insert(k * 3, k);
            expected.visit(k * 3, k);
        }
        assert_eq!(t.scan_all(), expected);
    }

    #[test]
    fn range_scan_bounds() {
        let t = small_tree();
        for k in 0..500i64 {
            t.insert(k * 2, k);
        }
        let mut seen = Vec::new();
        t.range(10, 20, &mut |k, _| seen.push(k));
        assert_eq!(seen, vec![10, 12, 14, 16, 18, 20]);
        let mut seen = Vec::new();
        t.range(9, 21, &mut |k, _| seen.push(k));
        assert_eq!(seen, vec![10, 12, 14, 16, 18, 20]);
        let mut count = 0;
        t.range(i64::MIN, i64::MAX, &mut |_, _| count += 1);
        assert_eq!(count, 500);
        t.range(20, 10, &mut |_, _| panic!("empty range must not visit"));
    }

    #[test]
    fn unsorted_leaves_behave_identically() {
        let t = BPlusTree::new(BTreeConfig {
            leaf_capacity: 8,
            inner_fanout: 4,
            unsorted_leaves: true,
        });
        for k in (0..2000i64).rev() {
            t.insert(k, k + 1);
        }
        assert_eq!(t.len(), 2000);
        for k in 0..2000i64 {
            assert_eq!(t.get(k), Some(k + 1));
        }
        let mut prev = None;
        t.range(i64::MIN, i64::MAX, &mut |k, _| {
            if let Some(p) = prev {
                assert!(p < k);
            }
            prev = Some(k);
        });
        assert_eq!(t.remove(7), Some(8));
        assert_eq!(t.get(7), None);
        assert_eq!(t.len(), 1999);
    }

    #[test]
    fn bulk_load_builds_a_valid_multi_level_tree() {
        for unsorted_leaves in [false, true] {
            let config = BTreeConfig {
                leaf_capacity: 8,
                inner_fanout: 4,
                unsorted_leaves,
            };
            let items: Vec<(i64, i64)> = (0..5_000i64).map(|k| (k * 2, -k)).collect();
            let t = BPlusTree::from_sorted(config, "B+tree", &items).unwrap();
            assert_eq!(t.len(), 5_000);
            for k in (0..5_000i64).step_by(71) {
                assert_eq!(t.get(k * 2), Some(-k), "key {}", k * 2);
                assert_eq!(t.get(k * 2 + 1), None);
            }
            // Ordered scans traverse the freshly built leaf chain.
            let stats = t.scan_all();
            assert_eq!(stats.count, 5_000);
            let mut prev = None;
            t.range(i64::MIN, i64::MAX, &mut |k, _| {
                if let Some(p) = prev {
                    assert!(p < k);
                }
                prev = Some(k);
            });
            // The loaded tree keeps working under ordinary updates (descent,
            // splits and B-link right moves over the bulk-built shape).
            for k in 0..2_000i64 {
                t.insert(k * 2 + 1, k);
            }
            t.remove(0);
            assert_eq!(t.len(), 5_000 + 2_000 - 1);
            assert_eq!(t.scan_all().count, 5_000 + 2_000 - 1);
        }
    }

    #[test]
    fn bulk_load_edge_cases() {
        let empty = BPlusTree::from_sorted(BTreeConfig::default(), "B+tree", &[]).unwrap();
        assert_eq!(empty.len(), 0);
        empty.insert(1, 1);
        assert_eq!(empty.get(1), Some(1));
        // Duplicates keep the last entry.
        let t = BPlusTree::from_sorted(BTreeConfig::default(), "B+tree", &[(1, 1), (1, 2), (3, 3)])
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1), Some(2));
        // Unsorted input is rejected.
        assert!(
            BPlusTree::from_sorted(BTreeConfig::default(), "B+tree", &[(2, 0), (1, 0)]).is_err()
        );
        // The trait-level constructor goes through the same path.
        let t = <BPlusTree as ConcurrentMap>::from_sorted(&[(5, 50), (6, 60)]).unwrap();
        assert_eq!(t.scan_all().count, 2);
    }

    #[test]
    fn negative_and_extreme_keys() {
        let t = small_tree();
        t.insert(i64::MIN + 1, 1);
        t.insert(i64::MAX - 1, 2);
        t.insert(0, 3);
        assert_eq!(t.get(i64::MIN + 1), Some(1));
        assert_eq!(t.get(i64::MAX - 1), Some(2));
        assert_eq!(t.scan_all().count, 3);
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = Arc::new(small_tree());
        let mut handles = Vec::new();
        for tid in 0..8i64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2000i64 {
                    let k = tid * 10_000 + i;
                    t.insert(k, k);
                    if i % 64 == 0 {
                        assert_eq!(t.get(k), Some(k));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8 * 2000);
        assert_eq!(t.scan_all().count, 8 * 2000);
        for tid in 0..8i64 {
            for i in (0..2000i64).step_by(97) {
                let k = tid * 10_000 + i;
                assert_eq!(t.get(k), Some(k), "key {k}");
            }
        }
    }

    #[test]
    fn concurrent_interleaved_key_ranges() {
        // Threads insert interleaved keys so they constantly collide on the
        // same leaves, exercising the split/right-move races.
        let t = Arc::new(small_tree());
        let nthreads = 8i64;
        let per_thread = 2000i64;
        let mut handles = Vec::new();
        for tid in 0..nthreads {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let k = i * nthreads + tid;
                    t.insert(k, k);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = (nthreads * per_thread) as usize;
        assert_eq!(t.len(), total);
        assert_eq!(t.scan_all().count as usize, total);
        for k in (0..(nthreads * per_thread)).step_by(53) {
            assert_eq!(t.get(k), Some(k), "key {k}");
        }
        let mut prev = None;
        t.range(i64::MIN, i64::MAX, &mut |k, _| {
            if let Some(p) = prev {
                assert!(p < k);
            }
            prev = Some(k);
        });
    }

    #[test]
    fn concurrent_mixed_workload() {
        let t = Arc::new(small_tree());
        for k in 0..10_000i64 {
            t.insert(k, k);
        }
        let mut handles = Vec::new();
        for tid in 0..4i64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000i64 {
                    let k = tid * 1000 + i;
                    t.remove(k);
                    t.insert(100_000 + tid * 1000 + i, i);
                }
            }));
        }
        let scanner = {
            let t = t.clone();
            std::thread::spawn(move || {
                let mut total = 0u64;
                for _ in 0..20 {
                    total += t.scan_all().count;
                }
                total
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        assert!(scanner.join().unwrap() > 0);
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.scan_all().count, 10_000);
    }
}
