//! A Bw-Tree-like structure (competitor of the paper's evaluation, section 4).
//!
//! The Bw-Tree [Levandoski et al., ICDE'13; Wang et al., SIGMOD'18] never
//! modifies a page in place: updates prepend small *delta records* to the
//! page's chain through a mapping table, readers replay the chain on top of
//! the base page, and the chain is *consolidated* into a fresh base page once
//! it grows past a threshold. This gives cheap writes and read amplification —
//! exactly the trade-off the paper's evaluation highlights (fast updates, an
//! order of magnitude slower scans than the PMA).
//!
//! Substitution note (documented in DESIGN.md): the original Bw-Tree installs
//! deltas with compare-and-swap on the mapping table and performs structure
//! modifications lock-free. Here each logical page is protected by a
//! read-write lock (writers hold it only to push a delta; readers to replay
//! the chain) and page splits take a coarse lock on the page directory. The
//! delta/replay/consolidation behaviour — the part the evaluation measures —
//! is preserved.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;
use pma_common::{ConcurrentMap, Key, PmaError, ScanStats, Value, KEY_MIN};

/// A single delta record prepended by an update.
#[derive(Debug, Clone, Copy)]
enum Delta {
    Insert(Key, Value),
    Delete(Key),
}

/// One logical page: an immutable-ish sorted base plus a chain of deltas
/// (most recent first).
#[derive(Debug, Default)]
struct Page {
    /// Sorted base entries (rebuilt on consolidation).
    base_keys: Vec<Key>,
    base_values: Vec<Value>,
    /// Delta chain, most recent delta first.
    deltas: Vec<Delta>,
}

impl Page {
    /// Looks `key` up by replaying the delta chain (most recent wins) before
    /// falling back to the base page.
    fn get(&self, key: Key) -> Option<Value> {
        for delta in self.deltas.iter().rev() {
            match *delta {
                Delta::Insert(k, v) if k == key => return Some(v),
                Delta::Delete(k) if k == key => return None,
                _ => {}
            }
        }
        self.base_keys
            .binary_search(&key)
            .ok()
            .map(|i| self.base_values[i])
    }

    /// Number of live entries (requires a full replay).
    fn consolidated(&self) -> Vec<(Key, Value)> {
        let mut merged: std::collections::BTreeMap<Key, Option<Value>> =
            std::collections::BTreeMap::new();
        for (k, v) in self.base_keys.iter().zip(self.base_values.iter()) {
            merged.insert(*k, Some(*v));
        }
        for delta in &self.deltas {
            match *delta {
                Delta::Insert(k, v) => {
                    merged.insert(k, Some(v));
                }
                Delta::Delete(k) => {
                    merged.insert(k, None);
                }
            }
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }

    /// Rebuilds the base page from the consolidated view and clears the chain.
    fn consolidate(&mut self) -> usize {
        let entries = self.consolidated();
        self.base_keys.clear();
        self.base_values.clear();
        for (k, v) in &entries {
            self.base_keys.push(*k);
            self.base_values.push(*v);
        }
        self.deltas.clear();
        entries.len()
    }
}

/// Configuration of the Bw-Tree-like structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BwTreeConfig {
    /// Consolidate a page once its delta chain reaches this length.
    pub consolidation_threshold: usize,
    /// Split a page once its consolidated size reaches this many entries.
    pub page_capacity: usize,
}

impl Default for BwTreeConfig {
    fn default() -> Self {
        Self {
            consolidation_threshold: 16,
            page_capacity: 256,
        }
    }
}

/// The page directory entry: the smallest key routed to the page.
#[derive(Debug, Clone, Copy)]
struct DirEntry {
    low_key: Key,
    page_id: usize,
}

/// A Bw-Tree-like concurrent ordered map.
///
/// # Examples
/// ```
/// use pma_baselines::bwtree::BwTreeLike;
/// use pma_common::ConcurrentMap;
///
/// let t = BwTreeLike::new();
/// t.insert(5, 50);
/// assert_eq!(t.get(5), Some(50));
/// assert_eq!(t.scan_all().count, 1);
/// ```
pub struct BwTreeLike {
    config: BwTreeConfig,
    /// Mapping table: page id -> page. Pages are never removed; splits append.
    mapping: RwLock<Vec<std::sync::Arc<RwLock<Page>>>>,
    /// Sorted directory of (low key, page id), protected separately; rebuilt
    /// on splits (rare, amortised by `page_capacity`).
    directory: RwLock<Vec<DirEntry>>,
    len: AtomicUsize,
}

impl std::fmt::Debug for BwTreeLike {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BwTreeLike")
            .field("len", &self.len())
            .field("pages", &self.mapping.read().len())
            .finish()
    }
}

impl Default for BwTreeLike {
    fn default() -> Self {
        Self::new()
    }
}

impl BwTreeLike {
    /// Creates an empty tree with the default configuration.
    pub fn new() -> Self {
        Self::with_config(BwTreeConfig::default())
    }

    /// Creates an empty tree with a custom configuration.
    pub fn with_config(config: BwTreeConfig) -> Self {
        let first_page = std::sync::Arc::new(RwLock::new(Page::default()));
        Self {
            config,
            mapping: RwLock::new(vec![first_page]),
            directory: RwLock::new(vec![DirEntry {
                low_key: KEY_MIN,
                page_id: 0,
            }]),
            len: AtomicUsize::new(0),
        }
    }

    /// Builds a tree pre-populated with `items`, which must be sorted by key
    /// in non-decreasing order (the last entry wins on duplicate keys).
    ///
    /// The sorted run is chunked straight into half-full base pages (so later
    /// updates have delta headroom before the first split) and the page
    /// directory is written out in one pass — no delta chains, no
    /// consolidations, no splits during the load.
    pub fn from_sorted(config: BwTreeConfig, items: &[(Key, Value)]) -> Result<Self, PmaError> {
        pma_common::check_sorted(items)?;
        let items = pma_common::dedup_sorted_last_wins(items);
        if items.is_empty() {
            return Ok(Self::with_config(config));
        }
        let per_page = (config.page_capacity / 2).max(1);
        let mut mapping = Vec::with_capacity(items.len().div_ceil(per_page));
        let mut directory = Vec::with_capacity(mapping.capacity());
        for chunk in items.chunks(per_page) {
            let page = Page {
                base_keys: chunk.iter().map(|&(k, _)| k).collect(),
                base_values: chunk.iter().map(|&(_, v)| v).collect(),
                deltas: Vec::new(),
            };
            let page_id = mapping.len();
            directory.push(DirEntry {
                // The first page routes everything below the loaded keys.
                low_key: if page_id == 0 { KEY_MIN } else { chunk[0].0 },
                page_id,
            });
            mapping.push(std::sync::Arc::new(RwLock::new(page)));
        }
        Ok(Self {
            config,
            mapping: RwLock::new(mapping),
            directory: RwLock::new(directory),
            len: AtomicUsize::new(items.len()),
        })
    }

    /// Number of physical pages currently allocated (test hook).
    pub fn page_count(&self) -> usize {
        self.mapping.read().len()
    }

    /// Page id covering `key` according to the directory.
    fn route(&self, key: Key) -> usize {
        let dir = self.directory.read();
        let idx = match dir.binary_search_by_key(&key, |e| e.low_key) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        dir[idx].page_id
    }

    fn page(&self, id: usize) -> std::sync::Arc<RwLock<Page>> {
        std::sync::Arc::clone(&self.mapping.read()[id])
    }

    /// Consolidates and, if needed, splits the page (called after an update
    /// pushed the chain over the threshold). The page lock is held across the
    /// directory publication so writers that re-validate their route under
    /// the page lock can never push a delta for a key that has just been
    /// moved to the new sibling.
    fn maintain(&self, page_id: usize) {
        let page_ref = self.page(page_id);
        let mut page = page_ref.write();
        if page.deltas.len() < self.config.consolidation_threshold {
            return;
        }
        let size = page.consolidate();
        if size <= self.config.page_capacity {
            return;
        }
        // The page must split: move the upper half to a fresh page.
        let mid = size / 2;
        let split_keys = page.base_keys.split_off(mid);
        let split_values = page.base_values.split_off(mid);
        let low_key = split_keys[0];
        let new_page = std::sync::Arc::new(RwLock::new(Page {
            base_keys: split_keys,
            base_values: split_values,
            deltas: Vec::new(),
        }));
        // Publish: append to the mapping table and insert a directory entry.
        let new_id = {
            let mut mapping = self.mapping.write();
            mapping.push(new_page);
            mapping.len() - 1
        };
        let mut dir = self.directory.write();
        let pos = dir
            .binary_search_by_key(&low_key, |e| e.low_key)
            .unwrap_or_else(|e| e);
        dir.insert(
            pos,
            DirEntry {
                low_key,
                page_id: new_id,
            },
        );
    }
}

impl ConcurrentMap for BwTreeLike {
    fn insert(&self, key: Key, value: Value) {
        loop {
            let page_id = self.route(key);
            let page_ref = self.page(page_id);
            {
                let mut page = page_ref.write();
                // Re-validate the route: a concurrent split may have moved the
                // key range to a new page after `route` looked it up.
                if self.route(key) != page_id {
                    continue;
                }
                let existed = page.get(key).is_some();
                page.deltas.push(Delta::Insert(key, value));
                if !existed {
                    self.len.fetch_add(1, Ordering::Relaxed);
                }
                if page.deltas.len() < self.config.consolidation_threshold {
                    return;
                }
            }
            self.maintain(page_id);
            return;
        }
    }

    fn remove(&self, key: Key) -> Option<Value> {
        loop {
            let page_id = self.route(key);
            let page_ref = self.page(page_id);
            let (old, needs_maintenance) = {
                let mut page = page_ref.write();
                if self.route(key) != page_id {
                    continue;
                }
                let old = page.get(key);
                if old.is_some() {
                    page.deltas.push(Delta::Delete(key));
                    self.len.fetch_sub(1, Ordering::Relaxed);
                }
                (
                    old,
                    page.deltas.len() >= self.config.consolidation_threshold,
                )
            };
            if needs_maintenance {
                self.maintain(page_id);
            }
            return old;
        }
    }

    fn get(&self, key: Key) -> Option<Value> {
        loop {
            let page_id = self.route(key);
            let page_ref = self.page(page_id);
            let page = page_ref.read();
            // Re-validate: a split published between the route lookup and the
            // page lock may have moved the key to a new sibling page.
            if self.route(key) != page_id {
                continue;
            }
            return page.get(key);
        }
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn scan_all(&self) -> ScanStats {
        // Scan page by page in directory order; every page is replayed
        // (consolidated view) — this is the read amplification the paper
        // measures for the Bw-Tree.
        let dir: Vec<DirEntry> = self.directory.read().clone();
        let mut stats = ScanStats::default();
        for entry in dir {
            let page_ref = self.page(entry.page_id);
            let page = page_ref.read();
            for (k, v) in page.consolidated() {
                stats.visit(k, v);
            }
        }
        stats
    }

    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        if lo > hi {
            return;
        }
        let dir: Vec<DirEntry> = self.directory.read().clone();
        for (i, entry) in dir.iter().enumerate() {
            // Skip pages entirely below the range.
            if let Some(next) = dir.get(i + 1) {
                if next.low_key <= lo {
                    continue;
                }
            }
            if entry.low_key > hi {
                break;
            }
            let page_ref = self.page(entry.page_id);
            let page = page_ref.read();
            for (k, v) in page.consolidated() {
                if k > hi {
                    return;
                }
                if k >= lo {
                    visitor(k, v);
                }
            }
        }
    }

    fn from_sorted(items: &[(Key, Value)]) -> Result<Self, PmaError>
    where
        Self: Sized + Default,
    {
        BwTreeLike::from_sorted(BwTreeConfig::default(), items)
    }

    fn name(&self) -> &'static str {
        "Bw-Tree-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn small() -> BwTreeLike {
        BwTreeLike::with_config(BwTreeConfig {
            consolidation_threshold: 4,
            page_capacity: 16,
        })
    }

    #[test]
    fn bulk_load_builds_pages_and_keeps_working() {
        let items: Vec<(i64, i64)> = (0..3_000i64).map(|k| (k * 2, -k)).collect();
        let t = BwTreeLike::from_sorted(
            BwTreeConfig {
                consolidation_threshold: 4,
                page_capacity: 16,
            },
            &items,
        )
        .unwrap();
        assert_eq!(t.len(), 3_000);
        assert!(t.page_count() > 1, "chunked into multiple base pages");
        for k in (0..3_000i64).step_by(101) {
            assert_eq!(t.get(k * 2), Some(-k));
            assert_eq!(t.get(k * 2 + 1), None);
        }
        assert_eq!(t.scan_all().count, 3_000);
        // Keys below the loaded range route to the first page.
        t.insert(-5, 55);
        assert_eq!(t.get(-5), Some(55));
        // Updates keep working (delta chains, consolidation, splits).
        for k in 0..500i64 {
            t.insert(k * 2 + 1, k);
        }
        assert_eq!(t.remove(0), Some(0));
        assert_eq!(t.scan_all().count as usize, t.len());
        // Edge cases: empty, duplicates, unsorted.
        let empty = BwTreeLike::from_sorted(BwTreeConfig::default(), &[]).unwrap();
        assert_eq!(empty.len(), 0);
        empty.insert(1, 1);
        assert_eq!(empty.get(1), Some(1));
        let dup = BwTreeLike::from_sorted(BwTreeConfig::default(), &[(1, 1), (1, 2)]).unwrap();
        assert_eq!(dup.get(1), Some(2));
        assert!(BwTreeLike::from_sorted(BwTreeConfig::default(), &[(2, 0), (1, 0)]).is_err());
    }

    #[test]
    fn empty_tree() {
        let t = small();
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(1), None);
        assert_eq!(t.remove(1), None);
        assert_eq!(t.scan_all().count, 0);
        assert_eq!(t.page_count(), 1);
    }

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let t = small();
        for k in 0..2000i64 {
            t.insert(k, k * 10);
        }
        assert_eq!(t.len(), 2000);
        assert!(t.page_count() > 1, "splits must have happened");
        for k in 0..2000i64 {
            assert_eq!(t.get(k), Some(k * 10), "key {k}");
        }
        for k in (0..2000i64).step_by(2) {
            assert_eq!(t.remove(k), Some(k * 10));
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(1), Some(10));
    }

    #[test]
    fn delta_chain_upsert_semantics() {
        let t = small();
        t.insert(1, 10);
        t.insert(1, 20);
        t.insert(1, 30);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1), Some(30));
        t.remove(1);
        assert_eq!(t.get(1), None);
        t.insert(1, 40);
        assert_eq!(t.get(1), Some(40));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn scans_are_ordered_and_complete() {
        let t = small();
        for k in (0..3000i64).rev() {
            t.insert(k * 2, k);
        }
        let stats = t.scan_all();
        assert_eq!(stats.count, 3000);
        let mut prev = None;
        t.range(i64::MIN, i64::MAX, &mut |k, _| {
            if let Some(p) = prev {
                assert!(p < k, "out of order: {p} then {k}");
            }
            prev = Some(k);
        });
        let mut seen = Vec::new();
        t.range(10, 20, &mut |k, _| seen.push(k));
        assert_eq!(seen, vec![10, 12, 14, 16, 18, 20]);
    }

    #[test]
    fn consolidation_bounds_chain_length() {
        let t = small();
        for k in 0..100i64 {
            t.insert(k % 8, k);
        }
        // Only 8 distinct keys; every key holds the value of the last write
        // to it (the largest i < 100 with i % 8 == k).
        for k in 0..8i64 {
            let expected = if k < 4 { 96 + k } else { 88 + k };
            assert_eq!(t.get(k), Some(expected), "key {k}");
        }
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn concurrent_inserts_and_scans() {
        let t = Arc::new(small());
        let mut handles = Vec::new();
        for tid in 0..8i64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1500i64 {
                    t.insert(i * 8 + tid, i);
                }
            }));
        }
        let scanner = {
            let t = t.clone();
            std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..10 {
                    last = t.scan_all().count;
                }
                last
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        let _ = scanner.join().unwrap();
        assert_eq!(t.len(), 8 * 1500);
        assert_eq!(t.scan_all().count, 8 * 1500);
        for probe in (0..12_000i64).step_by(101) {
            assert_eq!(t.get(probe), Some(probe / 8), "key {probe}");
        }
    }
}
