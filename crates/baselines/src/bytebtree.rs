//! [`ByteBTree`]: the naive byte-keyed baseline, `std::collections::BTreeMap`
//! behind a reader/writer lock.
//!
//! This is deliberately the *uncompressed* competitor for the bytes/key
//! comparison in `docs/INTERNALS.md`: every key is its own heap allocation
//! (`Box<[u8]>`), every entry pays the B-tree node overhead, and nothing is
//! prefix-shared. Its [`ByteBTree::memory_stats`] uses an analytic model of
//! the std B-tree layout (there is no stable allocator introspection to
//! measure it directly):
//!
//! * per entry: the key's own heap bytes, the 16-byte `Box<[u8]>` fat
//!   pointer, and the 8-byte value slot stored in the node;
//! * per entry, amortised node overhead: std's B-tree holds `Box<[u8]>`
//!   key slots and `Value` slots in nodes of B = 6 (5..=11 entries each,
//!   ~70% average fill), so slot storage is already counted above divided
//!   by fill, plus ~16 bytes/node of header and parent/edge bookkeeping.
//!
//! The model lands within a few percent of allocator measurements for the
//! URL corpus and, importantly for the comparison, it *understates* rather
//! than overstates the baseline (allocator size-class rounding on the many
//! small key boxes is not charged).

use std::collections::BTreeMap;
use std::sync::RwLock;

use pma_common::bytemap::{ByteMemoryStats, ConcurrentByteMap, FrozenByteView};
use pma_common::Value;

/// Average node fill factor of `std`'s B-tree (B = 6, nodes hold 5..=11
/// entries; random insertion settles around 70%).
const ASSUMED_NODE_FILL: f64 = 0.70;
/// Amortised per-node header/edge bookkeeping, spread over the entries a
/// node holds at the assumed fill (~16 bytes over ~8 entries).
const NODE_OVERHEAD_PER_ENTRY: usize = 2;

/// `RwLock<BTreeMap<Box<[u8]>, Value>>`: the simplest correct byte-keyed
/// ordered map, and the memory baseline every compressed layout is measured
/// against (registry spec `bbtree`).
#[derive(Default)]
pub struct ByteBTree {
    entries: RwLock<BTreeMap<Box<[u8]>, Value>>,
}

impl ByteBTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }
}

fn analytic_heap_bytes(entries: usize, key_bytes: usize) -> usize {
    let slot = std::mem::size_of::<Box<[u8]>>() + std::mem::size_of::<Value>();
    let slot_bytes = (entries as f64 * slot as f64 / ASSUMED_NODE_FILL) as usize;
    key_bytes + slot_bytes + entries * NODE_OVERHEAD_PER_ENTRY
}

impl ConcurrentByteMap for ByteBTree {
    fn insert(&self, key: &[u8], value: Value) {
        self.entries
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.into(), value);
    }

    fn remove(&self, key: &[u8]) -> Option<Value> {
        self.entries
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key)
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        self.entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .copied()
    }

    fn len(&self) -> usize {
        self.entries.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
        let entries = self.entries.read().unwrap_or_else(|e| e.into_inner());
        let iter = entries.range::<[u8], _>((
            std::ops::Bound::Included(lo),
            match hi {
                Some(hi) => std::ops::Bound::Excluded(hi),
                None => std::ops::Bound::Unbounded,
            },
        ));
        for (key, &value) in iter {
            visitor(key, value);
        }
    }

    fn insert_batch(&self, items: &[(Vec<u8>, Value)]) {
        let mut entries = self.entries.write().unwrap_or_else(|e| e.into_inner());
        for (key, value) in items {
            entries.insert(key.as_slice().into(), *value);
        }
    }

    fn frozen(&self) -> Option<Box<dyn FrozenByteView>> {
        Some(Box::new(FrozenByteBTree {
            entries: self
                .entries
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        }))
    }

    fn memory_stats(&self) -> Option<ByteMemoryStats> {
        let entries = self.entries.read().unwrap_or_else(|e| e.into_inner());
        let key_bytes: usize = entries.keys().map(|k| k.len()).sum();
        Some(ByteMemoryStats {
            entries: entries.len(),
            heap_bytes: analytic_heap_bytes(entries.len(), key_bytes),
            key_bytes,
        })
    }

    fn name(&self) -> &'static str {
        "byte-btree"
    }
}

/// Frozen view of a [`ByteBTree`]: a full clone taken at capture time (the
/// baseline has no structural sharing to exploit — which is itself a data
/// point for the snapshot-cost comparison).
struct FrozenByteBTree {
    entries: BTreeMap<Box<[u8]>, Value>,
}

impl FrozenByteView for FrozenByteBTree {
    fn get(&self, key: &[u8]) -> Option<Value> {
        self.entries.get(key).copied()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
        let iter = self.entries.range::<[u8], _>((
            std::ops::Bound::Included(lo),
            match hi {
                Some(hi) => std::ops::Bound::Excluded(hi),
                None => std::ops::Bound::Unbounded,
            },
        ));
        for (key, &value) in iter {
            visitor(key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_range_ops_work() {
        let map = ByteBTree::new();
        map.insert(b"user:2", 2);
        map.insert(b"user:1", 1);
        map.insert(b"other", 0);
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(b"user:1"), Some(1));
        let mut seen = Vec::new();
        map.prefix(b"user:", &mut |key, value| seen.push((key.to_vec(), value)));
        assert_eq!(seen, vec![(b"user:1".to_vec(), 1), (b"user:2".to_vec(), 2)]);
        assert_eq!(map.remove(b"other"), Some(0));
        assert_eq!(map.scan_all().count, 2);
    }

    #[test]
    fn frozen_clone_is_point_in_time() {
        let map = ByteBTree::new();
        map.insert(b"a", 1);
        let frozen = map.frozen().unwrap();
        map.insert(b"b", 2);
        assert_eq!(frozen.len(), 1);
        assert_eq!(frozen.get(b"b"), None);
        assert_eq!(frozen.scan_all().count, 1);
    }

    #[test]
    fn memory_model_charges_boxes_and_nodes() {
        let map = ByteBTree::new();
        for i in 0..1000 {
            map.insert(format!("https://example.com/users/{i:05}").as_bytes(), i);
        }
        let mem = map.memory_stats().unwrap();
        assert_eq!(mem.entries, 1000);
        assert_eq!(mem.key_bytes, 1000 * 31);
        // The model must charge strictly more than the raw key payload:
        // boxes, value slots and node overhead all land on top.
        assert!(mem.heap_bytes > mem.key_bytes + 1000 * 24, "{mem:?}");
        assert!(mem.bytes_per_key() > 31.0 + 24.0);
    }
}
