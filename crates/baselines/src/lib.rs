//! Baseline concurrent ordered indexes used by the paper's evaluation
//! (section 4): a lock-coupled B+-tree (the "ART / B+-tree" competitor's
//! storage layer), an Adaptive Radix Tree, a Masstree-like write-optimised
//! tree and a Bw-Tree-like delta structure.
//!
//! Every structure implements [`pma_common::ConcurrentMap`], so the workload
//! drivers and benchmark harness treat them interchangeably with the
//! concurrent PMA.

#![warn(missing_docs)]

pub mod art;
pub mod backends;
pub mod btree;
pub mod bwtree;
pub mod bytebtree;
pub mod masstree;

pub use art::ArtIndex;
pub use backends::register_backends;
pub use btree::{BPlusTree, BTreeConfig};
pub use bwtree::{BwTreeConfig, BwTreeLike};
pub use bytebtree::ByteBTree;
pub use masstree::MasstreeLike;
