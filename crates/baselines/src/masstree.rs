//! A Masstree-like write-optimised tree (competitor of the paper's
//! evaluation, section 4).
//!
//! Masstree [Mao et al., EuroSys'12] is a trie of B+-trees with very small
//! nodes (256-byte leaves), unsorted leaf entries ordered through a
//! permutation word, and optimistic concurrency control for readers. Because
//! the keys of the paper's workload are fixed 8-byte integers, the trie
//! degenerates to a single B+-tree layer; what remains performance-relevant —
//! and what this implementation reproduces — is the node layout:
//!
//! * tiny leaves (16 entries ≈ 256 bytes of key/value data), which keep
//!   insertions cheap but force range scans through many pointer hops;
//! * unsorted leaf entries with a permutation array, so an insertion appends
//!   instead of shifting, and every ordered scan pays an extra indirection.
//!
//! Substitution note (documented in DESIGN.md): readers use the same
//! read-write node locks as the B+-tree rather than Masstree's optimistic
//! version validation. This keeps the implementation safe without `unsafe`
//! version games; the resulting shape — updates faster than the PMA, scans an
//! order of magnitude slower — matches the paper's figures.

use pma_common::{ConcurrentMap, Key, ScanStats, Value};

use crate::btree::{BPlusTree, BTreeConfig};

/// A Masstree-like concurrent map: tiny unsorted leaves, fast writes, slow
/// ordered scans.
///
/// # Examples
/// ```
/// use pma_baselines::masstree::MasstreeLike;
/// use pma_common::ConcurrentMap;
///
/// let tree = MasstreeLike::new();
/// tree.insert(7, 70);
/// assert_eq!(tree.get(7), Some(70));
/// ```
#[derive(Debug)]
pub struct MasstreeLike {
    inner: BPlusTree,
}

impl Default for MasstreeLike {
    fn default() -> Self {
        Self::new()
    }
}

impl MasstreeLike {
    /// Creates an empty tree with Masstree-style node parameters.
    pub fn new() -> Self {
        Self {
            inner: BPlusTree::with_name(BTreeConfig::masstree_like(), "Masstree-like"),
        }
    }

    /// Node configuration used by this structure (test/inspection hook).
    pub fn config(&self) -> &BTreeConfig {
        self.inner.config()
    }

    /// Builds a tree pre-populated with `items`, which must be sorted by key
    /// in non-decreasing order (the last entry wins on duplicate keys).
    /// Delegates to the B+-tree's bottom-up bulk load with the Masstree node
    /// layout (tiny leaves, identity permutation).
    pub fn from_sorted(items: &[(Key, Value)]) -> Result<Self, pma_common::PmaError> {
        Ok(Self {
            inner: BPlusTree::from_sorted(BTreeConfig::masstree_like(), "Masstree-like", items)?,
        })
    }
}

impl ConcurrentMap for MasstreeLike {
    fn insert(&self, key: Key, value: Value) {
        self.inner.insert(key, value)
    }

    fn remove(&self, key: Key) -> Option<Value> {
        self.inner.remove(key)
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.inner.get(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn scan_all(&self) -> ScanStats {
        self.inner.scan_all()
    }

    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        self.inner.range(lo, hi, visitor)
    }

    fn from_sorted(items: &[(Key, Value)]) -> Result<Self, pma_common::PmaError>
    where
        Self: Sized + Default,
    {
        MasstreeLike::from_sorted(items)
    }

    fn name(&self) -> &'static str {
        "Masstree-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn configuration_matches_masstree_layout() {
        let t = MasstreeLike::new();
        assert_eq!(t.config().leaf_capacity, 16);
        assert!(t.config().unsorted_leaves);
        assert_eq!(t.name(), "Masstree-like");
    }

    #[test]
    fn basic_operations() {
        let t = MasstreeLike::new();
        for k in 0..5000i64 {
            t.insert(k, k + 1);
        }
        assert_eq!(t.len(), 5000);
        assert_eq!(t.get(1234), Some(1235));
        assert_eq!(t.remove(1234), Some(1235));
        assert_eq!(t.get(1234), None);
        assert_eq!(t.scan_all().count, 4999);
    }

    #[test]
    fn ordered_scan_despite_unsorted_leaves() {
        let t = MasstreeLike::new();
        for k in (0..3000i64).rev() {
            t.insert(k * 7, k);
        }
        let mut prev = None;
        t.range(i64::MIN, i64::MAX, &mut |k, _| {
            if let Some(p) = prev {
                assert!(p < k);
            }
            prev = Some(k);
        });
    }

    #[test]
    fn concurrent_insertions() {
        let t = Arc::new(MasstreeLike::new());
        let mut handles = Vec::new();
        for tid in 0..8i64 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1500i64 {
                    t.insert(i * 8 + tid, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8 * 1500);
        assert_eq!(t.scan_all().count, 8 * 1500);
    }
}
