//! Criterion benchmark for the bulk-load subsystem: constructing a structure
//! pre-populated with a sorted run (`Registry::build_loaded`, backed by each
//! backend's native `from_sorted`) versus the cold-ingestion baseline of
//! looping `insert` over the same keys.
//!
//! The PR's acceptance bar — bulk load ≥ 5× faster than looped insert at 1M
//! keys on the PMA — can be checked directly with
//! `cargo bench -p pma-bench --bench bulk_load`; the default element count is
//! kept smaller so the suite stays CI-friendly.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pma_workloads::{build_loaded, build_or_panic, label};

const N: usize = 200_000;

/// Short measurement windows keep the full suite runnable in CI; raise them
/// for publication-quality numbers.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
}

fn specs() -> Vec<&'static str> {
    vec!["pma-batch:100", "btree", "masstree", "bwtree", "art"]
}

fn sorted_items(n: usize) -> Vec<(i64, i64)> {
    (0..n as i64).map(|k| (k * 7, k)).collect()
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_load_from_sorted");
    group.sample_size(10);
    tune(&mut group);
    group.throughput(Throughput::Elements(N as u64));
    let items = sorted_items(N);
    for spec in specs() {
        group.bench_function(BenchmarkId::from_parameter(label(spec)), |b| {
            b.iter(|| {
                let map = build_loaded(spec, &items).expect("bulk load");
                assert_eq!(map.len(), N);
                map
            });
        });
    }
    group.finish();
}

fn bench_looped_insert_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_load_looped_insert_baseline");
    group.sample_size(10);
    tune(&mut group);
    group.throughput(Throughput::Elements(N as u64));
    let items = sorted_items(N);
    for spec in specs() {
        group.bench_function(BenchmarkId::from_parameter(label(spec)), |b| {
            b.iter(|| {
                let map = build_or_panic(spec);
                for &(k, v) in &items {
                    map.insert(k, v);
                }
                map.flush();
                assert_eq!(map.len(), N);
                map
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bulk_load, bench_looped_insert_baseline);
criterion_main!(benches);
