//! Criterion benchmark for the combining write path: queued-op throughput
//! under high gate contention, before/after the owned-window apply refactor.
//!
//! Four writer threads hammer interleaved keys through a small-gate PMA so
//! almost every operation either finds another writer on its gate (and joins
//! a combining queue) or lands on a gate the service holds mid-rebalance
//! (claim-time drains, in-window settles). The refactor moved the queue
//! resolution from "apply, maybe replay later" to a single owned-window
//! primitive; this bench shows that doing it safely is not a throughput tax.
//! The synchronous mode rides along as the no-queue baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pma_core::{ConcurrentPma, PmaParams, UpdateMode};

const THREADS: i64 = 4;
const OPS_PER_THREAD: i64 = 2_000;

/// Short measurement windows keep the full suite runnable in CI; raise them
/// for publication-quality numbers.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
}

fn modes() -> Vec<(&'static str, UpdateMode)> {
    vec![
        ("sync", UpdateMode::Synchronous),
        ("1by1", UpdateMode::OneByOne),
        (
            "batch-1ms",
            UpdateMode::Batch {
                t_delay: Duration::from_millis(1),
            },
        ),
    ]
}

/// One contended round: every thread interleaves inserts and removes over
/// keys striped across the whole array, so neighbouring threads constantly
/// collide on the same gates while the array grows (every third key is kept)
/// and the rebalancer keeps claiming windows under the queues.
fn contended_round(pma: &ConcurrentPma) {
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let key = i * THREADS + t;
                    pma.insert(key, key);
                    if i % 3 != 0 {
                        pma.remove(key);
                    }
                }
            });
        }
    });
    pma.flush();
}

fn bench_combining_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("combining_queued_ops");
    group.sample_size(10);
    tune(&mut group);
    // Each round issues inserts plus removes for two thirds of the keys.
    let ops = (THREADS * OPS_PER_THREAD) as u64 * 5 / 3;
    group.throughput(Throughput::Elements(ops));
    for (label, mode) in modes() {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let pma = ConcurrentPma::new(PmaParams {
                    update_mode: mode,
                    ..PmaParams::small()
                })
                .expect("small params are valid");
                contended_round(&pma);
                assert_eq!(
                    pma.len() as i64,
                    THREADS * ((OPS_PER_THREAD + 2) / 3),
                    "{label}: combining lost or resurrected operations"
                );
                pma
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_combining_contention);
criterion_main!(benches);
