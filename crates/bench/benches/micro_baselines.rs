//! Criterion micro-benchmarks comparing single-threaded update and lookup
//! costs across every structure of the paper's evaluation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};

use pma_workloads::{build_or_panic, label};

const N: usize = 50_000;

/// Short measurement windows keep the full suite runnable in CI; raise them
/// for publication-quality numbers.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
}

fn shuffled_keys() -> Vec<i64> {
    let mut keys: Vec<i64> = (0..N as i64).map(|k| k * 3).collect();
    keys.shuffle(&mut SmallRng::seed_from_u64(42));
    keys
}

fn all_specs() -> Vec<&'static str> {
    vec![
        "masstree",
        "bwtree",
        "btree",
        "art",
        "pma-batch:100",
        "pma-sync",
    ]
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_insert_1t");
    group.sample_size(10);
    tune(&mut group);
    let data = shuffled_keys();
    for spec in all_specs() {
        group.bench_with_input(
            BenchmarkId::from_parameter(label(spec)),
            &data,
            |b, data| {
                b.iter_batched(
                    || build_or_panic(spec),
                    |map| {
                        for &k in data {
                            map.insert(k, k);
                        }
                        map.flush();
                        map
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_point_lookup");
    group.sample_size(20);
    tune(&mut group);
    let data = shuffled_keys();
    for spec in all_specs() {
        let map = build_or_panic(spec);
        for &k in &data {
            map.insert(k, k);
        }
        map.flush();
        group.bench_with_input(
            BenchmarkId::from_parameter(label(spec)),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut hits = 0u64;
                    for &k in data.iter().step_by(9) {
                        if map.get(k).is_some() {
                            hits += 1;
                        }
                    }
                    hits
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_get);
criterion_main!(benches);
