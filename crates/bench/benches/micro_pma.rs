//! Criterion micro-benchmarks for the Packed Memory Array itself: sequential
//! vs concurrent, insertion order, point lookups and ordered iteration.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};

use pma_core::{ConcurrentPma, PackedMemoryArray, PmaParams, UpdateMode};

const N: usize = 100_000;

/// Short measurement windows keep the full suite runnable in CI; raise them
/// for publication-quality numbers.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
}

fn keys(shuffled: bool) -> Vec<i64> {
    let mut keys: Vec<i64> = (0..N as i64).collect();
    if shuffled {
        keys.shuffle(&mut SmallRng::seed_from_u64(7));
    }
    keys
}

fn bench_sequential_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_pma_insert");
    group.sample_size(10);
    tune(&mut group);
    for (label, shuffled) in [("ascending", false), ("shuffled", true)] {
        let data = keys(shuffled);
        group.bench_with_input(BenchmarkId::from_parameter(label), &data, |b, data| {
            b.iter_batched(
                PackedMemoryArray::<i64, i64>::with_defaults,
                |mut pma| {
                    for &k in data {
                        pma.insert(k, k);
                    }
                    pma
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_concurrent_insert_single_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_pma_insert_1t");
    group.sample_size(10);
    tune(&mut group);
    let data = keys(true);
    for (label, mode) in [
        ("sync", UpdateMode::Synchronous),
        ("batch", UpdateMode::default()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &data, |b, data| {
            b.iter_batched(
                || {
                    ConcurrentPma::new(PmaParams {
                        update_mode: mode,
                        ..PmaParams::default()
                    })
                    .unwrap()
                },
                |pma| {
                    for &k in data {
                        pma.insert(k, k);
                    }
                    pma.flush();
                    pma
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_point_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("pma_point_lookup");
    group.sample_size(20);
    tune(&mut group);
    let data = keys(true);
    let mut seq = PackedMemoryArray::<i64, i64>::with_defaults();
    let conc = ConcurrentPma::with_defaults();
    for &k in &data {
        seq.insert(k, k);
        conc.insert(k, k);
    }
    conc.flush();
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &k in data.iter().step_by(7) {
                if seq.get(&k).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("concurrent", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &k in data.iter().step_by(7) {
                if conc.get(k).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

fn bench_ordered_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("pma_ordered_scan");
    group.sample_size(20);
    tune(&mut group);
    let data = keys(true);
    let mut seq = PackedMemoryArray::<i64, i64>::with_defaults();
    let conc = ConcurrentPma::with_defaults();
    for &k in &data {
        seq.insert(k, k);
        conc.insert(k, k);
    }
    conc.flush();
    group.bench_function("sequential_iter", |b| {
        b.iter(|| seq.iter().map(|(k, _)| k as i128).sum::<i128>())
    });
    group.bench_function("concurrent_scan_all", |b| {
        b.iter(|| conc.scan_all().key_sum)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sequential_insert,
    bench_concurrent_insert_single_thread,
    bench_point_lookups,
    bench_ordered_scan
);
criterion_main!(benches);
