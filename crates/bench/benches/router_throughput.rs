//! Thread-per-core router throughput: the closed-loop mixed workload at 8
//! client threads, comparing the bare `sharded:8` engine against the same
//! engine behind `cores:<n>` routers (clients route + ship, pinned workers
//! drain and apply).
//!
//! On a multi-core host the router's wins come from cache affinity and from
//! turning N clients' cross-shard contention into per-worker FIFO drains; on
//! a single-core container both arrangements timeshare one CPU and the
//! router adds a queue hop, so parity (not speedup) is the expected result
//! there — see ROADMAP's thread-per-core entry. Check with
//! `cargo bench -p pma-bench --bench router_throughput`; the open-loop
//! (arrival-scheduled) comparison lives in bench-smoke's `open-loop` cells.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use pma_workloads::{
    build_loaded, label, run_workload, Distribution, ThreadSplit, UpdatePattern, WorkloadSpec,
};

/// Preloaded elements (defines the shard fences via the bulk loader).
const PRELOAD: usize = 100_000;
/// Update operations of the measured phase.
const UPDATES: usize = 100_000;
/// Key domain (`beta`), shared by preload and updates.
const KEY_RANGE: u64 = 1 << 22;
/// Client threads of the comparison (the PR's acceptance point).
const CLIENTS: usize = 8;

fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
}

fn preload_items() -> Vec<(i64, i64)> {
    let stride = (KEY_RANGE as usize / PRELOAD).max(1) as i64;
    (0..PRELOAD as i64).map(|i| (i * stride, i)).collect()
}

fn mixed_spec() -> WorkloadSpec {
    let scan_threads = (CLIENTS / 4).max(1);
    WorkloadSpec {
        distribution: Distribution::Uniform,
        key_range: KEY_RANGE,
        total_elements: UPDATES,
        threads: ThreadSplit {
            update_threads: (CLIENTS - scan_threads).max(1),
            scan_threads,
        },
        pattern: UpdatePattern::InsertOnly,
        seed: 0xC0FFEE,
        ..WorkloadSpec::default()
    }
}

fn bench_router_vs_direct(c: &mut Criterion) {
    let items = preload_items();
    let specs = [
        "sharded:8:pma-batch:100",
        "cores:2:sharded:8:pma-batch:100",
        "cores:4:sharded:8:pma-batch:100",
    ];
    let mut group = c.benchmark_group(format!("router_mixed_{CLIENTS}t"));
    tune(&mut group);
    group.throughput(Throughput::Elements(UPDATES as u64));
    for spec in specs {
        group.bench_with_input(BenchmarkId::from_parameter(label(spec)), spec, |b, spec| {
            // Construction (bulk load + worker spawn/pinning) runs in the
            // setup closure so the routed candidates don't pay their extra
            // startup inside the measured phase.
            b.iter_batched(
                || build_loaded(spec, &items).expect("bulk load"),
                |map| {
                    let m = run_workload(&*map, &mixed_spec());
                    assert!(m.update_ops >= UPDATES as u64);
                    m.update_ops
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_router_vs_direct);
criterion_main!(benches);
