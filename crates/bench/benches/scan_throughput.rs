//! Criterion benchmark for the paper's headline claim: ordered scans over the
//! PMA are roughly an order of magnitude faster than over the tree baselines
//! (Figure 3, lower plots).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pma_workloads::StructureKind;

const N: usize = 200_000;

/// Short measurement windows keep the full suite runnable in CI; raise them
/// for publication-quality numbers.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
}


fn kinds() -> Vec<StructureKind> {
    vec![
        StructureKind::Masstree,
        StructureKind::BwTree,
        StructureKind::ArtBTree,
        StructureKind::PmaBatch(100),
    ]
}

fn bench_full_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_ordered_scan");
    group.sample_size(15);
    tune(&mut group);
    group.throughput(Throughput::Elements(N as u64));
    for kind in kinds() {
        let map = kind.build();
        for k in 0..N as i64 {
            map.insert(k * 7, k);
        }
        map.flush();
        assert_eq!(map.len(), N);
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let stats = map.scan_all();
                assert_eq!(stats.count, N as u64);
                stats.key_sum
            });
        });
    }
    group.finish();
}

fn bench_range_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_scan_10k");
    group.sample_size(20);
    tune(&mut group);
    group.throughput(Throughput::Elements(10_000));
    for kind in kinds() {
        let map = kind.build();
        for k in 0..N as i64 {
            map.insert(k, k);
        }
        map.flush();
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let mut sum = 0i64;
                map.range(50_000, 59_999, &mut |k, _| sum += k);
                sum
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_scan, bench_range_scan);
criterion_main!(benches);
