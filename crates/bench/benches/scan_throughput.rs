//! Criterion benchmark for the paper's headline claim: ordered scans over the
//! PMA are roughly an order of magnitude faster than over the tree baselines
//! (Figure 3, lower plots).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pma_workloads::{build_or_panic, label};

const N: usize = 200_000;

/// Short measurement windows keep the full suite runnable in CI; raise them
/// for publication-quality numbers.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
}

fn specs() -> Vec<&'static str> {
    vec![
        "masstree",
        "bwtree",
        "btree",
        "pma-batch:100",
        "sharded:8:pma-batch:100",
    ]
}

fn bench_full_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_ordered_scan");
    group.sample_size(15);
    tune(&mut group);
    group.throughput(Throughput::Elements(N as u64));
    for spec in specs() {
        let map = build_or_panic(spec);
        for k in 0..N as i64 {
            map.insert(k * 7, k);
        }
        map.flush();
        assert_eq!(map.len(), N);
        group.bench_function(BenchmarkId::from_parameter(label(spec)), |b| {
            b.iter(|| {
                let stats = map.scan_all();
                assert_eq!(stats.count, N as u64);
                stats.key_sum
            });
        });
    }
    group.finish();
}

fn bench_range_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_scan_10k");
    group.sample_size(20);
    tune(&mut group);
    group.throughput(Throughput::Elements(10_000));
    for spec in specs() {
        let map = build_or_panic(spec);
        for k in 0..N as i64 {
            map.insert(k, k);
        }
        map.flush();
        group.bench_function(BenchmarkId::from_parameter(label(spec)), |b| {
            b.iter(|| {
                let mut sum = 0i64;
                map.range(50_000, 59_999, &mut |k, _| sum += k);
                sum
            });
        });
    }
    group.finish();
}

/// The trait-level ranged scan (`scan_range`), which the PMA serves natively
/// through its static index.
fn bench_scan_range_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_range_10k_stats");
    group.sample_size(20);
    tune(&mut group);
    group.throughput(Throughput::Elements(10_000));
    for spec in specs() {
        let map = build_or_panic(spec);
        for k in 0..N as i64 {
            map.insert(k, k);
        }
        map.flush();
        group.bench_function(BenchmarkId::from_parameter(label(spec)), |b| {
            b.iter(|| {
                let stats = map.scan_range(50_000, 59_999);
                assert_eq!(stats.count, 10_000);
                stats.key_sum
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_scan,
    bench_range_scan,
    bench_scan_range_stats
);
criterion_main!(benches);
