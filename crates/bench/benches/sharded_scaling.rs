//! Sharding scaling bench: a threads × shards throughput grid on the mixed
//! insert/scan workload (3/4 updater threads, 1/4 scanner threads), comparing
//! `sharded:<s>:pma-batch:100` against the single paper-instance.
//!
//! Every candidate is bulk-loaded with the same sorted run before the
//! measured phase, so the sharded directory's fences are data-driven (each
//! shard starts with an equal slice of the key domain) and the updater
//! threads hit all shards — the scenario the engine is built for: S
//! rebalancer services and epoch domains absorbing the write load in
//! parallel while scans merge the per-shard streams.
//!
//! The PR's acceptance bar — `sharded:8:pma-batch:100` at or above the
//! single instance at ≥ 8 threads — can be checked directly with
//! `cargo bench -p pma-bench --bench sharded_scaling`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use pma_workloads::{
    build_loaded, label, run_workload, Distribution, ThreadSplit, UpdatePattern, WorkloadSpec,
};

/// Preloaded elements (defines the shard fences via the bulk loader).
const PRELOAD: usize = 100_000;
/// Update operations of the measured phase.
const UPDATES: usize = 100_000;
/// Key domain (`beta`), shared by preload and updates.
const KEY_RANGE: u64 = 1 << 22;

fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
}

fn preload_items() -> Vec<(i64, i64)> {
    let stride = (KEY_RANGE as usize / PRELOAD).max(1) as i64;
    (0..PRELOAD as i64).map(|i| (i * stride, i)).collect()
}

fn mixed_spec(total_threads: usize) -> WorkloadSpec {
    let scan_threads = (total_threads / 4).max(1);
    WorkloadSpec {
        distribution: Distribution::Uniform,
        key_range: KEY_RANGE,
        total_elements: UPDATES,
        threads: ThreadSplit {
            update_threads: (total_threads - scan_threads).max(1),
            scan_threads,
        },
        pattern: UpdatePattern::InsertOnly,
        seed: 0xC0FFEE,
        ..WorkloadSpec::default()
    }
}

fn bench_thread_shard_grid(c: &mut Criterion) {
    let items = preload_items();
    let specs = [
        "pma-batch:100",
        "sharded:2:pma-batch:100",
        "sharded:4:pma-batch:100",
        "sharded:8:pma-batch:100",
    ];
    for &threads in &[2usize, 4, 8] {
        let mut group = c.benchmark_group(format!("sharded_scaling_mixed_{threads}t"));
        tune(&mut group);
        group.throughput(Throughput::Elements(UPDATES as u64));
        for spec in specs {
            group.bench_with_input(
                BenchmarkId::from_parameter(label(spec)),
                &threads,
                |b, &threads| {
                    // The bulk-load construction runs in the setup closure so
                    // it is excluded from the measurement — the sharded
                    // variants would otherwise pay strictly more setup
                    // (S inner services + the pool/monitor) per iteration
                    // and the update-throughput comparison would be biased.
                    // (Teardown still falls inside the timed region for all
                    // candidates alike; it is milliseconds against a
                    // >50 ms measured phase.)
                    b.iter_batched(
                        || build_loaded(spec, &items).expect("bulk load"),
                        |map| {
                            let m = run_workload(&*map, &mixed_spec(threads));
                            // Per-thread op counts round up, so the total
                            // can slightly exceed the target.
                            assert!(m.update_ops >= UPDATES as u64);
                            m.update_ops
                        },
                        BatchSize::LargeInput,
                    );
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_thread_shard_grid);
criterion_main!(benches);
