//! Micro-benchmarks for the hand-rolled SIMD kernels in `pma_common::simd`:
//! vectorised rank (`count_le`) against its scalar fallback and plain binary
//! search across run lengths, plus the fence-routing and run-copy kernels.
//!
//! The interesting contrast is runs of [`pma_common::simd::SMALL_RUN`]
//! elements and above — the hybrid kernel narrows longer runs with a scalar
//! binary search first, so the vector win shows up in the final window scan.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pma_common::simd::{self, Variant};

/// Short measurement windows keep the full suite runnable in CI; raise them
/// for publication-quality numbers.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2));
}

/// A sorted run of `len` keys with duplicates, plus probe keys that land
/// uniformly across (and slightly outside) the run.
fn run_and_probes(len: usize) -> (Vec<i64>, Vec<i64>) {
    let mut rng = SmallRng::seed_from_u64(0x51AD);
    let mut run: Vec<i64> = (0..len)
        .map(|_| rng.gen_range(-1_000_000..1_000_000))
        .collect();
    run.sort_unstable();
    let probes: Vec<i64> = (0..256)
        .map(|_| rng.gen_range(-1_100_000..1_100_000))
        .collect();
    (run, probes)
}

fn bench_count_le(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_count_le");
    group.sample_size(30);
    tune(&mut group);
    let active = simd::active_variant();
    for len in [16usize, 64, 256, 1024, 4096] {
        let (run, probes) = run_and_probes(len);
        group.bench_with_input(
            BenchmarkId::new("binary_search", len),
            &(&run, &probes),
            |b, (run, probes)| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &p in probes.iter() {
                        acc += run.partition_point(|&x| x <= p);
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scalar", len),
            &(&run, &probes),
            |b, (run, probes)| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &p in probes.iter() {
                        acc += simd::count_le_with(Variant::Scalar, run, p);
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(active.name(), len),
            &(&run, &probes),
            |b, (run, probes)| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &p in probes.iter() {
                        acc += simd::count_le_with(active, run, p);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_fence_route");
    group.sample_size(30);
    tune(&mut group);
    for fences in [8usize, 32, 128] {
        let separators: Vec<i64> = (0..fences as i64).map(|i| i * 1000).collect();
        let aligned = simd::AlignedKeys::from_slice(&separators);
        let mut rng = SmallRng::seed_from_u64(9);
        let probes: Vec<i64> = (0..256)
            .map(|_| rng.gen_range(-500..(fences as i64) * 1000 + 500))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("binary_search", fences),
            &(&separators, &probes),
            |b, (seps, probes)| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &p in probes.iter() {
                        acc += seps.partition_point(|&x| x <= p).saturating_sub(1);
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("simd_route", fences),
            &probes,
            |b, probes| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &p in probes.iter() {
                        acc += simd::route(&aligned, p);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_append_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_append_run");
    group.sample_size(30);
    tune(&mut group);
    for len in [64usize, 1024, 4096] {
        let src: Vec<i64> = (0..len as i64).collect();
        group.bench_with_input(
            BenchmarkId::new("extend_from_slice", len),
            &src,
            |b, src| {
                let mut dst = Vec::with_capacity(len * 2);
                b.iter(|| {
                    dst.clear();
                    dst.extend_from_slice(src);
                    dst.len()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("append_run", len), &src, |b, src| {
            let mut dst = Vec::with_capacity(len * 2);
            b.iter(|| {
                dst.clear();
                simd::append_run(&mut dst, src);
                dst.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_count_le, bench_route, bench_append_run);
criterion_main!(benches);
