//! Snapshot-interference bench: what does a `frozen()` scan cost while
//! writers churn the live map?
//!
//! A frozen view pins reference-counted chunk versions; concurrent writers
//! copy a pinned chunk before mutating it (copy-on-write) instead of
//! blocking behind the scan or mutating under it. The scan therefore never
//! waits on writers — the only interference left is the memory traffic of
//! the copies and the shared cache/bandwidth pressure. This bench measures
//! exactly that margin, per backend:
//!
//! * `isolated` — freeze-and-scan throughput on a quiescent map;
//! * `contended` — the same loop while 4 writer threads overwrite the
//!   preloaded keys as fast as they can (overwrites force the CoW path:
//!   every settle lands in a chunk some live view pins);
//! * `writers` — the writers' own throughput while the scans run, with the
//!   `cow_copies` the run charged to them.
//!
//! A `live` row runs the same contended loop over the *live* map's
//! `scan_all` instead of a frozen view — the control separating snapshot
//! overhead from plain scan-vs-writer contention.
//!
//! The acceptance bar: contended freeze-scan throughput must stay within
//! **2x** of isolated (ratio ≥ 0.5), after normalising by the scanner's
//! fair CPU share `min(1, cores / (writers + 1))` — on the multi-core
//! runner class the bar targets the share is 1 and the raw ratio applies;
//! on a starved box the writers time-slice the scanner off the core, which
//! is scheduling, not snapshot interference (the `live` control shows the
//! same drop there). Like `split_latency`, the bar only hard-fails under
//! `SNAPSHOT_BENCH_ENFORCE=1` — absolute figures on a busy shared runner
//! are noise, the ratios are printed either way.
//!
//! Run with `cargo bench -p pma-bench --bench snapshot_interference`
//! (`SNAPSHOT_BENCH_KEYS=100000` for a quicker pass).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pma_common::ConcurrentMap;

/// Backends measured: the paper instance and the sharded engine over it.
const BACKENDS: &[&str] = &["pma-batch:100", "sharded:8:pma-batch:100"];

const WRITERS: usize = 4;

/// Measurement window per configuration.
const WINDOW: Duration = Duration::from_millis(600);

fn preload_keys() -> usize {
    std::env::var("SNAPSHOT_BENCH_KEYS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

struct Outcome {
    /// Elements visited per second by the freeze-and-scan loop.
    scan_eps: f64,
    /// Freeze-and-scan passes completed in the window.
    passes: u64,
    /// Writer ops per second (0 in the isolated configuration).
    writer_ops_per_s: f64,
    /// Chunk copies the run forced (CoW under pinned views).
    cow_copies: u64,
}

/// Preloads `keys` elements, then runs the scan loop for [`WINDOW`] —
/// freeze-and-scan when `frozen`, the live map's `scan_all` otherwise —
/// optionally against `WRITERS` overwriting threads.
fn run(spec: &str, keys: usize, contended: bool, frozen: bool) -> Outcome {
    pma_workloads::ensure_builtin_backends();
    let map = pma_workloads::build_or_panic(spec);
    let items: Vec<(i64, i64)> = (0..keys as i64).map(|k| (k, k)).collect();
    map.insert_batch(&items);
    map.flush();
    let cow_before = map
        .maintenance_stats()
        .map(|m| m.cow_copies)
        .unwrap_or_default();

    let stop = AtomicBool::new(false);
    let writer_ops = AtomicU64::new(0);
    let (scanned, passes, elapsed) = std::thread::scope(|scope| {
        let map = &*map;
        let stop = &stop;
        let writer_ops = &writer_ops;
        if contended {
            for t in 0..WRITERS {
                scope.spawn(move || {
                    // Overwrite the preloaded keys via an LCG walk: the value
                    // changes on every visit, the cardinality never does, so
                    // the churn settles in place — straight into chunks the
                    // scanner's views pin.
                    let mut state = 0x9E37_79B9u64.wrapping_add(t as u64);
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let key = (state >> 16) as i64 % keys as i64;
                        map.insert(key, state as i64);
                        ops += 1;
                    }
                    writer_ops.fetch_add(ops, Ordering::Relaxed);
                });
            }
        }
        let started = Instant::now();
        let mut scanned = 0u64;
        let mut passes = 0u64;
        while started.elapsed() < WINDOW {
            if frozen {
                let view = map.frozen().expect("backend must support frozen views");
                scanned += view.scan_all().count;
            } else {
                scanned += map.scan_all().count;
            }
            passes += 1;
        }
        let elapsed = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        (scanned, passes, elapsed)
    });
    map.flush();

    let cow_after = map
        .maintenance_stats()
        .map(|m| m.cow_copies)
        .unwrap_or_default();
    Outcome {
        scan_eps: scanned as f64 / elapsed.as_secs_f64(),
        passes,
        writer_ops_per_s: writer_ops.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64(),
        cow_copies: cow_after - cow_before,
    }
}

fn main() {
    let keys = preload_keys();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // The scanner's fair CPU share against WRITERS spinning threads: 1 on
    // the multi-core runner class the bar targets, < 1 on a starved box
    // where the writers time-slice the scanner off the core.
    let share = (cores as f64 / (WRITERS + 1) as f64).min(1.0);
    println!(
        "snapshot_interference: {keys} preloaded keys, freeze-and-scan loop \
         vs {WRITERS} overwriting writers, {}ms windows, {cores} cores \
         (scanner fair share {share:.2})\n",
        WINDOW.as_millis()
    );
    println!(
        "{:<24} {:<16} {:>14} {:>8} {:>14} {:>12}",
        "backend", "mode", "scan[Melem/s]", "passes", "writes[Mop/s]", "cow copies"
    );
    let mut worst_ratio = f64::INFINITY;
    for &spec in BACKENDS {
        let row = |mode: &str, outcome: &Outcome| {
            println!(
                "{:<24} {:<16} {:>14.1} {:>8} {:>14.2} {:>12}",
                spec,
                mode,
                outcome.scan_eps / 1.0e6,
                outcome.passes,
                outcome.writer_ops_per_s / 1.0e6,
                outcome.cow_copies,
            );
        };
        let isolated = run(spec, keys, false, true);
        row("frozen/isolated", &isolated);
        let contended = run(spec, keys, true, true);
        row("frozen/contended", &contended);
        let live = run(spec, keys, true, false);
        row("live/contended", &live);
        let ratio = contended.scan_eps / (isolated.scan_eps * share).max(1.0);
        worst_ratio = worst_ratio.min(ratio);
        println!(
            "{:<24} contended frozen scan kept {:.0}% of its fair-share \
             isolated throughput ({:.0}% of the live control)\n",
            spec,
            ratio * 100.0,
            contended.scan_eps / live.scan_eps.max(1.0) * 100.0,
        );
    }
    println!(
        "worst contended/isolated frozen-scan ratio (fair-share normalised): \
         {worst_ratio:.2} (acceptance bar: >= 0.50, i.e. within 2x)"
    );
    if worst_ratio >= 0.50 {
        println!("PASS");
    } else {
        println!("FAIL");
        // Throughput ratios on a busy shared runner are noisy; hard-fail
        // only for the explicit local acceptance check, mirroring the
        // split_latency policy.
        if std::env::var("SNAPSHOT_BENCH_ENFORCE").as_deref() == Ok("1") {
            std::process::exit(1);
        }
    }
}
