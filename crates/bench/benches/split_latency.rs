//! Split-latency bench: how long are writers blocked when a hot shard
//! splits?
//!
//! Compares the old stop-the-shard protocol (`split_shard_blocking`: one
//! exclusive latch hold across flush + collect + rebuild) against the
//! incremental copy-on-write protocol (`split_shard`: writers fenced only
//! for the delta-log install and the final drain + publish) on a preloaded
//! shard under a concurrent 4-thread write load.
//!
//! Reported per strategy:
//! * `stall` — cumulative time writers were actually fenced out
//!   (`split_stall_ns`), the figure the PR's acceptance bar is set on: the
//!   incremental stall must be **< 10%** of the blocking rebuild's;
//! * `wall` — end-to-end duration of the split call (the incremental one is
//!   allowed to take longer overall — its copy runs with writers live);
//! * `delta` — ops captured by the delta log (blocking: always 0).
//!
//! Run with `cargo bench -p pma-bench --bench split_latency` (or
//! `SPLIT_BENCH_KEYS=100000` for a quicker pass).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pma_common::{ConcurrentMap, Registry};
use pma_engine::{ShardedConfig, ShardedMap};

/// Preloaded shard size (the acceptance bar is set at 1M keys).
fn preload_keys() -> usize {
    std::env::var("SPLIT_BENCH_KEYS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

const WRITERS: usize = 4;
const REPEATS: usize = 3;

struct SplitOutcome {
    stall: Duration,
    wall: Duration,
    delta_ops: u64,
    writer_ops: u64,
}

/// Builds a 1-shard map preloaded with `keys` even keys, runs `WRITERS`
/// threads inserting odd keys while the chosen split executes, and returns
/// the split's stall/wall figures.
fn run_split(keys: usize, incremental: bool) -> SplitOutcome {
    pma_workloads::ensure_builtin_backends();
    let config = ShardedConfig {
        shards: 1,
        inner_spec: "pma-batch:100".to_string(),
        monitor_interval: Duration::ZERO, // no background monitor: we drive
        auto_manage: false,
        ..ShardedConfig::default()
    };
    let items: Vec<(i64, i64)> = (0..keys as i64).map(|k| (k * 2, k)).collect();
    let map = ShardedMap::from_sorted(config, Registry::global(), &items).expect("preload");

    let stop = AtomicBool::new(false);
    let writer_ops = AtomicU64::new(0);
    let outcome = std::thread::scope(|scope| {
        let map = &map;
        let stop = &stop;
        let writer_ops = &writer_ops;
        for t in 0..WRITERS {
            scope.spawn(move || {
                // Odd keys spread over the preloaded domain via an LCG, so
                // the writers hit the shard being split the whole time.
                let mut state = 0x9E37_79B9u64.wrapping_add(t as u64);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = ((state >> 16) as i64 % (keys as i64 * 2)) | 1;
                    map.insert(key, -key);
                    ops += 1;
                }
                writer_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        // Let the writers reach steady state before splitting.
        std::thread::sleep(Duration::from_millis(50));
        let before = map.stats();
        let started = Instant::now();
        let split = if incremental {
            map.split_shard(0)
        } else {
            map.split_shard_blocking(0)
        };
        let wall = started.elapsed();
        assert!(split.expect("split failed"), "shard must split");
        stop.store(true, Ordering::Relaxed);
        let after = map.stats();
        SplitOutcome {
            stall: Duration::from_nanos(after.split_stall_ns - before.split_stall_ns),
            wall,
            delta_ops: after.delta_ops - before.delta_ops,
            writer_ops: 0, // filled after the scope joins the writers
        }
    });
    map.flush();
    assert!(map.len() >= keys, "split lost elements");
    SplitOutcome {
        writer_ops: writer_ops.load(Ordering::Relaxed),
        ..outcome
    }
}

fn best_of(keys: usize, incremental: bool) -> SplitOutcome {
    (0..REPEATS)
        .map(|_| run_split(keys, incremental))
        .min_by_key(|o| o.stall)
        .expect("at least one repeat")
}

fn main() {
    let keys = preload_keys();
    println!(
        "split_latency: {keys} preloaded keys, {WRITERS} concurrent writers, \
         best of {REPEATS} runs\n"
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "strategy", "stall[us]", "wall[us]", "delta ops", "writer ops"
    );
    let blocking = best_of(keys, false);
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "blocking",
        blocking.stall.as_micros(),
        blocking.wall.as_micros(),
        blocking.delta_ops,
        blocking.writer_ops,
    );
    let incremental = best_of(keys, true);
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "incremental",
        incremental.stall.as_micros(),
        incremental.wall.as_micros(),
        incremental.delta_ops,
        incremental.writer_ops,
    );
    let ratio = incremental.stall.as_secs_f64() / blocking.stall.as_secs_f64().max(1e-9);
    println!(
        "\nincremental stall = {:.2}% of the blocking rebuild's write stall \
         (acceptance bar: < 10%)",
        ratio * 100.0
    );
    if ratio < 0.10 {
        println!("PASS");
    } else {
        println!("FAIL");
        // Fence durations are µs–ms, so absolute scheduler noise on a busy
        // shared runner dominates the ratio; only hard-fail when explicitly
        // asked (the local acceptance check) — CI reports the figure in the
        // job log without blocking merges on it, consistent with the
        // bench-smoke policy of gating throughput but not latency/stall.
        if std::env::var("SPLIT_BENCH_ENFORCE").as_deref() == Ok("1") {
            std::process::exit(1);
        }
    }
}
