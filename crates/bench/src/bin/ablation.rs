//! Reproduces the parameter ablations discussed in section 4.1 of the paper:
//! doubling the PMA segment size from 128 to 256 elements, and growing the
//! B+-tree leaves from 4 KiB to 8 KiB — both trade update throughput for scan
//! throughput.
//!
//! ```text
//! cargo run --release -p pma-bench --bin ablation -- --scenario segment-size
//! cargo run --release -p pma-bench --bin ablation -- --scenario leaf-size
//! ```

use pma_bench::ExperimentOptions;
use pma_workloads::{
    measure_median, render_table, Distribution, ResultRow, StructureKind, ThreadSplit,
    UpdatePattern,
};

fn main() {
    let options = ExperimentOptions::parse(std::env::args().skip(1));
    let which = options
        .scenario
        .clone()
        .unwrap_or_else(|| "all".to_string());

    let total = options.threads.max(2);
    // Half updaters, half scanners: the configuration where the trade-off is
    // visible on both axes.
    let split = ThreadSplit {
        update_threads: total / 2,
        scan_threads: total - total / 2,
    };

    let mut experiments: Vec<(&str, Vec<StructureKind>)> = Vec::new();
    if which == "all" || which == "segment-size" {
        experiments.push((
            "Section 4.1 ablation: PMA segment size 128 vs 256",
            vec![StructureKind::PmaBatch(100), StructureKind::PmaLargeSegments],
        ));
    }
    if which == "all" || which == "leaf-size" {
        experiments.push((
            "Section 4.1 ablation: B+-tree leaf size 4KiB vs 8KiB",
            vec![
                StructureKind::ArtBTree,
                StructureKind::ArtBTreeLargeLeaves,
            ],
        ));
    }
    if experiments.is_empty() {
        eprintln!("unknown --scenario '{which}', expected segment-size, leaf-size or all");
        return;
    }

    for (title, kinds) in experiments {
        let mut rows = Vec::new();
        for distribution in [Distribution::Uniform, Distribution::Zipf { alpha: 1.5 }] {
            for kind in &kinds {
                let spec = options.spec(distribution, split, UpdatePattern::InsertOnly);
                let measurement = measure_median(|| kind.build(), &spec, options.repeats);
                rows.push(ResultRow {
                    structure: kind.label(),
                    workload: distribution.label(),
                    measurement,
                });
            }
        }
        println!("{}", render_table(title, &rows));
    }
}
