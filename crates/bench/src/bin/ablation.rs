//! Reproduces the parameter ablations discussed in section 4.1 of the paper:
//! doubling the PMA segment size from 128 to 256 elements, and growing the
//! B+-tree leaves from 4 KiB to 8 KiB — both trade update throughput for scan
//! throughput.
//!
//! Structures are resolved through the backend registry; `--structures`
//! replaces both ablation sets with a custom comparison (e.g.
//! `--structures pma-seg:128,pma-seg:512`).
//!
//! ```text
//! cargo run --release -p pma-bench --bin ablation -- --scenario segment-size
//! cargo run --release -p pma-bench --bin ablation -- --scenario leaf-size
//! ```

use pma_bench::ExperimentOptions;
use pma_workloads::{
    ablation_leaf_specs, ablation_segment_specs, build_or_panic, label, measure_median,
    render_table, Distribution, ResultRow, ThreadSplit, UpdatePattern,
};

fn main() {
    let options = ExperimentOptions::parse(std::env::args().skip(1));
    let which = options
        .scenario
        .clone()
        .unwrap_or_else(|| "all".to_string());

    let total = options.threads.max(2);
    // Half updaters, half scanners: the configuration where the trade-off is
    // visible on both axes.
    let split = ThreadSplit {
        update_threads: total / 2,
        scan_threads: total - total / 2,
    };

    let mut experiments: Vec<(String, Vec<String>)> = Vec::new();
    if let Some(custom) = &options.structures {
        experiments.push((
            "Custom ablation (via --structures)".to_string(),
            options.resolve_structures(custom.clone()),
        ));
    } else {
        if which == "all" || which == "segment-size" {
            experiments.push((
                "Section 4.1 ablation: PMA segment size 128 vs 256".to_string(),
                options.resolve_structures(ablation_segment_specs()),
            ));
        }
        if which == "all" || which == "leaf-size" {
            experiments.push((
                "Section 4.1 ablation: B+-tree leaf size 4KiB vs 8KiB".to_string(),
                options.resolve_structures(ablation_leaf_specs()),
            ));
        }
        if experiments.is_empty() {
            eprintln!("unknown --scenario '{which}', expected segment-size, leaf-size or all");
            return;
        }
    }

    for (title, specs) in experiments {
        let mut rows = Vec::new();
        for distribution in [Distribution::Uniform, Distribution::Zipf { alpha: 1.5 }] {
            for spec_name in &specs {
                let workload = options.spec(distribution, split, UpdatePattern::InsertOnly);
                let measurement =
                    measure_median(|| build_or_panic(spec_name), &workload, options.repeats);
                rows.push(ResultRow {
                    structure: label(spec_name),
                    workload: distribution.label(),
                    measurement,
                });
            }
        }
        println!("{}", render_table(&title, &rows));
    }
}
