//! The CI bench-smoke runner: executes the workload harness on a fixed small
//! grid, emits a machine-readable `BENCH_<sha>.json`, and (optionally) fails
//! on throughput regressions against a committed baseline.
//!
//! The grid is deliberately fixed and small — it is a smoke detector that
//! keeps a performance *trajectory* across commits, not a rigorous
//! benchmark: `sharded:8:pma-batch:100`, `btree` and `pma-batch:100` on
//! insert-only, scan-heavy and mixed workloads, reporting throughput,
//! p50/p99 latency, the sharded engine's split-stall time and the
//! owned/late combining counters. Two `open-loop` cells additionally drive
//! the thread-per-core router (and the bare sharded engine as its
//! comparison point) at a fixed offered arrival rate, recording the
//! achieved rate, probe sojourn percentiles (p999 in its own column), the
//! shed count and the ingress queue-depth p99. Three `url-corpus` cells
//! bulk-load a shared-prefix-heavy byte-key corpus into the byte backends
//! (`bpma:128`, `bbtree`, `bsharded:4:bpma:128`) and record each
//! structure's resident `bytes_per_key` next to its load and prefix-scan
//! rates — the measured inputs of `docs/INTERNALS.md`'s layout table.
//!
//! ```text
//! bench_smoke [--sha S] [--out PATH] [--baseline PATH]
//!             [--write-baseline PATH] [--tolerance F] [--runs N] [--quick]
//! ```
//!
//! * `--baseline bench/baseline.json` compares against the committed
//!   baseline and exits non-zero when a cell's update or scan throughput
//!   fell by more than `--tolerance` (default 0.25).
//! * `--write-baseline bench/baseline.json` records the current run as the
//!   new baseline — the intentional-change workflow (run it on the CI
//!   runner class the gate uses, commit the file, explain the change in the
//!   PR).
//! * `--runs N` executes the grid N times and keeps each cell's *minimum*
//!   throughputs — the conservative envelope a committed baseline should
//!   be, so run-to-run scheduler noise on busy machines cannot turn into
//!   false regression alarms.
//! * `--quick` shrinks the grid's element counts (for local smoke).

use pma_bench::smoke::{compare_reports, parse_report, render_report, MetricsSummary, SmokeRecord};
use pma_workloads::{
    build_bytes, build_or_panic, run_byte_ingest, run_open_loop, run_workload, Distribution,
    OpenLoopSpec, ThreadSplit, UpdatePattern, WorkloadSpec,
};

/// The per-record metrics summary: end-of-run maintenance totals plus the
/// p99 of the queue depth sampled over the run (the one figure that only
/// exists as a time series). `None` for structures without maintenance
/// counters (their nested block would be all zeros).
fn metrics_summary(m: &pma_workloads::Measurement) -> Option<MetricsSummary> {
    let s = m.maintenance?;
    let series = m.metrics.as_ref();
    Some(MetricsSummary {
        cow_copies: s.cow_copies,
        chase_rounds: s.chase_rounds,
        epoch_lag: series
            .and_then(|ser| ser.max_value("epoch_lag"))
            .map(|v| v as u64)
            .unwrap_or(s.epoch_lag),
        queue_depth_p99: series
            .and_then(|ser| ser.percentile("queue_depth", 0.99))
            .unwrap_or(0.0),
        snapshot_lag: s.snapshot_lag,
        delta_backpressure_waits: s.delta_backpressure_waits,
    })
}

/// Across-runs merge of two metrics summaries: worst-case envelope, like the
/// latency and stall columns.
fn merge_metrics(a: Option<MetricsSummary>, b: Option<MetricsSummary>) -> Option<MetricsSummary> {
    match (a, b) {
        (Some(x), Some(y)) => Some(MetricsSummary {
            cow_copies: x.cow_copies.max(y.cow_copies),
            chase_rounds: x.chase_rounds.max(y.chase_rounds),
            epoch_lag: x.epoch_lag.max(y.epoch_lag),
            queue_depth_p99: x.queue_depth_p99.max(y.queue_depth_p99),
            snapshot_lag: x.snapshot_lag.max(y.snapshot_lag),
            delta_backpressure_waits: x.delta_backpressure_waits.max(y.delta_backpressure_waits),
        }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The structures of the fixed grid.
const STRUCTURES: &[&str] = &["sharded:8:pma-batch:100", "btree", "pma-batch:100"];

/// The structures of the open-loop cells: the thread-per-core router over
/// the sharded engine, and the bare sharded engine as its comparison point
/// (same inner structure, no shipping layer).
const OPEN_LOOP_STRUCTURES: &[&str] =
    &["cores:2:sharded:8:pma-batch:100", "sharded:8:pma-batch:100"];

/// The byte-keyed structures of the `url-corpus` cell: the prefix-compressed
/// byte PMA, the uncompressed BTreeMap baseline, and the byte-sharded
/// composition — the trio whose `bytes_per_key` column feeds the layout
/// economics table in `docs/INTERNALS.md`.
const BYTE_STRUCTURES: &[&str] = &["bpma:128", "bbtree", "bsharded:4:bpma:128"];

/// The workloads of the fixed grid: `(name, update_threads, scan_threads,
/// pattern)`.
const WORKLOADS: &[(&str, usize, usize, UpdatePattern)] = &[
    ("insert", 4, 1, UpdatePattern::InsertOnly),
    ("scan", 1, 4, UpdatePattern::InsertOnly),
    ("mixed", 4, 1, UpdatePattern::MixedUpdates),
];

struct Options {
    sha: String,
    out: Option<String>,
    baseline: Option<String>,
    write_baseline: Option<String>,
    tolerance: f64,
    elements: usize,
    runs: usize,
}

fn parse_options() -> Options {
    let mut options = Options {
        sha: std::env::var("GITHUB_SHA").unwrap_or_else(|_| "local".to_string()),
        out: None,
        baseline: None,
        write_baseline: None,
        tolerance: 0.25,
        elements: 60_000,
        runs: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--sha" => options.sha = value("--sha"),
            "--out" => options.out = Some(value("--out")),
            "--baseline" => options.baseline = Some(value("--baseline")),
            "--write-baseline" => options.write_baseline = Some(value("--write-baseline")),
            "--tolerance" => options.tolerance = value("--tolerance").parse().expect("--tolerance"),
            "--runs" => options.runs = value("--runs").parse().expect("--runs"),
            "--quick" => options.elements = 15_000,
            "--help" | "-h" => {
                println!(
                    "usage: bench_smoke [--sha S] [--out PATH] [--baseline PATH] \
                     [--write-baseline PATH] [--tolerance F] [--runs N] [--quick]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag: {other} (try --help)"),
        }
    }
    assert!(options.runs >= 1, "--runs must be at least 1");
    options
}

fn run_cell(
    structure: &str,
    workload: &(&str, usize, usize, UpdatePattern),
    elements: usize,
) -> SmokeRecord {
    let &(name, update_threads, scan_threads, pattern) = workload;
    let spec = WorkloadSpec {
        distribution: Distribution::Uniform,
        key_range: 1 << 20,
        total_elements: elements,
        threads: ThreadSplit {
            update_threads,
            scan_threads,
        },
        pattern,
        seed: 0xBEEF,
        ..WorkloadSpec::default()
    };
    let map = build_or_panic(structure);
    let m = run_workload(&*map, &spec);
    let (owned, late) = m
        .combining
        .map(|c| (c.owned_applies, c.late_replays))
        .unwrap_or((0, 0));
    let split_stall_us = m.maintenance.map(|s| s.stall_ns / 1_000).unwrap_or(0);
    SmokeRecord {
        structure: structure.to_string(),
        workload: name.to_string(),
        update_mps: m.update_throughput() / 1.0e6,
        scan_eps: m.scan_throughput(),
        p50_us: m.update_latency.p50().unwrap_or(0) / 1_000,
        p99_us: m.update_latency.p99().unwrap_or(0) / 1_000,
        split_stall_us,
        owned,
        late,
        elements: m.final_len as u64,
        kernel: pma_common::simd::kernel_variant().to_string(),
        lat_samples: m.update_latency.count(),
        offered_mps: 0.0,
        sojourn_p999_us: 0,
        shed: 0,
        bytes_per_key: 0.0,
        metrics: metrics_summary(&m),
    }
}

/// The `open-loop` cell: arrival-rate-scheduled load through
/// [`run_open_loop`] — the latency columns hold probe *sojourns* (queue wait
/// plus service through the router's ingress FIFOs), the offered rate and
/// shed count land in their own columns, and `queue_depth_p99` comes from
/// the sampled `ingress_depth` gauge for routed structures.
fn run_open_loop_cell(structure: &str, elements: usize) -> SmokeRecord {
    use std::time::Duration;

    let spec = OpenLoopSpec {
        offered_rate: 200_000.0,
        duration: Duration::from_millis(300),
        producers: 4,
        key_range: 1 << 20,
        distribution: Distribution::Uniform,
        seed: 0xBEEF,
        deadline: Duration::from_millis(10),
        read_fraction: 0.1,
        preload: elements,
    };
    let map = build_or_panic(structure);
    let m = run_open_loop(&*map, &spec);
    let (owned, late) = m
        .combining
        .map(|c| (c.owned_applies, c.late_replays))
        .unwrap_or((0, 0));
    let series = m.metrics.as_ref();
    let metrics = m.maintenance.map(|s| MetricsSummary {
        cow_copies: s.cow_copies,
        chase_rounds: s.chase_rounds,
        epoch_lag: series
            .and_then(|ser| ser.max_value("epoch_lag"))
            .map(|v| v as u64)
            .unwrap_or(s.epoch_lag),
        queue_depth_p99: series
            .and_then(|ser| ser.percentile("ingress_depth", 0.99))
            .or_else(|| series.and_then(|ser| ser.percentile("queue_depth", 0.99)))
            .unwrap_or(0.0),
        snapshot_lag: s.snapshot_lag,
        delta_backpressure_waits: s.delta_backpressure_waits,
    });
    SmokeRecord {
        structure: structure.to_string(),
        workload: "open-loop".to_string(),
        update_mps: m.achieved_rate() / 1.0e6,
        scan_eps: 0.0,
        p50_us: m.sojourn.p50().unwrap_or(0) / 1_000,
        p99_us: m.sojourn.p99().unwrap_or(0) / 1_000,
        split_stall_us: m.maintenance.map(|s| s.stall_ns / 1_000).unwrap_or(0),
        owned,
        late,
        elements: m.final_len as u64,
        kernel: pma_common::simd::kernel_variant().to_string(),
        lat_samples: m.sojourn.count(),
        offered_mps: spec.offered_rate / 1.0e6,
        sojourn_p999_us: m.sojourn.p999().unwrap_or(0) / 1_000,
        shed: m.shed_ops,
        bytes_per_key: 0.0,
        metrics,
    }
}

/// The `frozen-scan` cell: one thread in a freeze-and-scan loop (every pass
/// captures a fresh point-in-time view and scans it) against 4 writers
/// overwriting the preloaded keys — the interference profile of the
/// copy-on-write snapshot machinery, tracked across commits next to the
/// live-scan cells. Structures without frozen support (e.g. `btree`) skip
/// the cell.
fn run_frozen_cell(structure: &str, elements: usize) -> Option<SmokeRecord> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    const WRITERS: usize = 4;
    const WINDOW: Duration = Duration::from_millis(400);

    let map = build_or_panic(structure);
    map.frozen()?;
    let items: Vec<(i64, i64)> = (0..elements as i64).map(|k| (k, k)).collect();
    map.insert_batch(&items);
    map.flush();

    let stop = AtomicBool::new(false);
    let writer_ops = AtomicU64::new(0);
    let (scanned, elapsed) = std::thread::scope(|scope| {
        let map = &*map;
        let stop = &stop;
        let writer_ops = &writer_ops;
        for t in 0..WRITERS {
            scope.spawn(move || {
                let mut state = 0x9E37_79B9u64.wrapping_add(t as u64);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = (state >> 16) as i64 % elements as i64;
                    map.insert(key, state as i64);
                    ops += 1;
                }
                writer_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        let started = Instant::now();
        let mut scanned = 0u64;
        while started.elapsed() < WINDOW {
            let frozen = map.frozen().expect("probed above");
            scanned += frozen.scan_all().count;
        }
        let elapsed = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        (scanned, elapsed)
    });
    map.flush();

    let (owned, late) = map
        .combining_stats()
        .map(|c| (c.owned_applies, c.late_replays))
        .unwrap_or((0, 0));
    let maintenance = map.maintenance_stats();
    let split_stall_us = maintenance.map(|s| s.stall_ns / 1_000).unwrap_or(0);
    // This cell drives the map directly (no harness sampler), so the
    // summary carries the end-of-run totals and no queue-depth p99.
    let metrics = maintenance.map(|s| MetricsSummary {
        cow_copies: s.cow_copies,
        chase_rounds: s.chase_rounds,
        epoch_lag: s.epoch_lag,
        queue_depth_p99: 0.0,
        snapshot_lag: s.snapshot_lag,
        delta_backpressure_waits: s.delta_backpressure_waits,
    });
    Some(SmokeRecord {
        structure: structure.to_string(),
        workload: "frozen-scan".to_string(),
        update_mps: writer_ops.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64() / 1.0e6,
        scan_eps: scanned as f64 / elapsed.as_secs_f64(),
        p50_us: 0,
        p99_us: 0,
        split_stall_us,
        owned,
        late,
        elements: map.len() as u64,
        kernel: pma_common::simd::kernel_variant().to_string(),
        lat_samples: 0,
        offered_mps: 0.0,
        sojourn_p999_us: 0,
        shed: 0,
        bytes_per_key: 0.0,
        metrics,
    })
}

/// The `url-corpus` cell: bulk-load a shared-prefix-heavy URL corpus through
/// the byte-backend table, probe members, prefix-scan the hottest host, and
/// record the structure's resident `bytes_per_key` next to the rates. The
/// update column holds the bulk-load rate; the scan column the prefix-scan
/// visit rate.
fn run_url_corpus_cell(structure: &str, elements: usize) -> SmokeRecord {
    let map = build_bytes(structure).unwrap_or_else(|e| panic!("cannot build `{structure}`: {e}"));
    let m = run_byte_ingest(&map, 0xBEEF, elements, (elements / 4).max(1));
    SmokeRecord {
        structure: structure.to_string(),
        workload: "url-corpus".to_string(),
        update_mps: m.load_mps,
        scan_eps: m.prefix_scan_eps * 1.0e6,
        p50_us: 0,
        p99_us: 0,
        split_stall_us: 0,
        owned: 0,
        late: 0,
        elements: m.entries as u64,
        kernel: pma_common::simd::kernel_variant().to_string(),
        lat_samples: 0,
        offered_mps: 0.0,
        sojourn_p999_us: 0,
        shed: 0,
        bytes_per_key: m.bytes_per_key,
        metrics: None,
    }
}

fn main() {
    let options = parse_options();
    let mut records: Vec<SmokeRecord> = Vec::new();
    for run in 0..options.runs {
        for structure in STRUCTURES {
            for workload in WORKLOADS {
                eprintln!(
                    "bench-smoke: {structure} / {} (run {}/{})",
                    workload.0,
                    run + 1,
                    options.runs
                );
                let record = run_cell(structure, workload, options.elements);
                assert_eq!(
                    record.late, 0,
                    "{structure}/{}: an op was replayed outside its owned window",
                    workload.0
                );
                // Across runs, keep each cell's minimum throughputs (the
                // conservative envelope) and worst latency/stall.
                match records.iter_mut().find(|r| r.key() == record.key()) {
                    None => records.push(record),
                    Some(merged) => {
                        merged.update_mps = merged.update_mps.min(record.update_mps);
                        merged.scan_eps = merged.scan_eps.min(record.scan_eps);
                        merged.p50_us = merged.p50_us.max(record.p50_us);
                        merged.p99_us = merged.p99_us.max(record.p99_us);
                        merged.split_stall_us = merged.split_stall_us.max(record.split_stall_us);
                        merged.owned = merged.owned.max(record.owned);
                        merged.elements = record.elements;
                        merged.lat_samples = merged.lat_samples.max(record.lat_samples);
                        merged.metrics = merge_metrics(merged.metrics.take(), record.metrics);
                    }
                }
            }
        }
        for structure in OPEN_LOOP_STRUCTURES {
            eprintln!(
                "bench-smoke: {structure} / open-loop (run {}/{})",
                run + 1,
                options.runs
            );
            let record = run_open_loop_cell(structure, options.elements);
            assert_eq!(
                record.late, 0,
                "{structure}/open-loop: an op was replayed outside its owned window"
            );
            match records.iter_mut().find(|r| r.key() == record.key()) {
                None => records.push(record),
                Some(merged) => {
                    merged.update_mps = merged.update_mps.min(record.update_mps);
                    merged.p50_us = merged.p50_us.max(record.p50_us);
                    merged.p99_us = merged.p99_us.max(record.p99_us);
                    merged.sojourn_p999_us = merged.sojourn_p999_us.max(record.sojourn_p999_us);
                    merged.shed = merged.shed.max(record.shed);
                    merged.split_stall_us = merged.split_stall_us.max(record.split_stall_us);
                    merged.owned = merged.owned.max(record.owned);
                    merged.elements = record.elements;
                    merged.lat_samples = merged.lat_samples.max(record.lat_samples);
                    merged.metrics = merge_metrics(merged.metrics.take(), record.metrics);
                }
            }
        }
        for structure in STRUCTURES {
            let Some(record) = run_frozen_cell(structure, options.elements) else {
                eprintln!("bench-smoke: {structure} has no frozen views, cell skipped");
                continue;
            };
            eprintln!(
                "bench-smoke: {structure} / frozen-scan (run {}/{})",
                run + 1,
                options.runs
            );
            assert_eq!(
                record.late, 0,
                "{structure}/frozen-scan: an op was replayed outside its owned window"
            );
            match records.iter_mut().find(|r| r.key() == record.key()) {
                None => records.push(record),
                Some(merged) => {
                    merged.update_mps = merged.update_mps.min(record.update_mps);
                    merged.scan_eps = merged.scan_eps.min(record.scan_eps);
                    merged.split_stall_us = merged.split_stall_us.max(record.split_stall_us);
                    merged.owned = merged.owned.max(record.owned);
                    merged.elements = record.elements;
                    merged.metrics = merge_metrics(merged.metrics.take(), record.metrics);
                }
            }
        }
        for structure in BYTE_STRUCTURES {
            eprintln!(
                "bench-smoke: {structure} / url-corpus (run {}/{})",
                run + 1,
                options.runs
            );
            let record = run_url_corpus_cell(structure, options.elements / 2);
            match records.iter_mut().find(|r| r.key() == record.key()) {
                None => records.push(record),
                Some(merged) => {
                    merged.update_mps = merged.update_mps.min(record.update_mps);
                    merged.scan_eps = merged.scan_eps.min(record.scan_eps);
                    // bytes/key is deterministic for a fixed corpus; keep
                    // the worst (largest) figure across runs anyway.
                    merged.bytes_per_key = merged.bytes_per_key.max(record.bytes_per_key);
                    merged.elements = record.elements;
                }
            }
        }
    }

    let report = render_report(&options.sha, &records);
    print!("{report}");
    let out = options
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", options.sha));
    std::fs::write(&out, &report).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("bench-smoke: wrote {out}");

    if let Some(path) = &options.write_baseline {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        std::fs::write(path, &report).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("bench-smoke: baseline updated at {path}");
    }

    if let Some(path) = &options.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let (base_sha, baseline) =
            parse_report(&text).unwrap_or_else(|e| panic!("malformed baseline {path}: {e}"));
        let regressions = compare_reports(&baseline, &records, options.tolerance);
        if regressions.is_empty() {
            eprintln!(
                "bench-smoke: no regression beyond {:.0}% vs baseline {base_sha}",
                options.tolerance * 100.0
            );
        } else {
            eprintln!(
                "bench-smoke: {} regression(s) beyond {:.0}% vs baseline {base_sha}:",
                regressions.len(),
                options.tolerance * 100.0
            );
            for regression in &regressions {
                eprintln!("  {regression}");
            }
            eprintln!(
                "if intentional, refresh the baseline: \
                 cargo run --release -p pma-bench --bin bench_smoke -- \
                 --write-baseline {path}"
            );
            std::process::exit(1);
        }
    }
}
