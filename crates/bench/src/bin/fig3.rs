//! Reproduces Figure 3 of the paper: average throughput to insert / update
//! and to scan, for MassTree-like, Bw-Tree-like, ART/B+-tree and the
//! concurrent PMA, over the uniform and Zipfian distributions and the three
//! thread partitions.
//!
//! Scenarios: `a` = all threads insert, `b` = 3/4 insert + 1/4 scan, `c` =
//! half insert + half scan (insert-only, Figure 3 a–c); `d`/`e`/`f` = the same
//! splits with the mixed insert+delete workload (Figure 3 d–f).
//!
//! Structures are resolved through the backend registry; override the default
//! Figure 3 set with `--structures` (e.g. `--structures btree,pma-batch:50`).
//!
//! ```text
//! cargo run --release -p pma-bench --bin fig3 -- --scenario a --elements 4000000
//! ```

use pma_bench::ExperimentOptions;
use pma_workloads::{
    build_or_panic, figure3_specs, label, measure_median, render_table, Distribution, ResultRow,
    ThreadSplit, UpdatePattern,
};

fn main() {
    let options = ExperimentOptions::parse(std::env::args().skip(1));
    let structures = options.resolve_structures(figure3_specs());
    let scenarios: Vec<char> = match options.scenario.as_deref() {
        Some(s) => s.chars().collect(),
        None => vec!['a', 'b', 'c', 'd', 'e', 'f'],
    };
    let splits = ThreadSplit::paper_splits(options.threads);

    for scenario in scenarios {
        let (split_idx, pattern, figure) = match scenario {
            'a' => (0, UpdatePattern::InsertOnly, "Figure 3a: insertions only"),
            'b' => (
                1,
                UpdatePattern::InsertOnly,
                "Figure 3b: insertions + scans (3/4 : 1/4)",
            ),
            'c' => (
                2,
                UpdatePattern::InsertOnly,
                "Figure 3c: insertions + scans (1/2 : 1/2)",
            ),
            'd' => (0, UpdatePattern::MixedUpdates, "Figure 3d: updates only"),
            'e' => (
                1,
                UpdatePattern::MixedUpdates,
                "Figure 3e: updates + scans (3/4 : 1/4)",
            ),
            'f' => (
                2,
                UpdatePattern::MixedUpdates,
                "Figure 3f: updates + scans (1/2 : 1/2)",
            ),
            other => {
                eprintln!("unknown scenario '{other}', expected a-f");
                continue;
            }
        };
        let split = splits[split_idx];
        let mut rows = Vec::new();
        for distribution in Distribution::paper_set() {
            for spec_name in &structures {
                let workload = options.spec(distribution, split, pattern);
                let measurement =
                    measure_median(|| build_or_panic(spec_name), &workload, options.repeats);
                rows.push(ResultRow {
                    structure: label(spec_name),
                    workload: distribution.label(),
                    measurement,
                });
            }
        }
        println!(
            "{}",
            render_table(&format!("{figure} [{} threads]", split.label()), &rows)
        );
    }
}
