//! Reproduces Figure 4 of the paper: the speed-up of the asynchronous update
//! modes (one-by-one and batch processing with different `t_delay` values)
//! relative to the synchronous PMA baseline, under increasing skew, for three
//! updater-thread counts.
//!
//! Structures are resolved through the backend registry; override the default
//! Figure 4 set with `--structures` (the speed-up column stays relative to
//! the "PMA Baseline" row, so keep `pma-sync` in custom sets).
//!
//! ```text
//! cargo run --release -p pma-bench --bin fig4 -- --elements 4000000
//! ```

use pma_bench::ExperimentOptions;
use pma_workloads::{
    build_or_panic, figure4_specs, label, measure_median, render_speedup_table, Distribution,
    ResultRow, ThreadSplit, UpdatePattern,
};

fn main() {
    let options = ExperimentOptions::parse(std::env::args().skip(1));
    let structures = options.resolve_structures(figure4_specs());
    // Figure 4 a/b/c: 16, 12 and 8 updater threads (scaled to this machine),
    // with the remaining threads scanning.
    let total = options.threads.max(2);
    let updater_counts = [total, total - total / 4, total / 2];

    for (plot, &updaters) in ["a", "b", "c"].iter().zip(updater_counts.iter()) {
        if let Some(only) = options.scenario.as_deref() {
            if only != *plot {
                continue;
            }
        }
        let split = ThreadSplit {
            update_threads: updaters.max(1),
            scan_threads: total - updaters.max(1).min(total),
        };
        let mut rows = Vec::new();
        for distribution in Distribution::paper_set() {
            for spec_name in &structures {
                let workload = options.spec(distribution, split, UpdatePattern::InsertOnly);
                let measurement =
                    measure_median(|| build_or_panic(spec_name), &workload, options.repeats);
                rows.push(ResultRow {
                    structure: label(spec_name),
                    workload: distribution.label(),
                    measurement,
                });
            }
        }
        println!(
            "{}",
            render_speedup_table(
                &format!(
                    "Figure 4{plot}: asynchronous updates [{} updaters]",
                    split.update_threads
                ),
                &rows,
                "PMA Baseline",
            )
        );
    }
}
