//! Reproduces Figure 4 of the paper: the speed-up of the asynchronous update
//! modes (one-by-one and batch processing with different `t_delay` values)
//! relative to the synchronous PMA baseline, under increasing skew, for three
//! updater-thread counts.
//!
//! ```text
//! cargo run --release -p pma-bench --bin fig4 -- --elements 4000000
//! ```

use pma_bench::ExperimentOptions;
use pma_workloads::{
    measure_median, render_speedup_table, Distribution, ResultRow, StructureKind, ThreadSplit,
    UpdatePattern,
};

fn main() {
    let options = ExperimentOptions::parse(std::env::args().skip(1));
    // Figure 4 a/b/c: 16, 12 and 8 updater threads (scaled to this machine),
    // with the remaining threads scanning.
    let total = options.threads.max(2);
    let updater_counts = [total, total - total / 4, total / 2];

    for (plot, &updaters) in ["a", "b", "c"].iter().zip(updater_counts.iter()) {
        if let Some(only) = options.scenario.as_deref() {
            if only != *plot {
                continue;
            }
        }
        let split = ThreadSplit {
            update_threads: updaters.max(1),
            scan_threads: total - updaters.max(1).min(total),
        };
        let mut rows = Vec::new();
        for distribution in Distribution::paper_set() {
            for kind in StructureKind::figure4_set() {
                let spec = options.spec(distribution, split, UpdatePattern::InsertOnly);
                let measurement = measure_median(|| kind.build(), &spec, options.repeats);
                rows.push(ResultRow {
                    structure: kind.label(),
                    workload: distribution.label(),
                    measurement,
                });
            }
        }
        println!(
            "{}",
            render_speedup_table(
                &format!("Figure 4{plot}: asynchronous updates [{} updaters]", split.update_threads),
                &rows,
                "PMA Baseline",
            )
        );
    }
}
