//! Observability smoke check, run by the `obs-smoke` CI job.
//!
//! Two halves:
//!
//! 1. **Disabled-overhead microbench** — with tracing off, creating and
//!    dropping a span must cost one relaxed load plus a branch. The bench
//!    times a tight span-construction loop and, when `OBS_ENFORCE=1`,
//!    asserts the per-op cost stays under a budget that an accidental
//!    always-on clock read would blow through.
//! 2. **End-to-end trace + metrics run** — tracing on, four writers hammer a
//!    sharded map while the main thread forces incremental splits and
//!    `frozen()` captures. The drained trace must contain every
//!    acceptance-required span category, export as valid Chrome-trace JSON,
//!    and the map's metrics must render as parseable Prometheus exposition.

use std::collections::HashSet;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pma_common::obs::metrics::{render_json, render_prometheus, validate_exposition};
use pma_common::obs::{self, trace, Category, Observations};
use pma_common::{ConcurrentMap, Registry};
use pma_engine::{ShardedConfig, ShardedMap};

/// ns/op ceiling for a disabled span, enforced under `OBS_ENFORCE=1`. The
/// real cost is ~1-2 ns; an accidental clock read alone costs ~10-30 ns, so
/// this budget separates the two regimes with slack for noisy CI runners.
const DISABLED_BUDGET_NS: f64 = 10.0;

/// Span categories the traced run must produce (ISSUE 8 acceptance set).
const REQUIRED: [Category; 5] = [
    Category::GateWait,
    Category::Redistribute,
    Category::ChaseRound,
    Category::ResizePublish,
    Category::FrozenCapture,
];

fn disabled_overhead_ns() -> f64 {
    trace::set_enabled(false);
    const ITERS: u64 = 10_000_000;
    let mut best = f64::INFINITY;
    // Best-of-N: scheduling noise only ever adds time, so min is the
    // honest estimate of the per-op cost.
    for _ in 0..5 {
        let start = Instant::now();
        for i in 0..ITERS {
            let span = obs::span(Category::GateWait, i);
            black_box(&span);
        }
        let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        best = best.min(ns);
    }
    best
}

/// One round of traced work: four insert threads, an incremental split and a
/// `frozen()` capture while they run.
fn traced_round(map: &Arc<ShardedMap>, round: u64) {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 50_000;
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let map = Arc::clone(map);
            scope.spawn(move || {
                // Interleaved, round-offset keys: spread over the domain so
                // inner PMAs resize, dense enough to contend on gates.
                let base = (round * WRITERS * PER_WRITER + w) as i64;
                for i in 0..PER_WRITER as i64 {
                    map.insert(base + i * WRITERS as i64, i);
                }
            });
        }
        // Split and snapshot mid-run so chase rounds see a live delta and
        // the capture pins a generation under concurrent writes. The keys
        // land in the upper shards, so try every index until one splits.
        std::thread::sleep(Duration::from_millis(5));
        let mut split = false;
        for idx in 0..map.num_shards() {
            split |= map.split_shard(idx).expect("split_shard failed");
        }
        assert!(split, "no shard was splittable mid-round");
        let frozen = map.frozen().expect("frozen() returned None");
        drop(frozen);
    });
}

fn main() {
    // Half 1: disabled overhead.
    let ns_per_op = disabled_overhead_ns();
    println!("obs-smoke: disabled span cost {ns_per_op:.2} ns/op (budget {DISABLED_BUDGET_NS} ns)");
    if std::env::var("OBS_ENFORCE").as_deref() == Ok("1") {
        assert!(
            ns_per_op < DISABLED_BUDGET_NS,
            "disabled span cost {ns_per_op:.2} ns/op exceeds {DISABLED_BUDGET_NS} ns budget"
        );
    }

    // Half 2: traced run.
    pma_core::register_backends(Registry::global());
    pma_engine::register_backends(Registry::global());
    let config = ShardedConfig {
        shards: 2,
        inner_spec: "pma-batch:1".to_string(),
        auto_manage: false,
        ..ShardedConfig::default()
    };
    let map = Arc::new(ShardedMap::new(config, Registry::global()).expect("build sharded map"));

    trace::set_enabled(true);
    let mut events = Vec::new();
    let mut seen: HashSet<u16> = HashSet::new();
    let mut round = 0u64;
    // GateWait depends on real gate contention, so retry a few rounds before
    // declaring the category missing.
    while round < 8 {
        traced_round(&map, round);
        events.extend(trace::drain_all());
        seen = events.iter().map(|e| e.cat as u16).collect();
        if REQUIRED.iter().all(|c| seen.contains(&(*c as u16))) {
            break;
        }
        round += 1;
    }
    trace::set_enabled(false);

    for cat in REQUIRED {
        assert!(
            seen.contains(&(cat as u16)),
            "required span category {cat:?} missing after {} rounds ({} events, cats {seen:?})",
            round + 1,
            events.len()
        );
    }
    println!(
        "obs-smoke: {} trace events over {} round(s), {} distinct categories",
        events.len(),
        round + 1,
        seen.len()
    );

    let chrome = trace::export_chrome_trace(&events);
    let exported = trace::validate_chrome_trace(&chrome).expect("invalid Chrome trace JSON");
    assert_eq!(exported, events.len(), "Chrome trace dropped events");
    println!("obs-smoke: Chrome trace validates ({exported} events)");

    let mut sink = Observations::new();
    map.observe_metrics(&mut sink);
    let snapshot = sink.into_snapshot();
    assert!(
        snapshot.counter("delta_ops").is_some() || snapshot.counter("routed_ops").is_some(),
        "sharded map exported no engine counters"
    );
    let prom = render_prometheus(&snapshot);
    let samples = validate_exposition(&prom).expect("invalid Prometheus exposition");
    assert!(samples > 0, "empty exposition");
    let json = render_json(&snapshot);
    assert!(
        json.starts_with('{') && json.trim_end().ends_with('}'),
        "metrics JSON malformed"
    );
    println!(
        "obs-smoke: exposition validates ({samples} samples, {} metrics)",
        snapshot.metrics.len()
    );
    println!("obs-smoke: PASS");
}
