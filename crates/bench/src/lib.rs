//! Shared helpers for the experiment binaries (`fig3`, `fig4`, `ablation`,
//! `bench_smoke`) and the Criterion micro-benchmarks: a tiny command-line
//! parser, the common experiment-loop plumbing, and the bench-smoke
//! report/baseline machinery ([`smoke`]).

#![warn(missing_docs)]

pub mod smoke;

use pma_workloads::{Distribution, ThreadSplit, UpdatePattern, WorkloadSpec};

/// Options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Elements inserted (insert-only) or preloaded (mixed) per cell.
    pub elements: usize,
    /// Total number of threads to partition between updaters and scanners.
    pub threads: usize,
    /// Repetitions per cell (the median is reported).
    pub repeats: usize,
    /// Key domain.
    pub key_range: u64,
    /// Restrict to a single scenario (binary-specific meaning).
    pub scenario: Option<String>,
    /// Structures to evaluate, as registry backend specs (`--structures
    /// a,b,c`); `None` keeps the binary's default set.
    pub structures: Option<Vec<String>>,
    /// Quick smoke-test mode (drastically smaller workloads).
    pub quick: bool,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(8)
            .clamp(2, 16);
        Self {
            elements: 1_000_000,
            threads,
            repeats: 1,
            key_range: pma_workloads::DEFAULT_KEY_RANGE,
            scenario: None,
            structures: None,
            quick: false,
        }
    }
}

impl ExperimentOptions {
    /// Parses `--elements N --threads N --repeats N --key-range N
    /// --scenario X --structures a,b,c --quick` from the given iterator
    /// (typically `std::env::args().skip(1)`). Unknown flags abort with a
    /// usage message.
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Self {
        let mut options = Self::default();
        while let Some(flag) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--elements" => options.elements = value("--elements").parse().expect("--elements"),
                "--threads" => options.threads = value("--threads").parse().expect("--threads"),
                "--repeats" => options.repeats = value("--repeats").parse().expect("--repeats"),
                "--key-range" => {
                    options.key_range = value("--key-range").parse().expect("--key-range")
                }
                "--scenario" => options.scenario = Some(value("--scenario")),
                "--structures" => {
                    let specs: Vec<String> = value("--structures")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    assert!(
                        !specs.is_empty(),
                        "--structures: expected a comma-separated list of backend specs \
                         (try --help for the registered names)"
                    );
                    options.structures = Some(specs);
                }
                "--quick" => options.quick = true,
                "--help" | "-h" => {
                    println!(
                        "usage: [--elements N] [--threads N] [--repeats N] \
                         [--key-range N] [--scenario S] [--structures a,b,c] [--quick]"
                    );
                    println!("\nregistered structure backends (for --structures):");
                    pma_workloads::ensure_builtin_backends();
                    for (name, description) in pma_common::Registry::global().entries() {
                        println!("  {name:<12} {description}");
                    }
                    std::process::exit(0);
                }
                other => panic!("unknown flag: {other} (try --help)"),
            }
        }
        if options.quick {
            options.elements = options.elements.min(100_000);
            options.key_range = options.key_range.min(1 << 20);
            options.repeats = 1;
        }
        options
    }

    /// Effective element count for one experiment cell.
    pub fn cell_elements(&self) -> usize {
        self.elements.max(1)
    }

    /// The structure specs to evaluate: the `--structures` override when
    /// given (validated against the registry, aborting with the registry's
    /// descriptive error on an unknown name or malformed argument),
    /// otherwise `default`.
    pub fn resolve_structures(&self, default: Vec<String>) -> Vec<String> {
        pma_workloads::ensure_builtin_backends();
        let specs = self.structures.clone().unwrap_or(default);
        for spec in &specs {
            // A full trial build (immediately dropped) also rejects malformed
            // arguments, which label() alone would silently default away —
            // better to abort here than minutes into the experiment.
            if let Err(e) = pma_common::Registry::global().build(spec) {
                panic!("--structures: {e}");
            }
        }
        specs
    }

    /// Builds the workload spec for one cell.
    pub fn spec(
        &self,
        distribution: Distribution,
        threads: ThreadSplit,
        pattern: UpdatePattern,
    ) -> WorkloadSpec {
        WorkloadSpec {
            distribution,
            key_range: self.key_range,
            total_elements: self.cell_elements(),
            threads,
            pattern,
            ..WorkloadSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExperimentOptions {
        ExperimentOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_sensible() {
        let o = ExperimentOptions::default();
        assert!(o.threads >= 2);
        assert_eq!(o.elements, 1_000_000);
        assert!(o.scenario.is_none());
    }

    #[test]
    fn parse_all_flags() {
        let o = parse(&[
            "--elements",
            "5000",
            "--threads",
            "4",
            "--repeats",
            "3",
            "--key-range",
            "1024",
            "--scenario",
            "b",
        ]);
        assert_eq!(o.elements, 5000);
        assert_eq!(o.threads, 4);
        assert_eq!(o.repeats, 3);
        assert_eq!(o.key_range, 1024);
        assert_eq!(o.scenario.as_deref(), Some("b"));
    }

    #[test]
    fn quick_mode_caps_sizes() {
        let o = parse(&["--elements", "50000000", "--quick"]);
        assert!(o.elements <= 100_000);
        assert_eq!(o.repeats, 1);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--bogus"]);
    }

    #[test]
    fn structures_flag_splits_and_resolves() {
        let o = parse(&["--structures", "pma-batch:5, btree:8k"]);
        assert_eq!(
            o.structures,
            Some(vec!["pma-batch:5".to_string(), "btree:8k".to_string()])
        );
        let resolved = o.resolve_structures(vec!["masstree".to_string()]);
        assert_eq!(resolved, vec!["pma-batch:5", "btree:8k"]);
        // Without the flag the default set is kept.
        let o = parse(&[]);
        assert_eq!(
            o.resolve_structures(vec!["masstree".to_string()]),
            vec!["masstree"]
        );
    }

    #[test]
    #[should_panic(expected = "--structures")]
    fn unknown_structure_panics_with_registry_error() {
        let o = parse(&["--structures", "warp-drive"]);
        let _ = o.resolve_structures(vec![]);
    }

    #[test]
    fn spec_builder_uses_options() {
        let o = parse(&["--elements", "1234", "--key-range", "4096"]);
        let spec = o.spec(
            Distribution::Zipf { alpha: 1.5 },
            ThreadSplit {
                update_threads: 3,
                scan_threads: 1,
            },
            UpdatePattern::InsertOnly,
        );
        assert_eq!(spec.total_elements, 1234);
        assert_eq!(spec.key_range, 4096);
        assert_eq!(spec.threads.update_threads, 3);
    }
}
