//! The bench-smoke pipeline: a fixed small benchmark grid whose results are
//! serialised to `BENCH_<sha>.json`, compared against a committed baseline,
//! and uploaded as a CI artifact — the machine-readable performance
//! trajectory of the repository.
//!
//! The JSON is hand-rolled (the build environment has no serde): the format
//! is one object with a `sha` string and a `records` array of string/number
//! fields, where each record may carry one nested `metrics` object of
//! end-of-run observability counters — and [`parse_report`] is a minimal
//! reader for exactly that shape, not a general JSON parser. Writer and
//! reader live next to each other here and are round-trip tested, so the
//! format cannot drift.
//!
//! The regression gate ([`compare_reports`]) fails a record whose update or
//! scan throughput dropped by more than the tolerance (default 25%) against
//! the baseline record with the same `(structure, workload)` key. Latency
//! and stall columns are recorded for trend analysis but not gated — they
//! are too noisy on shared CI runners to block merges on.

use std::fmt::Write as _;

/// One cell of the bench-smoke grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SmokeRecord {
    /// Registry backend spec (e.g. `sharded:8:pma-batch:100`).
    pub structure: String,
    /// Workload name (`insert`, `scan`, `mixed`).
    pub workload: String,
    /// Update throughput in million ops/s.
    pub update_mps: f64,
    /// Scan throughput in elements/s (0 when the cell has no scanners).
    pub scan_eps: f64,
    /// Median sampled update latency in µs.
    pub p50_us: u64,
    /// p99 sampled update latency in µs.
    pub p99_us: u64,
    /// Cumulative time writers were fenced out by structural maintenance
    /// (shard split/merge fences), in µs; 0 for structures without it.
    pub split_stall_us: u64,
    /// Combining-queue ops resolved inside their owned window.
    pub owned: u64,
    /// Combining-queue ops replayed outside an owned window — must be 0.
    pub late: u64,
    /// Elements stored after the run.
    pub elements: u64,
    /// SIMD kernel variant the run dispatched to (`avx2`/`sse2`/`neon`/
    /// `scalar`) — recorded so baseline comparisons are apples-to-apples
    /// across runner hardware; `unknown` when parsed from a report written
    /// before this field existed.
    pub kernel: String,
    /// How many update latencies the p50/p99 columns rest on (one in
    /// `lat_sample_interval` operations was timed); 0 when parsed from a
    /// report written before this field existed.
    pub lat_samples: u64,
    /// Offered arrival rate in million ops/s for open-loop cells; 0 for
    /// closed-loop cells and for reports written before the column existed.
    pub offered_mps: f64,
    /// p999 probe sojourn (queue wait + service) in µs for open-loop cells;
    /// 0 for closed-loop cells and pre-column reports.
    pub sojourn_p999_us: u64,
    /// Operations shed by admission control (open-loop cells over a
    /// shed-mode router); 0 elsewhere and for pre-column reports.
    pub shed: u64,
    /// Resident heap bytes per key for byte-keyed cells (the layout
    /// economics column of `docs/INTERNALS.md`); 0 for u64 cells, for
    /// backends without memory stats, and for pre-column reports. Recorded
    /// for trend analysis, never gated.
    pub bytes_per_key: f64,
    /// End-of-run observability summary (the nested `metrics` object);
    /// `None` for structures exposing no counters and for reports written
    /// before the block existed.
    pub metrics: Option<MetricsSummary>,
}

/// The observability counters a record embeds as its nested `metrics`
/// object: end-of-run totals plus the p99 of the sampled queue depth.
/// Recorded for trend analysis, never gated.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSummary {
    /// Chunk payloads copied by the copy-on-write path for live snapshots.
    pub cow_copies: u64,
    /// Unfenced delta-log drains during incremental splits/merges.
    pub chase_rounds: u64,
    /// Worst epoch-reclamation lag observed (current epoch minus the oldest
    /// still-active one).
    pub epoch_lag: u64,
    /// p99 of the combining-queue depth sampled over the run.
    pub queue_depth_p99: f64,
    /// Worst snapshot generation lag observed.
    pub snapshot_lag: u64,
    /// Writer back-offs under delta-log backpressure.
    pub delta_backpressure_waits: u64,
}

impl SmokeRecord {
    /// The identity a record is matched on across reports.
    pub fn key(&self) -> (String, String) {
        (self.structure.clone(), self.workload.clone())
    }
}

/// Serialises a report. `sha` identifies the commit the grid ran on.
pub fn render_report(sha: &str, records: &[SmokeRecord]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"sha\": \"{}\",", escape(sha));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"structure\": \"{}\", \"workload\": \"{}\", \
             \"update_mps\": {:.6}, \"scan_eps\": {:.1}, \
             \"p50_us\": {}, \"p99_us\": {}, \"split_stall_us\": {}, \
             \"owned\": {}, \"late\": {}, \"elements\": {}, \"kernel\": \"{}\", \
             \"lat_samples\": {}, \"offered_mps\": {:.6}, \
             \"sojourn_p999_us\": {}, \"shed\": {}, \"bytes_per_key\": {:.2}",
            escape(&r.structure),
            escape(&r.workload),
            r.update_mps,
            r.scan_eps,
            r.p50_us,
            r.p99_us,
            r.split_stall_us,
            r.owned,
            r.late,
            r.elements,
            escape(&r.kernel),
            r.lat_samples,
            r.offered_mps,
            r.sojourn_p999_us,
            r.shed,
            r.bytes_per_key,
        );
        if let Some(m) = &r.metrics {
            let _ = write!(
                out,
                ", \"metrics\": {{\"cow_copies\": {}, \"chase_rounds\": {}, \
                 \"epoch_lag\": {}, \"queue_depth_p99\": {:.1}, \
                 \"snapshot_lag\": {}, \"delta_backpressure_waits\": {}}}",
                m.cow_copies,
                m.chase_rounds,
                m.epoch_lag,
                m.queue_depth_p99,
                m.snapshot_lag,
                m.delta_backpressure_waits,
            );
        }
        out.push('}');
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses a report produced by [`render_report`]. Not a general JSON parser:
/// it expects the shape this module writes (string and number fields, one
/// level of `records` objects, each optionally holding one nested `metrics`
/// object) and reports the first malformed field.
pub fn parse_report(text: &str) -> Result<(String, Vec<SmokeRecord>), String> {
    let sha = extract_string_field(text, "sha").ok_or("missing \"sha\" field")?;
    let records_start = text
        .find("\"records\"")
        .ok_or("missing \"records\" field")?;
    let mut records = Vec::new();
    let mut rest = &text[records_start..];
    while let Some(open) = rest.find('{') {
        let len = balanced_object_len(&rest[open..]).ok_or("unterminated record object")?;
        let object = &rest[open..open + len];
        records.push(parse_record(object)?);
        rest = &rest[open + len..];
    }
    Ok((sha, records))
}

/// Length (in bytes, including both braces) of the balanced `{...}` object
/// `text` starts with, counting brace depth and skipping string contents;
/// `None` when the object never closes. This is what lets a record hold a
/// nested `metrics` object.
fn balanced_object_len(text: &str) -> Option<usize> {
    debug_assert!(text.starts_with('{'));
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '{' if !in_string => depth += 1,
            '}' if !in_string => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

fn parse_record(object: &str) -> Result<SmokeRecord, String> {
    let string = |field: &str| {
        extract_string_field(object, field)
            .ok_or_else(|| format!("record missing string field \"{field}\": {object}"))
    };
    let number = |field: &str| -> Result<f64, String> {
        extract_number_field(object, field)
            .ok_or_else(|| format!("record missing number field \"{field}\": {object}"))
    };
    Ok(SmokeRecord {
        structure: string("structure")?,
        workload: string("workload")?,
        update_mps: number("update_mps")?,
        scan_eps: number("scan_eps")?,
        p50_us: number("p50_us")? as u64,
        p99_us: number("p99_us")? as u64,
        split_stall_us: number("split_stall_us")? as u64,
        owned: number("owned")? as u64,
        late: number("late")? as u64,
        elements: number("elements")? as u64,
        // Reports written before the kernel column existed stay parseable.
        kernel: extract_string_field(object, "kernel").unwrap_or_else(|| "unknown".to_string()),
        // Same for the sample count, the open-loop columns and the metrics
        // block.
        lat_samples: extract_number_field(object, "lat_samples").unwrap_or(0.0) as u64,
        offered_mps: extract_number_field(object, "offered_mps").unwrap_or(0.0),
        sojourn_p999_us: extract_number_field(object, "sojourn_p999_us").unwrap_or(0.0) as u64,
        shed: extract_number_field(object, "shed").unwrap_or(0.0) as u64,
        bytes_per_key: extract_number_field(object, "bytes_per_key").unwrap_or(0.0),
        metrics: parse_metrics_block(object),
    })
}

/// Extracts and parses the record's nested `"metrics": {...}` object;
/// `None` when the record has no such block (pre-block reports, structures
/// without counters) or the block is malformed.
fn parse_metrics_block(object: &str) -> Option<MetricsSummary> {
    let start = field_value(object, "metrics")?;
    let rest = object[start..].trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let block = &rest[..balanced_object_len(rest)?];
    let number = |field: &str| extract_number_field(block, field).unwrap_or(0.0);
    Some(MetricsSummary {
        cow_copies: number("cow_copies") as u64,
        chase_rounds: number("chase_rounds") as u64,
        epoch_lag: number("epoch_lag") as u64,
        queue_depth_p99: number("queue_depth_p99"),
        snapshot_lag: number("snapshot_lag") as u64,
        delta_backpressure_waits: number("delta_backpressure_waits") as u64,
    })
}

fn field_value(text: &str, field: &str) -> Option<usize> {
    let needle = format!("\"{field}\"");
    let at = text.find(&needle)?;
    let rest = &text[at + needle.len()..];
    let colon = rest.find(':')?;
    Some(at + needle.len() + colon + 1)
}

fn extract_string_field(text: &str, field: &str) -> Option<String> {
    let start = field_value(text, field)?;
    let rest = text[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            other => out.push(other),
        }
    }
    None
}

fn extract_number_field(text: &str, field: &str) -> Option<f64> {
    let start = field_value(text, field)?;
    let rest = text[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One throughput regression found by [`compare_reports`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// `(structure, workload)` of the regressed cell.
    pub key: (String, String),
    /// Which metric regressed (`update_mps` or `scan_eps`).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} fell {:.1}% ({:.4} -> {:.4})",
            self.key.0,
            self.key.1,
            self.metric,
            (1.0 - self.current / self.baseline) * 100.0,
            self.baseline,
            self.current
        )
    }
}

/// Noise floor for gating update throughput: a cell whose baseline moves
/// fewer than 50k updates/s (e.g. the scan-heavy cell's single starved
/// updater) measures scheduler noise, not the structure — its update column
/// is recorded for trends but never gates.
pub const UPDATE_GATE_FLOOR_MPS: f64 = 0.05;

/// Noise floor for gating scan throughput, for the same reason (1M
/// elements/s — every real scan cell is orders of magnitude above this).
pub const SCAN_GATE_FLOOR_EPS: f64 = 1.0e6;

/// Workloads whose scan throughput is gated. Update-heavy cells run their
/// scanners as starved background threads, so their scan column measures
/// scheduler fairness, not the structure — it is recorded for trends but
/// only the scan-dedicated cells (where scanners hold most of the CPU and
/// the number is reproducible) can fail the gate.
pub const SCAN_GATED_WORKLOADS: &[&str] = &["scan"];

/// Starvation threshold on `split_stall_us`: cumulative maintenance stall
/// beyond one second in a seconds-long smoke run means the shard monitor's
/// copy-on-write rebuilds were starved for CPU (the seed baseline's scan
/// cell recorded ~9.1 s of stall on a 1-core runner) and the cell's scan
/// throughput measured the scheduler, not the merge path. Such a cell — in
/// either report — is recorded for trends but never gates `scan_eps`, so a
/// starved baseline cannot mask (or a starved current run spuriously fail
/// on) real merge-path changes.
pub const STALL_NOISE_FLOOR_US: u64 = 1_000_000;

/// Compares `current` against `baseline`: a record regresses when its update
/// or scan throughput fell below `baseline * (1 - tolerance)`. Cells present
/// in only one report are ignored (the grid can grow without invalidating
/// old baselines); a metric is only gated when the baseline measured it
/// above its noise floor ([`UPDATE_GATE_FLOOR_MPS`] / [`SCAN_GATE_FLOOR_EPS`]),
/// the current run measured it at all (> 0), and — for scan throughput —
/// the cell is scan-dedicated ([`SCAN_GATED_WORKLOADS`]) and neither report
/// shows a starvation-level maintenance stall ([`STALL_NOISE_FLOOR_US`]).
pub fn compare_reports(
    baseline: &[SmokeRecord],
    current: &[SmokeRecord],
    tolerance: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.key() == cur.key()) else {
            continue;
        };
        let floor = 1.0 - tolerance;
        if base.update_mps >= UPDATE_GATE_FLOOR_MPS
            && cur.update_mps > 0.0
            && cur.update_mps < base.update_mps * floor
        {
            regressions.push(Regression {
                key: cur.key(),
                metric: "update_mps",
                baseline: base.update_mps,
                current: cur.update_mps,
            });
        }
        if SCAN_GATED_WORKLOADS.contains(&cur.workload.as_str())
            && base.split_stall_us < STALL_NOISE_FLOOR_US
            && cur.split_stall_us < STALL_NOISE_FLOOR_US
            && base.scan_eps >= SCAN_GATE_FLOOR_EPS
            && cur.scan_eps > 0.0
            && cur.scan_eps < base.scan_eps * floor
        {
            regressions.push(Regression {
                key: cur.key(),
                metric: "scan_eps",
                baseline: base.scan_eps,
                current: cur.scan_eps,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(structure: &str, workload: &str, update_mps: f64, scan_eps: f64) -> SmokeRecord {
        SmokeRecord {
            structure: structure.to_string(),
            workload: workload.to_string(),
            update_mps,
            scan_eps,
            p50_us: 10,
            p99_us: 250,
            split_stall_us: 42,
            owned: 1234,
            late: 0,
            elements: 40_000,
            kernel: "avx2".to_string(),
            lat_samples: 5_000,
            offered_mps: 0.0,
            sojourn_p999_us: 0,
            shed: 0,
            bytes_per_key: 0.0,
            metrics: None,
        }
    }

    #[test]
    fn report_roundtrips_through_render_and_parse() {
        let records = vec![
            record("sharded:8:pma-batch:100", "insert", 1.25, 3.5e8),
            record("btree", "mixed", 0.75, 0.0),
        ];
        let text = render_report("abc123", &records);
        let (sha, parsed) = parse_report(&text).expect("own format must parse");
        assert_eq!(sha, "abc123");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].structure, "sharded:8:pma-batch:100");
        assert_eq!(parsed[0].workload, "insert");
        assert!((parsed[0].update_mps - 1.25).abs() < 1e-9);
        assert!((parsed[0].scan_eps - 3.5e8).abs() < 1.0);
        assert_eq!(parsed[0].split_stall_us, 42);
        assert_eq!(parsed[1], records[1]);
    }

    #[test]
    fn parse_rejects_malformed_reports() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("{\"sha\": \"x\"}").is_err());
        let missing_field = "{\"sha\": \"x\", \"records\": [{\"structure\": \"a\"}]}";
        let err = parse_report(missing_field).unwrap_err();
        assert!(err.contains("workload"), "{err}");
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let baseline = vec![
            record("a", "scan", 1.0, 1.0e8),
            record("b", "insert", 1.0, 0.0),
        ];
        // 10% down: within the 25% tolerance.
        let ok = vec![record("a", "scan", 0.9, 0.9e8)];
        assert!(compare_reports(&baseline, &ok, 0.25).is_empty());
        // 30% down on updates, 50% down on scans: both flagged (a
        // scan-dedicated cell gates both metrics).
        let bad = vec![record("a", "scan", 0.7, 0.5e8)];
        let regressions = compare_reports(&baseline, &bad, 0.25);
        assert_eq!(regressions.len(), 2);
        assert_eq!(regressions[0].metric, "update_mps");
        assert_eq!(regressions[1].metric, "scan_eps");
        assert!(regressions[0].to_string().contains("update_mps"));
        // A cell the baseline does not know is ignored (grid growth)…
        let new_cell = vec![record("c", "insert", 0.01, 0.0)];
        assert!(compare_reports(&baseline, &new_cell, 0.25).is_empty());
        // …and a scan metric the baseline did not measure is not gated.
        let no_scan_base = vec![record("b", "scan", 1.0, 0.0)];
        let with_scan = vec![record("b", "scan", 1.0, 1.0)];
        assert!(compare_reports(&no_scan_base, &with_scan, 0.25).is_empty());
    }

    #[test]
    fn noise_floor_cells_never_gate() {
        // A starved single-updater cell (baseline below the update floor)
        // measures scheduler noise: even a 90% drop must not gate.
        let baseline = vec![record("a", "scan", 0.01, 2.0e8)];
        let noisy = vec![record("a", "scan", 0.001, 2.0e8)];
        assert!(compare_reports(&baseline, &noisy, 0.25).is_empty());
        // The same cell's scan column is far above its floor and still gates.
        let scan_drop = vec![record("a", "scan", 0.01, 0.5e8)];
        let regressions = compare_reports(&baseline, &scan_drop, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "scan_eps");
    }

    #[test]
    fn scan_throughput_gates_only_scan_dedicated_cells() {
        // Update-heavy cells run starved background scanners whose scan
        // column is scheduler noise: a 60% drop is recorded but not gated.
        for workload in ["insert", "mixed"] {
            let baseline = vec![record("a", workload, 1.0, 2.0e8)];
            let dropped = vec![record("a", workload, 1.0, 0.8e8)];
            assert!(
                compare_reports(&baseline, &dropped, 0.25).is_empty(),
                "{workload} scan column must not gate"
            );
        }
        // The scan-dedicated cell still does.
        let baseline = vec![record("a", "scan", 1.0, 2.0e8)];
        let dropped = vec![record("a", "scan", 1.0, 0.8e8)];
        assert_eq!(compare_reports(&baseline, &dropped, 0.25).len(), 1);
    }

    #[test]
    fn faster_results_never_regress() {
        let baseline = vec![record("a", "insert", 1.0, 1.0e8)];
        let faster = vec![record("a", "insert", 5.0, 9.0e8)];
        assert!(compare_reports(&baseline, &faster, 0.25).is_empty());
    }

    #[test]
    fn kernel_column_roundtrips_and_defaults_for_old_reports() {
        let records = vec![record("a", "scan", 1.0, 1.0e8)];
        let text = render_report("abc", &records);
        assert!(text.contains("\"kernel\": \"avx2\""));
        let (_, parsed) = parse_report(&text).unwrap();
        assert_eq!(parsed[0].kernel, "avx2");
        // A pre-kernel-column baseline still parses, with a sentinel value.
        let old = "{\"sha\": \"x\", \"records\": [{\"structure\": \"a\", \
                   \"workload\": \"scan\", \"update_mps\": 1.0, \
                   \"scan_eps\": 1.0, \"p50_us\": 1, \"p99_us\": 2, \
                   \"split_stall_us\": 3, \"owned\": 4, \"late\": 0, \
                   \"elements\": 5}]}";
        let (_, parsed) = parse_report(old).unwrap();
        assert_eq!(parsed[0].kernel, "unknown");
        assert_eq!(parsed[0].lat_samples, 0);
        assert_eq!(parsed[0].metrics, None);
        // The open-loop columns default to zero on pre-column reports too.
        assert_eq!(parsed[0].offered_mps, 0.0);
        assert_eq!(parsed[0].sojourn_p999_us, 0);
        assert_eq!(parsed[0].shed, 0);
    }

    #[test]
    fn open_loop_columns_roundtrip_and_never_gate() {
        let mut open = record("cores:2:sharded:8:pma-batch:100", "open-loop", 0.2, 0.0);
        open.offered_mps = 0.25;
        open.sojourn_p999_us = 870;
        open.shed = 123;
        let text = render_report("abc", std::slice::from_ref(&open));
        assert!(text.contains("\"offered_mps\": 0.250000"));
        assert!(text.contains("\"sojourn_p999_us\": 870"));
        assert!(text.contains("\"shed\": 123"));
        let (_, parsed) = parse_report(&text).unwrap();
        assert_eq!(parsed[0], open);
        // The comparator gates throughput only: a worse sojourn/shed column
        // alone never regresses (they are trend columns, like latency).
        let mut worse = open.clone();
        worse.sojourn_p999_us = 99_000;
        worse.shed = 9_999;
        assert!(compare_reports(std::slice::from_ref(&open), &[worse], 0.25).is_empty());
    }

    #[test]
    fn bytes_per_key_column_roundtrips_and_never_gates() {
        let mut byte_cell = record("bpma:128", "url-corpus", 0.8, 1.0e8);
        byte_cell.bytes_per_key = 23.75;
        let text = render_report("abc", std::slice::from_ref(&byte_cell));
        assert!(text.contains("\"bytes_per_key\": 23.75"));
        let (_, parsed) = parse_report(&text).unwrap();
        assert_eq!(parsed[0], byte_cell);
        // A pre-column baseline still parses, with the zero sentinel.
        let old = "{\"sha\": \"x\", \"records\": [{\"structure\": \"a\", \
                   \"workload\": \"scan\", \"update_mps\": 1.0, \
                   \"scan_eps\": 1.0, \"p50_us\": 1, \"p99_us\": 2, \
                   \"split_stall_us\": 3, \"owned\": 4, \"late\": 0, \
                   \"elements\": 5}]}";
        let (_, parsed) = parse_report(old).unwrap();
        assert_eq!(parsed[0].bytes_per_key, 0.0);
        // A fatter layout alone never regresses: the column is trend-only.
        let mut fatter = byte_cell.clone();
        fatter.bytes_per_key = 99.0;
        assert!(compare_reports(std::slice::from_ref(&byte_cell), &[fatter], 0.25).is_empty());
    }

    #[test]
    fn metrics_block_roundtrips_and_tolerates_absence() {
        let mut with_block = record("sharded:4:pma:100", "mixed", 1.0, 1.0e8);
        with_block.metrics = Some(MetricsSummary {
            cow_copies: 17,
            chase_rounds: 9,
            epoch_lag: 2,
            queue_depth_p99: 31.5,
            snapshot_lag: 1,
            delta_backpressure_waits: 4,
        });
        let without_block = record("btree", "mixed", 0.5, 0.0);
        let text = render_report("abc", &[with_block.clone(), without_block.clone()]);
        assert!(text.contains("\"metrics\": {\"cow_copies\": 17"));
        let (_, parsed) = parse_report(&text).expect("nested block must parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], with_block);
        assert_eq!(parsed[1], without_block);
        // The comparator gates only throughput: a wildly different metrics
        // block alone never regresses.
        let mut shifted = with_block.clone();
        shifted.metrics = None;
        assert!(compare_reports(std::slice::from_ref(&with_block), &[shifted], 0.25).is_empty());
    }

    #[test]
    fn starved_cells_never_gate_scan_throughput() {
        // A starvation-level maintenance stall in the BASELINE (the seed's
        // ~9.1 s scan cell) means its scan number is scheduler noise: the
        // current run must compare against nothing, not against noise.
        let mut starved_base = record("a", "scan", 1.0, 2.0e8);
        starved_base.split_stall_us = 9_166_750;
        let clean_cur = vec![record("a", "scan", 1.0, 0.5e8)];
        assert!(compare_reports(&[starved_base.clone()], &clean_cur, 0.25).is_empty());
        // ...and a starved CURRENT run must not spuriously fail the gate.
        let clean_base = record("a", "scan", 1.0, 2.0e8);
        let mut starved_cur = record("a", "scan", 1.0, 0.5e8);
        starved_cur.split_stall_us = STALL_NOISE_FLOOR_US;
        assert!(
            compare_reports(std::slice::from_ref(&clean_base), &[starved_cur], 0.25).is_empty()
        );
        // Below the stall floor the gate still works.
        let slow = vec![record("a", "scan", 1.0, 0.5e8)];
        assert_eq!(compare_reports(&[clean_base], &slow, 0.25).len(), 1);
        // The starved cell's update column keeps its own (unchanged) gate.
        let mut update_drop = starved_base.clone();
        update_drop.update_mps = 0.5;
        let regressions = compare_reports(&[starved_base], &[update_drop], 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "update_mps");
    }

    #[test]
    fn sha_with_quotes_is_escaped() {
        let text = render_report("we\"ird", &[]);
        let (sha, records) = parse_report(&text).unwrap();
        assert_eq!(sha, "we\"ird");
        assert!(records.is_empty());
    }
}
