//! The [`ConcurrentByteMap`] surface: variable-length byte keys.
//!
//! Every structure in the workspace originally spoke [`Key`] (= `i64`). Real
//! traffic — URLs, user IDs, composite keys — is byte-oriented, so this module
//! defines a parallel object-safe trait family over `&[u8]` keys:
//!
//! * [`ConcurrentByteMap`] mirrors [`crate::ConcurrentMap`], with ranges made
//!   **half-open** (`[lo, hi)`, `hi = None` for unbounded) because that is
//!   the natural shape of a prefix scan, and with [`ConcurrentByteMap::prefix`]
//!   as a first-class operation.
//! * [`FrozenByteView`] mirrors [`crate::FrozenView`] for point-in-time
//!   snapshots.
//! * [`ByteScanStats`] folds a scan into a fingerprint that is comparable
//!   across backends (order-sensitive, so it also proves scan *order*).
//! * [`ByteMemoryStats`] is the bytes/key accounting record: every byte-keyed
//!   backend that can measure its own heap reports through it, and the
//!   bench-smoke URL-corpus cell publishes `heap_bytes / entries` from it
//!   (see `docs/INTERNALS.md` for the methodology).
//! * [`ByteView64`] adapts any registered u64 backend to the byte surface via
//!   the order-preserving fixed 8-byte encoding, so the whole existing fleet
//!   (PMA variants, trees, `sharded:*`, `cores:*`) serves byte traffic too.
//!
//! Keys passed to these APIs are raw encodings as produced by
//! [`crate::types::ByteKey::to_bytes`]; ordering is plain lexicographic byte
//! order everywhere.

use std::sync::Arc;

use crate::map::MaintenanceStats;
use crate::types::{decode_key, encode_key, prefix_upper_bound, Key, Value, KEY_MAX};
use crate::{ConcurrentMap, FrozenView, PmaError};

/// Fold of an ordered byte-key scan: cardinality, key volume, value sum and
/// an order-sensitive key fingerprint.
///
/// Two scans that visit the same `(key, value)` sequence in the same order
/// produce equal stats; the chained fingerprint makes out-of-order or torn
/// scans visible where a plain sum would not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ByteScanStats {
    /// Number of elements visited.
    pub count: u64,
    /// Total key bytes visited (sum of key lengths).
    pub key_bytes: u64,
    /// Sum of visited values (wide to avoid overflow).
    pub value_sum: i128,
    /// Order-sensitive fingerprint chaining an FNV-1a hash of every
    /// `(key, value)` visited.
    pub key_check: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

impl ByteScanStats {
    /// Folds one visited element into the stats.
    #[inline]
    pub fn visit(&mut self, key: &[u8], value: Value) {
        self.count += 1;
        self.key_bytes += key.len() as u64;
        self.value_sum += i128::from(value);
        self.key_check = self
            .key_check
            .wrapping_mul(FNV_PRIME)
            .wrapping_add(fnv1a(key) ^ (value as u64));
    }
}

/// Heap accounting for a byte-keyed structure, the record behind the
/// bytes/key bench column.
///
/// `heap_bytes` is *everything the structure allocated to hold its entries*
/// (key bytes, value slots, offsets, fences, per-node overhead — measured or
/// analytically modelled per backend), while `key_bytes` is the logical
/// payload (`Σ len(key)`), so `heap_bytes / entries` vs `key_bytes / entries`
/// shows the per-key overhead directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ByteMemoryStats {
    /// Number of live entries.
    pub entries: usize,
    /// Total heap bytes attributed to storing those entries.
    pub heap_bytes: usize,
    /// Logical key payload: sum of the stored keys' lengths.
    pub key_bytes: usize,
}

impl ByteMemoryStats {
    /// Heap bytes per stored entry (the headline metric); 0 when empty.
    pub fn bytes_per_key(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.heap_bytes as f64 / self.entries as f64
        }
    }

    /// Sums another backend's accounting into this one (used by sharded
    /// compositions).
    pub fn merge(&mut self, other: &ByteMemoryStats) {
        self.entries += other.entries;
        self.heap_bytes += other.heap_bytes;
        self.key_bytes += other.key_bytes;
    }
}

/// Validates that `items` is strictly sorted by key (no duplicates), the
/// contract of byte-key bulk loaders.
pub fn check_sorted_bytes(items: &[(Vec<u8>, Value)]) -> Result<(), PmaError> {
    for pair in items.windows(2) {
        if pair[0].0 >= pair[1].0 {
            return Err(PmaError::invalid(
                "items",
                format!(
                    "bulk-load input must be strictly sorted by key; saw {:?} before {:?}",
                    pair[0].0, pair[1].0
                ),
            ));
        }
    }
    Ok(())
}

/// Collapses a sorted run with duplicate keys to one entry per key, keeping
/// the last (latest) value — upsert semantics for bulk loads.
///
/// `items` must be sorted by key (duplicates allowed); the result satisfies
/// [`check_sorted_bytes`].
pub fn dedup_sorted_bytes_last_wins(items: &[(Vec<u8>, Value)]) -> Vec<(Vec<u8>, Value)> {
    let mut out: Vec<(Vec<u8>, Value)> = Vec::with_capacity(items.len());
    for (key, value) in items {
        match out.last_mut() {
            Some(last) if &last.0 == key => last.1 = *value,
            _ => out.push((key.clone(), *value)),
        }
    }
    out
}

/// An immutable point-in-time view over a byte-keyed structure, the byte
/// counterpart of [`FrozenView`].
pub trait FrozenByteView: Send + Sync {
    /// Returns the frozen value for `key`, if present at capture time.
    fn get(&self, key: &[u8]) -> Option<Value>;

    /// Number of frozen elements.
    fn len(&self) -> usize;

    /// True when the view holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every frozen element with key in the half-open range
    /// `[lo, hi)` in ascending key order (`hi = None` is unbounded above).
    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value));

    /// Scans all frozen elements in ascending key order.
    fn scan_all(&self) -> ByteScanStats {
        self.scan_range(&[], None)
    }

    /// Scans the frozen elements in `[lo, hi)`, folding into stats.
    fn scan_range(&self, lo: &[u8], hi: Option<&[u8]>) -> ByteScanStats {
        let mut stats = ByteScanStats::default();
        self.range(lo, hi, &mut |key, value| stats.visit(key, value));
        stats
    }

    /// Visits every frozen element whose key starts with `prefix`, in
    /// ascending key order.
    fn prefix(&self, prefix: &[u8], visitor: &mut dyn FnMut(&[u8], Value)) {
        match prefix_upper_bound(prefix) {
            Some(hi) => self.range(prefix, Some(&hi), visitor),
            None => self.range(prefix, None, visitor),
        }
    }

    /// Scans the frozen elements under `prefix`, folding into stats.
    fn prefix_stats(&self, prefix: &[u8]) -> ByteScanStats {
        let mut stats = ByteScanStats::default();
        self.prefix(prefix, &mut |key, value| stats.visit(key, value));
        stats
    }
}

/// A concurrent ordered map over variable-length byte keys.
///
/// The object-safe byte counterpart of [`ConcurrentMap`]: all methods take
/// `&self` and are safe to call from many threads. Keys are arbitrary byte
/// strings (including empty) compared lexicographically; ranges are
/// half-open `[lo, hi)` with `hi = None` meaning unbounded, which makes
/// [`ConcurrentByteMap::prefix`] exactly `[p, prefix_upper_bound(p))`.
///
/// ```
/// use pma_common::bytemap::ConcurrentByteMap;
/// # use pma_common::Value;
/// # use std::collections::BTreeMap;
/// # use std::sync::RwLock;
/// # #[derive(Default)]
/// # struct Demo(RwLock<BTreeMap<Vec<u8>, Value>>);
/// # impl ConcurrentByteMap for Demo {
/// #     fn insert(&self, key: &[u8], value: Value) {
/// #         self.0.write().unwrap().insert(key.to_vec(), value);
/// #     }
/// #     fn remove(&self, key: &[u8]) -> Option<Value> {
/// #         self.0.write().unwrap().remove(key)
/// #     }
/// #     fn get(&self, key: &[u8]) -> Option<Value> {
/// #         self.0.read().unwrap().get(key).copied()
/// #     }
/// #     fn len(&self) -> usize { self.0.read().unwrap().len() }
/// #     fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
/// #         for (k, &v) in self.0.read().unwrap().iter() {
/// #             if k.as_slice() >= lo && hi.is_none_or(|h| k.as_slice() < h) { visitor(k, v); }
/// #         }
/// #     }
/// #     fn name(&self) -> &'static str { "demo" }
/// # }
/// let map = Demo::default(); // any byte backend, e.g. Registry build_bytes("bpma:128")
/// map.insert(b"user:42", 1);
/// map.insert(b"user:7", 2);
/// map.insert(b"url:https://example.com/", 3);
///
/// let mut users = Vec::new();
/// map.prefix(b"user:", &mut |key, value| users.push((key.to_vec(), value)));
/// assert_eq!(users.len(), 2);
/// assert_eq!(users[0].0, b"user:42"); // lexicographic: "42" < "7"
/// assert_eq!(map.get(b"url:https://example.com/"), Some(3));
/// ```
pub trait ConcurrentByteMap: Send + Sync {
    /// Inserts `key -> value`, overwriting any existing value (upsert).
    fn insert(&self, key: &[u8], value: Value);

    /// Removes `key`, returning the previous value if it was present.
    fn remove(&self, key: &[u8]) -> Option<Value>;

    /// Returns the current value for `key`.
    fn get(&self, key: &[u8]) -> Option<Value>;

    /// Number of elements currently stored.
    fn len(&self) -> usize;

    /// True when the map holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every element with key in the half-open range `[lo, hi)` in
    /// ascending key order (`hi = None` is unbounded above; `lo = b""` is
    /// unbounded below, since the empty string precedes every key).
    ///
    /// The visitor borrows the key for the duration of the call only.
    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value));

    /// Scans all elements in ascending key order, folding into stats.
    fn scan_all(&self) -> ByteScanStats {
        self.scan_range(&[], None)
    }

    /// Scans the elements in `[lo, hi)`, folding into stats.
    fn scan_range(&self, lo: &[u8], hi: Option<&[u8]>) -> ByteScanStats {
        let mut stats = ByteScanStats::default();
        self.range(lo, hi, &mut |key, value| stats.visit(key, value));
        stats
    }

    /// Visits every element whose key starts with `prefix`, in ascending key
    /// order — the first-class `prefix(b"user:")` scan.
    ///
    /// The default maps the prefix to the half-open range
    /// `[prefix, prefix_upper_bound(prefix))`; sharded implementations
    /// override to fan out only to the shards the prefix can touch.
    fn prefix(&self, prefix: &[u8], visitor: &mut dyn FnMut(&[u8], Value)) {
        match prefix_upper_bound(prefix) {
            Some(hi) => self.range(prefix, Some(&hi), visitor),
            None => self.range(prefix, None, visitor),
        }
    }

    /// Scans the elements under `prefix`, folding into stats.
    fn prefix_stats(&self, prefix: &[u8]) -> ByteScanStats {
        let mut stats = ByteScanStats::default();
        self.prefix(prefix, &mut |key, value| stats.visit(key, value));
        stats
    }

    /// Collects the elements in `[lo, hi)` into an owned, ordered vector.
    fn collect_range(&self, lo: &[u8], hi: Option<&[u8]>) -> Vec<(Vec<u8>, Value)> {
        let mut out = Vec::new();
        self.range(lo, hi, &mut |key, value| out.push((key.to_vec(), value)));
        out
    }

    /// Inserts a batch of elements (upsert each; later entries win on
    /// duplicate keys). The default issues the inserts one by one.
    fn insert_batch(&self, items: &[(Vec<u8>, Value)]) {
        for (key, value) in items {
            self.insert(key, *value);
        }
    }

    /// Completes any buffered or deferred work (no-op by default).
    fn flush(&self) {}

    /// Captures an immutable point-in-time view, when the backend supports
    /// snapshots.
    fn frozen(&self) -> Option<Box<dyn FrozenByteView>> {
        None
    }

    /// Reports heap accounting for the bytes/key metric, when the backend
    /// can measure (or analytically model) its own footprint.
    fn memory_stats(&self) -> Option<ByteMemoryStats> {
        None
    }

    /// Structural-maintenance counters (splits, copy-on-write copies, …),
    /// when the backend tracks them.
    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        None
    }

    /// A short static name identifying the implementation.
    fn name(&self) -> &'static str;
}

/// Blanket implementation so `Arc<dyn ConcurrentByteMap>` (the registry's
/// build product) can be passed wherever the trait is expected.
impl<M: ConcurrentByteMap + ?Sized> ConcurrentByteMap for Arc<M> {
    fn insert(&self, key: &[u8], value: Value) {
        (**self).insert(key, value)
    }
    fn remove(&self, key: &[u8]) -> Option<Value> {
        (**self).remove(key)
    }
    fn get(&self, key: &[u8]) -> Option<Value> {
        (**self).get(key)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
        (**self).range(lo, hi, visitor)
    }
    fn scan_all(&self) -> ByteScanStats {
        (**self).scan_all()
    }
    fn scan_range(&self, lo: &[u8], hi: Option<&[u8]>) -> ByteScanStats {
        (**self).scan_range(lo, hi)
    }
    fn prefix(&self, prefix: &[u8], visitor: &mut dyn FnMut(&[u8], Value)) {
        (**self).prefix(prefix, visitor)
    }
    fn prefix_stats(&self, prefix: &[u8]) -> ByteScanStats {
        (**self).prefix_stats(prefix)
    }
    fn collect_range(&self, lo: &[u8], hi: Option<&[u8]>) -> Vec<(Vec<u8>, Value)> {
        (**self).collect_range(lo, hi)
    }
    fn insert_batch(&self, items: &[(Vec<u8>, Value)]) {
        (**self).insert_batch(items)
    }
    fn flush(&self) {
        (**self).flush()
    }
    fn frozen(&self) -> Option<Box<dyn FrozenByteView>> {
        (**self).frozen()
    }
    fn memory_stats(&self) -> Option<ByteMemoryStats> {
        (**self).memory_stats()
    }
    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        (**self).maintenance_stats()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Adapts any u64 backend to the byte surface via the order-preserving fixed
/// 8-byte key encoding (registry spec `b64:<inner-spec>`).
///
/// Stored keys are exactly the 8-byte encodings of native [`Key`]s —
/// [`ByteView64::insert`] panics on any other length (there is no native key
/// to map it to), while lookups and removals of other lengths simply miss.
/// Range and prefix bounds of *any* length are honoured: a byte bound is
/// translated to the tightest enclosing native-key interval, so e.g.
/// `prefix(&[0x80, 0x00])` scans exactly the non-negative keys whose top 16
/// encoded bits are `0x8000`. This routes byte traffic through every
/// registered u64 backend — including `sharded:*` fences and the `cores:*`
/// router, whose SIMD fence routing sees the keys' order-preserved heads.
pub struct ByteView64 {
    inner: Arc<dyn ConcurrentMap>,
}

impl ByteView64 {
    /// Wraps a built u64 backend.
    pub fn new(inner: Arc<dyn ConcurrentMap>) -> Self {
        Self { inner }
    }

    /// Bulk-loads from a strictly sorted byte run (every key must be a valid
    /// 8-byte encoding) into an already-built empty inner backend.
    pub fn load_sorted(&self, items: &[(Vec<u8>, Value)]) -> Result<(), PmaError> {
        check_sorted_bytes(items)?;
        let mut native = Vec::with_capacity(items.len());
        for (key, value) in items {
            let arr: [u8; 8] = key.as_slice().try_into().map_err(|_| {
                PmaError::invalid("items", "b64 keys must be exactly 8 bytes".to_string())
            })?;
            native.push((decode_key(arr), *value));
        }
        self.inner.insert_batch(&native);
        Ok(())
    }

    fn decode_exact(key: &[u8]) -> Option<Key> {
        let arr: [u8; 8] = key.try_into().ok()?;
        Some(decode_key(arr))
    }
}

/// Smallest native key whose encoding is `>= lo`, or `None` when no encoding
/// reaches `lo` (i.e. the range is empty from below).
fn native_lower_bound(lo: &[u8]) -> Option<Key> {
    if lo.len() <= 8 {
        let mut padded = [0_u8; 8];
        padded[..lo.len()].copy_from_slice(lo);
        Some(decode_key(padded))
    } else {
        // 8-byte encodings compare below any longer string sharing their
        // prefix, so the first encoding >= lo is the successor of lo's head.
        let head: [u8; 8] = lo[..8].try_into().expect("8-byte head");
        decode_key(head).checked_add(1)
    }
}

/// Largest native key whose encoding is `< hi` (exclusive byte bound), or
/// `None` when the range is empty.
fn native_upper_bound(hi: Option<&[u8]>) -> Option<Key> {
    let Some(hi) = hi else { return Some(KEY_MAX) };
    if hi.len() <= 8 {
        let mut padded = [0_u8; 8];
        padded[..hi.len()].copy_from_slice(hi);
        // x < hi  <=>  x < padded(hi) for 8-byte x, so step down once.
        decode_key(padded).checked_sub(1)
    } else {
        // An 8-byte x is < hi exactly when x <= hi's head.
        let head: [u8; 8] = hi[..8].try_into().expect("8-byte head");
        Some(decode_key(head))
    }
}

impl ConcurrentByteMap for ByteView64 {
    fn insert(&self, key: &[u8], value: Value) {
        let native = Self::decode_exact(key)
            .unwrap_or_else(|| panic!("b64 stores fixed 8-byte keys, got {} bytes", key.len()));
        self.inner.insert(native, value);
    }

    fn remove(&self, key: &[u8]) -> Option<Value> {
        self.inner.remove(Self::decode_exact(key)?)
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        self.inner.get(Self::decode_exact(key)?)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
        let (Some(start), Some(end)) = (native_lower_bound(lo), native_upper_bound(hi)) else {
            return;
        };
        if start > end {
            return;
        }
        self.inner.range(start, end, &mut |key, value| {
            visitor(&encode_key(key), value);
        });
    }

    fn insert_batch(&self, items: &[(Vec<u8>, Value)]) {
        let native: Vec<(Key, Value)> = items
            .iter()
            .map(|(key, value)| {
                let native = Self::decode_exact(key).unwrap_or_else(|| {
                    panic!("b64 stores fixed 8-byte keys, got {} bytes", key.len())
                });
                (native, *value)
            })
            .collect();
        self.inner.insert_batch(&native);
    }

    fn flush(&self) {
        self.inner.flush()
    }

    fn frozen(&self) -> Option<Box<dyn FrozenByteView>> {
        Some(Box::new(FrozenByteView64 {
            inner: self.inner.frozen()?,
        }))
    }

    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        self.inner.maintenance_stats()
    }

    fn name(&self) -> &'static str {
        "byte-view-64"
    }
}

/// Frozen counterpart of [`ByteView64`], wrapping the inner backend's
/// [`FrozenView`].
struct FrozenByteView64 {
    inner: Box<dyn FrozenView>,
}

impl FrozenByteView for FrozenByteView64 {
    fn get(&self, key: &[u8]) -> Option<Value> {
        self.inner.get(ByteView64::decode_exact(key)?)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
        let (Some(start), Some(end)) = (native_lower_bound(lo), native_upper_bound(hi)) else {
            return;
        };
        if start > end {
            return;
        }
        self.inner.range(start, end, &mut |key, value| {
            visitor(&encode_key(key), value);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::KEY_MIN;
    use std::collections::BTreeMap;
    use std::sync::RwLock;

    #[derive(Default)]
    struct ModelMap {
        entries: RwLock<BTreeMap<Key, Value>>,
    }

    impl ConcurrentMap for ModelMap {
        fn insert(&self, key: Key, value: Value) {
            self.entries.write().unwrap().insert(key, value);
        }
        fn remove(&self, key: Key) -> Option<Value> {
            self.entries.write().unwrap().remove(&key)
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.entries.read().unwrap().get(&key).copied()
        }
        fn len(&self) -> usize {
            self.entries.read().unwrap().len()
        }
        fn scan_all(&self) -> crate::ScanStats {
            self.scan_range(KEY_MIN, KEY_MAX)
        }
        fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
            for (&k, &v) in self.entries.read().unwrap().range(lo..=hi) {
                visitor(k, v);
            }
        }
        fn name(&self) -> &'static str {
            "model"
        }
    }

    fn adapter_with(keys: &[Key]) -> ByteView64 {
        let view = ByteView64::new(Arc::new(ModelMap::default()));
        for &k in keys {
            view.insert(&encode_key(k), k.wrapping_mul(3));
        }
        view
    }

    #[test]
    fn adapter_point_ops_roundtrip() {
        let view = adapter_with(&[-5, 0, 7, KEY_MIN, KEY_MAX]);
        assert_eq!(view.len(), 5);
        assert_eq!(view.get(&encode_key(7)), Some(21));
        assert_eq!(view.get(&encode_key(8)), None);
        assert_eq!(view.get(b"short"), None);
        assert_eq!(view.remove(&encode_key(0)), Some(0));
        assert_eq!(view.len(), 4);
    }

    #[test]
    fn adapter_range_honours_odd_length_bounds() {
        let view = adapter_with(&(-40..40).collect::<Vec<Key>>());
        // Full scan through an empty lower bound.
        assert_eq!(view.scan_all().count, 80);
        // A 1-byte lower bound (0x80 = first non-negative encoded byte).
        let mut seen = Vec::new();
        view.range(&[0x80], None, &mut |key, _| {
            seen.push(decode_key(key.try_into().unwrap()));
        });
        assert_eq!(seen, (0..40).collect::<Vec<Key>>());
        // A 9-byte lower bound excludes the key it extends.
        let mut long_lo = encode_key(5).to_vec();
        long_lo.push(0);
        let mut seen = Vec::new();
        view.range(&long_lo, Some(&encode_key(9)), &mut |key, _| {
            seen.push(decode_key(key.try_into().unwrap()));
        });
        assert_eq!(seen, vec![6, 7, 8]);
        // A 9-byte upper bound includes the key it extends.
        let mut long_hi = encode_key(8).to_vec();
        long_hi.push(0);
        let mut seen = Vec::new();
        view.range(&encode_key(6), Some(&long_hi), &mut |key, _| {
            seen.push(decode_key(key.try_into().unwrap()));
        });
        assert_eq!(seen, vec![6, 7, 8]);
    }

    #[test]
    fn adapter_prefix_scans_encoded_interval() {
        let view = adapter_with(&(-300..300).collect::<Vec<Key>>());
        // Keys 0..=255 share the 7-byte encoded prefix 80 00 00 00 00 00 00.
        let mut count = 0_u64;
        view.prefix(&encode_key(0)[..7], &mut |key, _| {
            let k = decode_key(key.try_into().unwrap());
            assert!((0..=255).contains(&k));
            count += 1;
        });
        assert_eq!(count, 256);
    }

    #[test]
    fn adapter_frozen_view_matches_live() {
        let view = adapter_with(&[1, 2, 3]);
        let frozen = view.frozen();
        // ModelMap has no frozen(); default None propagates.
        assert!(frozen.is_none());
    }

    #[test]
    fn scan_stats_fingerprint_is_order_sensitive() {
        let mut forward = ByteScanStats::default();
        forward.visit(b"a", 1);
        forward.visit(b"b", 2);
        let mut reversed = ByteScanStats::default();
        reversed.visit(b"b", 2);
        reversed.visit(b"a", 1);
        assert_eq!(forward.count, reversed.count);
        assert_eq!(forward.value_sum, reversed.value_sum);
        assert_ne!(forward.key_check, reversed.key_check);
    }

    #[test]
    fn dedup_keeps_last_value_per_key() {
        let items = vec![
            (b"a".to_vec(), 1),
            (b"a".to_vec(), 2),
            (b"b".to_vec(), 3),
            (b"b".to_vec(), 4),
            (b"b".to_vec(), 5),
            (b"c".to_vec(), 6),
        ];
        let deduped = dedup_sorted_bytes_last_wins(&items);
        assert_eq!(
            deduped,
            vec![(b"a".to_vec(), 2), (b"b".to_vec(), 5), (b"c".to_vec(), 6)]
        );
        assert!(check_sorted_bytes(&deduped).is_ok());
        assert!(check_sorted_bytes(&items).is_err());
    }
}
