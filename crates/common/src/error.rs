//! Error type shared across the workspace.

use std::fmt;

/// Errors surfaced by the public APIs of the workspace crates.
///
/// The data-structure hot paths are infallible by design (as in the paper's
/// C++ implementation); errors are only produced by configuration validation,
/// the experiment harness, and the graph layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmaError {
    /// A configuration parameter is outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A requested entity (vertex, edge, experiment, …) does not exist.
    NotFound(String),
    /// The operation conflicts with the current state (e.g. duplicate vertex).
    Conflict(String),
    /// The structure is over capacity and the caller opted out of blocking:
    /// a shed-mode admission (`ConcurrentMap::try_insert`) found the target
    /// ingress queue full. The op was **not** applied; the caller may retry.
    Overloaded {
        /// Index of the saturated worker/queue.
        worker: usize,
        /// The queue's bounded capacity at the time of the shed.
        capacity: usize,
    },
}

impl fmt::Display for PmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmaError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            PmaError::NotFound(what) => write!(f, "not found: {what}"),
            PmaError::Conflict(what) => write!(f, "conflict: {what}"),
            PmaError::Overloaded { worker, capacity } => {
                write!(
                    f,
                    "overloaded: ingress queue of worker {worker} is at capacity {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for PmaError {}

impl PmaError {
    /// Convenience constructor for [`PmaError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        PmaError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = PmaError::invalid("segment_capacity", "must be a power of two");
        assert_eq!(
            e.to_string(),
            "invalid parameter `segment_capacity`: must be a power of two"
        );
        assert_eq!(
            PmaError::NotFound("vertex 3".into()).to_string(),
            "not found: vertex 3"
        );
        assert_eq!(
            PmaError::Conflict("vertex 3 already exists".into()).to_string(),
            "conflict: vertex 3 already exists"
        );
        assert_eq!(
            PmaError::Overloaded {
                worker: 2,
                capacity: 1024
            }
            .to_string(),
            "overloaded: ingress queue of worker 2 is at capacity 1024"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&PmaError::NotFound("x".into()));
    }
}
