//! Shared vocabulary for the `rma-concurrent` workspace.
//!
//! This crate defines the key/value types used by the evaluation of the paper
//! *Fast Concurrent Reads and Updates with PMAs* (De Leo & Boncz, GRADES-NDA
//! 2019), the [`ConcurrentMap`] trait that every data structure in the
//! workspace implements (the concurrent PMA and all tree baselines) —
//! including the bulk-load constructor `from_sorted` — the string-addressable
//! backend [`registry`] with its `build`/`build_loaded` dispatch, and a few
//! small utilities shared by the workload drivers and tests.

#![warn(missing_docs)]

pub mod bytemap;
pub mod error;
pub mod map;
pub mod registry;
pub mod simd;
pub mod types;
pub mod util;

/// The observability layer (tracing, metrics, profiling spans), re-exported
/// so every crate that depends on `pma-common` can reach it without a direct
/// manifest edge.
pub use pma_obs as obs;

pub use bytemap::{
    check_sorted_bytes, dedup_sorted_bytes_last_wins, ByteMemoryStats, ByteScanStats, ByteView64,
    ConcurrentByteMap, FrozenByteView,
};
pub use error::PmaError;
pub use map::{
    check_sorted, dedup_sorted_last_wins, CombiningStats, ConcurrentMap, FrozenView,
    MaintenanceStats, ScanStats,
};
pub use registry::{BackendDef, BackendSpec, ByteBackendDef, Registry};
pub use types::{ByteKey, Key, KeyValue, Value, KEY_MAX, KEY_MIN};
