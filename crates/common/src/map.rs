//! The [`ConcurrentMap`] trait implemented by every data structure evaluated
//! in the paper: the concurrent PMA, the B+-tree, the ART/B+-tree hybrid, the
//! Masstree-like tree and the Bw-Tree-like structure.
//!
//! The trait deliberately mirrors the operations the paper's evaluation
//! exercises: point insertions, deletions, lookups, and ordered scans (full
//! and ranged). All methods take `&self`: implementations are responsible for
//! their own internal synchronisation.

use crate::error::PmaError;
use crate::types::{Key, Value};
use pma_obs::metrics::{MetricSource, Observe};

/// Validates the input contract of the bulk-load paths: keys must be in
/// non-decreasing order (equal keys are allowed — the later entry wins, as
/// with [`ConcurrentMap::insert_batch`]).
///
/// Returns [`PmaError::InvalidParameter`] naming the first out-of-order
/// position, so callers get a diagnosable error instead of a corrupted
/// structure.
pub fn check_sorted(items: &[(Key, Value)]) -> Result<(), PmaError> {
    if let Some(pos) = items.windows(2).position(|w| w[0].0 > w[1].0) {
        return Err(PmaError::invalid(
            "sorted_items",
            format!(
                "keys must be sorted ascending; items[{pos}] = {} > items[{}] = {}",
                items[pos].0,
                pos + 1,
                items[pos + 1].0
            ),
        ));
    }
    Ok(())
}

/// Reduces a sorted run to strictly-increasing keys, keeping the **last**
/// entry of every equal-key group (upsert semantics). Shared by the native
/// `from_sorted` implementations, which all want a duplicate-free stream.
///
/// The input must already be sorted (see [`check_sorted`]).
pub fn dedup_sorted_last_wins(items: &[(Key, Value)]) -> Vec<(Key, Value)> {
    debug_assert!(items.windows(2).all(|w| w[0].0 <= w[1].0));
    let mut out: Vec<(Key, Value)> = Vec::with_capacity(items.len());
    for &(k, v) in items {
        match out.last_mut() {
            Some(last) if last.0 == k => last.1 = v,
            _ => out.push((k, v)),
        }
    }
    out
}

/// Aggregate statistics produced by an ordered scan.
///
/// The workload drivers use scans that fold every visited element into this
/// accumulator, which both prevents the compiler from optimising the traversal
/// away and gives the tests a cheap checksum to validate scan correctness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Number of elements visited.
    pub count: u64,
    /// Sum of all visited keys (wrapping, used as a checksum).
    pub key_sum: i128,
    /// Sum of all visited values (wrapping, used as a checksum).
    pub value_sum: i128,
}

impl ScanStats {
    /// Folds one element into the accumulator.
    #[inline]
    pub fn visit(&mut self, key: Key, value: Value) {
        self.count += 1;
        self.key_sum = self.key_sum.wrapping_add(key as i128);
        self.value_sum = self.value_sum.wrapping_add(value as i128);
    }

    /// Folds a parallel run of keys and values into the accumulator in one
    /// pass — the bulk counterpart of [`ScanStats::visit`] used by the scan
    /// paths that walk whole sorted segment runs at a time.
    #[inline]
    pub fn visit_run(&mut self, keys: &[Key], values: &[Value]) {
        debug_assert_eq!(keys.len(), values.len());
        self.count += keys.len() as u64;
        let mut key_sum = 0i128;
        for &k in keys {
            key_sum += k as i128;
        }
        let mut value_sum = 0i128;
        for &v in values {
            value_sum += v as i128;
        }
        self.key_sum = self.key_sum.wrapping_add(key_sum);
        self.value_sum = self.value_sum.wrapping_add(value_sum);
    }

    /// Merges another accumulator into this one.
    #[inline]
    pub fn merge(&mut self, other: &ScanStats) {
        self.count += other.count;
        self.key_sum = self.key_sum.wrapping_add(other.key_sum);
        self.value_sum = self.value_sum.wrapping_add(other.value_sum);
    }
}

/// Counters surfaced by backends that defer updates through combining
/// queues (the concurrent PMA's asynchronous update modes and anything
/// composing such a backend, like the sharded engine).
///
/// The harness renders both next to the throughput columns: `owned_applies`
/// says how much work the combining machinery actually moved, and
/// `late_replays` must stay **zero** — a non-zero value means a queued
/// operation was applied *after* the window owning its key range was
/// released, which is exactly the linearizability hole the owned-window
/// apply protocol exists to close.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CombiningStats {
    /// Queued/parked operations resolved while the gate (or gate window)
    /// covering their key was still exclusively owned.
    pub owned_applies: u64,
    /// Operations that had to be salvaged through the defensive
    /// full-rebuild fold because they were found outside their gate's
    /// fences at drain time. Always zero unless the owned-window
    /// invariant is broken.
    pub late_replays: u64,
}

impl CombiningStats {
    /// Element-wise accumulation (used by composite backends that sum the
    /// counters of their inner instances).
    pub fn merge(&mut self, other: &CombiningStats) {
        self.owned_applies += other.owned_applies;
        self.late_replays += other.late_replays;
    }
}

impl MetricSource for CombiningStats {
    fn observe(&self, out: &mut dyn Observe) {
        out.counter("owned_applies", self.owned_applies);
        out.counter("late_replays", self.late_replays);
    }
}

/// Counters surfaced by backends that perform background structural
/// maintenance — today the sharded engine's splits and merges, tomorrow any
/// backend that reorganises itself while serving traffic.
///
/// The harness reports `stall_ns` next to the throughput columns: it is the
/// cumulative wall-clock time during which *writers were blocked* by
/// structural changes (the short install/publish fences of an incremental
/// split), the figure the paper's §3.4 resize protocol exists to minimise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Structural expansions performed (e.g. one hot shard split in two).
    pub splits: u64,
    /// Structural contractions performed (e.g. two cold shards merged).
    pub merges: u64,
    /// Total nanoseconds writers were fenced out by structural changes.
    pub stall_ns: u64,
    /// Structural changes the load monitor's hysteresis suppressed because
    /// the triggering condition did not persist (split↔merge thrash).
    pub thrash_averted: u64,
    /// Chunk payloads copied because an in-place mutation found its version
    /// still pinned by a frozen snapshot (the copy-on-write slow path). Zero
    /// while no snapshot is live.
    pub cow_copies: u64,
    /// Write generations currently pinned by live frozen snapshots. A gauge
    /// (not a counter): `merge` sums it across composite backends, so for a
    /// sharded engine it reads as the total number of live per-shard pins.
    pub pinned_generations: u64,
    /// How many write generations the oldest live snapshot lags behind the
    /// current write generation (0 with no live snapshot). A gauge; `merge`
    /// sums it across inner instances, so composite backends report the
    /// aggregate staleness debt their snapshots are holding.
    pub snapshot_lag: u64,
    /// Chase rounds run by incremental structural changes (the sharded
    /// engine's delta-log splits): each round replays the ops that landed
    /// while the previous round was copying. Zero for backends without
    /// incremental maintenance.
    pub chase_rounds: u64,
    /// Times a writer had to wait because an incremental change's delta log
    /// was over capacity (backpressure on the chase protocol).
    pub delta_backpressure_waits: u64,
    /// How many epochs the oldest still-active reader lags behind the
    /// current reclamation epoch (0 when quiesced). A gauge; `merge` sums it
    /// across inner instances, like [`MaintenanceStats::snapshot_lag`].
    pub epoch_lag: u64,
}

impl MaintenanceStats {
    /// Element-wise accumulation (for composite backends).
    pub fn merge(&mut self, other: &MaintenanceStats) {
        self.splits += other.splits;
        self.merges += other.merges;
        self.stall_ns += other.stall_ns;
        self.thrash_averted += other.thrash_averted;
        self.cow_copies += other.cow_copies;
        self.pinned_generations += other.pinned_generations;
        self.snapshot_lag += other.snapshot_lag;
        self.chase_rounds += other.chase_rounds;
        self.delta_backpressure_waits += other.delta_backpressure_waits;
        self.epoch_lag += other.epoch_lag;
    }
}

impl MetricSource for MaintenanceStats {
    fn observe(&self, out: &mut dyn Observe) {
        out.counter("splits", self.splits);
        out.counter("merges", self.merges);
        out.counter("stall_ns", self.stall_ns);
        out.counter("thrash_averted", self.thrash_averted);
        out.counter("cow_copies", self.cow_copies);
        out.gauge("pinned_generations", self.pinned_generations as f64);
        out.gauge("snapshot_lag", self.snapshot_lag as f64);
        out.counter("chase_rounds", self.chase_rounds);
        out.counter("delta_backpressure_waits", self.delta_backpressure_waits);
        out.gauge("epoch_lag", self.epoch_lag as f64);
    }
}

/// A point-in-time, repeatable-reads view of a [`ConcurrentMap`], produced by
/// [`ConcurrentMap::frozen`].
///
/// Every read against the same view returns the same answer, no matter how
/// the live map mutates concurrently: the view holds reference-counted chunk
/// versions that writers copy instead of mutating (copy-on-write). The view
/// reflects the map's *settled* state at freeze time — operations still
/// travelling through combining queues become visible only to views frozen
/// after they settle, exactly as they become visible to live `get`/`len`.
pub trait FrozenView: Send + Sync {
    /// Looks up `key` in the frozen state.
    fn get(&self, key: Key) -> Option<Value>;

    /// Number of elements in the frozen state.
    fn len(&self) -> usize;

    /// Whether the frozen state is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every frozen element with key in `[lo, hi]` (inclusive) in
    /// ascending key order.
    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value));

    /// Scans every frozen element in ascending key order, folding into
    /// [`ScanStats`].
    fn scan_all(&self) -> ScanStats {
        self.scan_range(Key::MIN, Key::MAX)
    }

    /// Scans the frozen elements with key in `[lo, hi]` (inclusive), folding
    /// into [`ScanStats`]. An inverted range (`lo > hi`) is empty.
    fn scan_range(&self, lo: Key, hi: Key) -> ScanStats {
        let mut stats = ScanStats::default();
        if lo > hi {
            return stats;
        }
        self.range(lo, hi, &mut |key, value| stats.visit(key, value));
        stats
    }

    /// Materialises the frozen elements with key in `[lo, hi]` (inclusive)
    /// into a sorted vector.
    fn collect_range(&self, lo: Key, hi: Key) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        self.range(lo, hi, &mut |key, value| out.push((key, value)));
        out
    }
}

/// A thread-safe ordered map from [`Key`] to [`Value`].
///
/// Semantics follow the paper's workload: `insert` is an upsert (the paper's
/// generators never produce duplicate keys, but an upsert keeps the contract
/// total), `remove` deletes the key if present, scans visit elements in
/// ascending key order and observe some consistent-enough snapshot — the paper
/// allows scans to run concurrently with updates without snapshot isolation.
pub trait ConcurrentMap: Send + Sync {
    /// Inserts `key` with `value`, overwriting any previous value.
    fn insert(&self, key: Key, value: Value);

    /// Inserts `key` with `value` unless the structure is over capacity, in
    /// which case the op is **not** applied and a typed
    /// [`PmaError::Overloaded`] comes back instead of blocking. The default
    /// forwards to the infallible [`ConcurrentMap::insert`] (most structures
    /// never shed); admission-controlled front-ends — the thread-per-core
    /// router with a shed overload policy — override it so open-loop load
    /// generators can count sheds instead of self-throttling.
    fn try_insert(&self, key: Key, value: Value) -> Result<(), PmaError> {
        self.insert(key, value);
        Ok(())
    }

    /// Removes `key`, returning its value if it was present.
    fn remove(&self, key: Key) -> Option<Value>;

    /// Looks up `key`.
    fn get(&self, key: Key) -> Option<Value>;

    /// Number of elements currently stored.
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scans every element in ascending key order, folding into [`ScanStats`].
    fn scan_all(&self) -> ScanStats;

    /// Visits every element with key in `[lo, hi]` (inclusive) in ascending
    /// key order.
    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value));

    /// Scans every element with key in `[lo, hi]` (inclusive) in ascending
    /// key order, folding into [`ScanStats`]. An inverted range (`lo > hi`)
    /// is empty.
    ///
    /// The default implementation drives [`ConcurrentMap::range`];
    /// implementations with a cheaper ranged path (the concurrent PMA routes
    /// the scan through its static index straight to the first covering gate)
    /// override it.
    fn scan_range(&self, lo: Key, hi: Key) -> ScanStats {
        let mut stats = ScanStats::default();
        if lo > hi {
            return stats;
        }
        self.range(lo, hi, &mut |key, value| stats.visit(key, value));
        stats
    }

    /// Materialises every element with key in `[lo, hi]` (inclusive) into a
    /// sorted vector. This is the *ordered live-scan* used by copy-on-write
    /// structural changes (the sharded engine's incremental splits collect a
    /// shard's contents through it while writers keep landing): the stream
    /// must be strictly ascending even under concurrent updates, which every
    /// backend's `range` already guarantees.
    ///
    /// The default drives [`ConcurrentMap::range`] into an unsized vector;
    /// implementations that know their cardinality (the concurrent PMA) can
    /// override it to presize the allocation.
    fn collect_range(&self, lo: Key, hi: Key) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        self.range(lo, hi, &mut |key, value| out.push((key, value)));
        out
    }

    /// Collects one ordered *block* of the range `[lo, hi]` (inclusive):
    /// appends elements in ascending key order to `keys`/`values`, stopping
    /// at a structure-convenient boundary once at least `min_len` elements
    /// were appended. Returns `Some(next_lo)` when the block was cut early
    /// and the remainder of the range lives in `[next_lo, hi]`, or `None`
    /// when the range is exhausted.
    ///
    /// This is the refill primitive of block-at-a-time k-way merges (the
    /// sharded engine's cross-shard scans): merging whole sorted blocks
    /// lets the bulk run-copy kernels do the moving instead of per-element
    /// visitor calls. The default implementation collects the entire range
    /// in one block via [`ConcurrentMap::range`]; structures with a natural
    /// block granularity (the concurrent PMA cuts at gate boundaries)
    /// override it.
    fn collect_block(
        &self,
        lo: Key,
        hi: Key,
        min_len: usize,
        keys: &mut Vec<Key>,
        values: &mut Vec<Value>,
    ) -> Option<Key> {
        let _ = min_len;
        if lo > hi {
            return None;
        }
        self.range(lo, hi, &mut |key, value| {
            keys.push(key);
            values.push(value);
        });
        None
    }

    /// Inserts every pair of `items` (upsert semantics, later entries win on
    /// duplicate keys).
    ///
    /// The default implementation issues the insertions one by one;
    /// implementations with a native batch path (the concurrent PMA merges
    /// per-gate runs through its asynchronous-update machinery) override it.
    fn insert_batch(&self, items: &[(Key, Value)]) {
        for &(key, value) in items {
            self.insert(key, value);
        }
    }

    /// Builds a structure pre-populated with `items`, which must be sorted by
    /// key in non-decreasing order (the last entry wins on duplicate keys).
    ///
    /// This is the classic bulk-load constructor every PMA/CSR system ships:
    /// because the input is already ordered, an implementation can lay out its
    /// final shape in one pass instead of trickling keys through the point
    /// -insert path — the concurrent PMA, for instance, presizes the array
    /// from its calibrated density bounds and performs **zero rebalances**
    /// during the load. The default implementation is the portable fallback:
    /// construct [`Default`], [`ConcurrentMap::insert_batch`] the items and
    /// [`ConcurrentMap::flush`]. Unsorted input is rejected with
    /// [`PmaError::InvalidParameter`].
    ///
    /// Parameterised construction (custom configs, registry `name:arg` specs)
    /// goes through `Registry::build_loaded` in [`crate::registry`] instead,
    /// which dispatches to each backend's native loader.
    fn from_sorted(items: &[(Key, Value)]) -> Result<Self, PmaError>
    where
        Self: Sized + Default,
    {
        check_sorted(items)?;
        let map = Self::default();
        map.insert_batch(items);
        map.flush();
        Ok(map)
    }

    /// Waits until all asynchronously accepted updates have been applied.
    ///
    /// The concurrent PMA's asynchronous update modes may defer operations to
    /// other writers or to the rebalancer service; the workload drivers call
    /// this before validating the final contents. Synchronous structures need
    /// not override the default no-op.
    fn flush(&self) {}

    /// Combining-queue counters, for backends that defer updates through
    /// combining machinery (see [`CombiningStats`]). Structures without such
    /// machinery return `None` (the default) and the harness renders a dash.
    fn combining_stats(&self) -> Option<CombiningStats> {
        None
    }

    /// Structural-maintenance counters, for backends that reorganise
    /// themselves in the background (see [`MaintenanceStats`]) — the sharded
    /// engine reports its splits/merges and the write-stall they caused.
    /// Structures without background maintenance return `None` (the default)
    /// and the harness renders a dash.
    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        None
    }

    /// Takes an O(1) point-in-time snapshot with repeatable reads, or `None`
    /// for backends without snapshot support (the default). The returned
    /// [`FrozenView`] stays consistent while writers keep mutating the live
    /// map: mutations copy any chunk the view still pins (copy-on-write)
    /// instead of changing it underneath the view.
    fn frozen(&self) -> Option<Box<dyn FrozenView>> {
        None
    }

    /// Emits the structure's live metrics into an [`Observe`] sink — the
    /// hook the observability layer's registry and the drivers' interval
    /// samplers collect through. The default derives everything from
    /// [`ConcurrentMap::combining_stats`] and
    /// [`ConcurrentMap::maintenance_stats`]; backends with richer internal
    /// state (the concurrent PMA's combining-queue depth, the sharded
    /// engine's per-shard breakdown) override it and add their own gauges.
    fn observe_metrics(&self, out: &mut dyn Observe) {
        if let Some(combining) = self.combining_stats() {
            combining.observe(out);
        }
        if let Some(maintenance) = self.maintenance_stats() {
            maintenance.observe(out);
        }
    }

    /// Short human-readable name used in benchmark tables.
    fn name(&self) -> &'static str;
}

/// Blanket implementation so `Arc<T>`, `Box<T>` and references can be passed
/// wherever a [`ConcurrentMap`] is expected.
impl<M: ConcurrentMap + ?Sized> ConcurrentMap for std::sync::Arc<M> {
    fn insert(&self, key: Key, value: Value) {
        (**self).insert(key, value)
    }
    fn try_insert(&self, key: Key, value: Value) -> Result<(), PmaError> {
        (**self).try_insert(key, value)
    }
    fn remove(&self, key: Key) -> Option<Value> {
        (**self).remove(key)
    }
    fn get(&self, key: Key) -> Option<Value> {
        (**self).get(key)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn scan_all(&self) -> ScanStats {
        (**self).scan_all()
    }
    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        (**self).range(lo, hi, visitor)
    }
    fn scan_range(&self, lo: Key, hi: Key) -> ScanStats {
        (**self).scan_range(lo, hi)
    }
    fn collect_range(&self, lo: Key, hi: Key) -> Vec<(Key, Value)> {
        (**self).collect_range(lo, hi)
    }
    fn collect_block(
        &self,
        lo: Key,
        hi: Key,
        min_len: usize,
        keys: &mut Vec<Key>,
        values: &mut Vec<Value>,
    ) -> Option<Key> {
        (**self).collect_block(lo, hi, min_len, keys, values)
    }
    fn insert_batch(&self, items: &[(Key, Value)]) {
        (**self).insert_batch(items)
    }
    fn flush(&self) {
        (**self).flush()
    }
    fn combining_stats(&self) -> Option<CombiningStats> {
        (**self).combining_stats()
    }
    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        (**self).maintenance_stats()
    }
    fn frozen(&self) -> Option<Box<dyn FrozenView>> {
        (**self).frozen()
    }
    fn observe_metrics(&self, out: &mut dyn Observe) {
        (**self).observe_metrics(out)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially-correct reference structure exercising the trait defaults.
    #[derive(Default)]
    struct ModelMap {
        inner: std::sync::Mutex<std::collections::BTreeMap<Key, Value>>,
    }

    impl ConcurrentMap for ModelMap {
        fn insert(&self, key: Key, value: Value) {
            self.inner.lock().unwrap().insert(key, value);
        }
        fn remove(&self, key: Key) -> Option<Value> {
            self.inner.lock().unwrap().remove(&key)
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.inner.lock().unwrap().get(&key).copied()
        }
        fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }
        fn scan_all(&self) -> ScanStats {
            self.scan_range(Key::MIN, Key::MAX)
        }
        fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
            if lo > hi {
                return;
            }
            for (&k, &v) in self.inner.lock().unwrap().range(lo..=hi) {
                visitor(k, v);
            }
        }
        fn name(&self) -> &'static str {
            "model"
        }
    }

    #[test]
    fn default_scan_range_folds_the_range() {
        let map = ModelMap::default();
        for k in 0..10 {
            map.insert(k, k * 10);
        }
        let stats = map.scan_range(3, 5);
        assert_eq!(stats.count, 3);
        assert_eq!(stats.key_sum, 12);
        assert_eq!(stats.value_sum, 120);
        assert_eq!(map.scan_range(7, 3), ScanStats::default());
    }

    #[test]
    fn default_collect_range_is_sorted_and_bounded() {
        let map = ModelMap::default();
        for k in [5, 1, 9, 3, 7] {
            map.insert(k, k * 10);
        }
        assert_eq!(map.collect_range(3, 7), vec![(3, 30), (5, 50), (7, 70)]);
        assert_eq!(
            map.collect_range(Key::MIN, Key::MAX).len(),
            5,
            "full range collects everything"
        );
        assert!(
            map.collect_range(7, 3).is_empty(),
            "inverted range is empty"
        );
    }

    #[test]
    fn maintenance_stats_default_is_none_and_merge_accumulates() {
        let map = ModelMap::default();
        assert!(map.maintenance_stats().is_none());
        let mut a = MaintenanceStats {
            splits: 1,
            merges: 2,
            stall_ns: 30,
            thrash_averted: 4,
            cow_copies: 5,
            pinned_generations: 6,
            snapshot_lag: 7,
            chase_rounds: 8,
            delta_backpressure_waits: 9,
            epoch_lag: 1,
        };
        a.merge(&MaintenanceStats {
            splits: 10,
            merges: 20,
            stall_ns: 300,
            thrash_averted: 40,
            cow_copies: 50,
            pinned_generations: 60,
            snapshot_lag: 70,
            chase_rounds: 80,
            delta_backpressure_waits: 90,
            epoch_lag: 10,
        });
        assert_eq!(
            a,
            MaintenanceStats {
                splits: 11,
                merges: 22,
                stall_ns: 330,
                thrash_averted: 44,
                cow_copies: 55,
                pinned_generations: 66,
                snapshot_lag: 77,
                chase_rounds: 88,
                delta_backpressure_waits: 99,
                epoch_lag: 11,
            }
        );
    }

    #[test]
    fn stats_observe_into_metrics_sink() {
        use pma_obs::metrics::Observations;
        let mut obs = Observations::with_prefix("m");
        MaintenanceStats {
            splits: 1,
            cow_copies: 5,
            snapshot_lag: 7,
            chase_rounds: 8,
            delta_backpressure_waits: 9,
            epoch_lag: 2,
            ..MaintenanceStats::default()
        }
        .observe(&mut obs);
        CombiningStats {
            owned_applies: 3,
            late_replays: 0,
        }
        .observe(&mut obs);
        let snap = obs.into_snapshot();
        assert_eq!(snap.counter("m_cow_copies"), Some(5));
        assert_eq!(snap.counter("m_chase_rounds"), Some(8));
        assert_eq!(snap.counter("m_delta_backpressure_waits"), Some(9));
        assert_eq!(snap.value("m_snapshot_lag"), Some(7.0));
        assert_eq!(snap.value("m_epoch_lag"), Some(2.0));
        assert_eq!(snap.counter("m_owned_applies"), Some(3));
    }

    #[test]
    fn frozen_default_is_none_and_view_defaults_fold_range() {
        let map = ModelMap::default();
        assert!(map.frozen().is_none());

        /// A fixed view exercising the `FrozenView` default methods.
        struct FixedView(Vec<(Key, Value)>);
        impl FrozenView for FixedView {
            fn get(&self, key: Key) -> Option<Value> {
                self.0
                    .binary_search_by_key(&key, |&(k, _)| k)
                    .ok()
                    .map(|i| self.0[i].1)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
                for &(k, v) in self.0.iter().filter(|&&(k, _)| k >= lo && k <= hi) {
                    visitor(k, v);
                }
            }
        }

        let view = FixedView(vec![(1, 10), (3, 30), (5, 50)]);
        assert!(!view.is_empty());
        assert_eq!(view.scan_all().count, 3);
        assert_eq!(view.scan_range(2, 4).key_sum, 3);
        assert_eq!(view.scan_range(4, 2), ScanStats::default());
        assert_eq!(view.collect_range(3, 9), vec![(3, 30), (5, 50)]);
        let boxed: Box<dyn FrozenView> = Box::new(view);
        assert_eq!(boxed.get(5), Some(50));
    }

    #[test]
    fn default_insert_batch_upserts_in_order() {
        let map = ModelMap::default();
        map.insert_batch(&[(1, 10), (2, 20), (1, 11)]);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(1), Some(11), "later duplicates must win");
        let arc = std::sync::Arc::new(map);
        arc.insert_batch(&[(3, 30)]);
        assert_eq!(arc.scan_range(1, 3).count, 3);
    }

    #[test]
    fn check_sorted_accepts_runs_and_names_the_violation() {
        assert!(check_sorted(&[]).is_ok());
        assert!(check_sorted(&[(1, 0)]).is_ok());
        assert!(check_sorted(&[(1, 0), (1, 1), (2, 0)]).is_ok());
        let err = check_sorted(&[(1, 0), (3, 0), (2, 0)]).unwrap_err();
        assert!(err.to_string().contains("items[1]"), "{err}");
    }

    #[test]
    fn dedup_sorted_keeps_last_duplicate() {
        assert_eq!(
            dedup_sorted_last_wins(&[(1, 10), (1, 11), (2, 20), (2, 21), (3, 30)]),
            vec![(1, 11), (2, 21), (3, 30)]
        );
        assert!(dedup_sorted_last_wins(&[]).is_empty());
    }

    #[test]
    fn default_from_sorted_loads_and_rejects_unsorted() {
        let map = ModelMap::from_sorted(&[(1, 10), (2, 20), (2, 22), (5, 50)]).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(2), Some(22), "later duplicates must win");
        assert_eq!(map.scan_all().count, 3);
        assert!(ModelMap::from_sorted(&[(2, 0), (1, 0)]).is_err());
    }

    #[test]
    fn scan_stats_visit_accumulates() {
        let mut s = ScanStats::default();
        s.visit(1, 10);
        s.visit(2, 20);
        assert_eq!(s.count, 2);
        assert_eq!(s.key_sum, 3);
        assert_eq!(s.value_sum, 30);
    }

    #[test]
    fn scan_stats_merge() {
        let mut a = ScanStats::default();
        a.visit(1, 1);
        let mut b = ScanStats::default();
        b.visit(2, 2);
        b.visit(3, 3);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.key_sum, 6);
        assert_eq!(a.value_sum, 6);
    }

    #[test]
    fn scan_stats_handles_negative_keys() {
        let mut s = ScanStats::default();
        s.visit(-5, -10);
        s.visit(5, 10);
        assert_eq!(s.key_sum, 0);
        assert_eq!(s.value_sum, 0);
        assert_eq!(s.count, 2);
    }
}
