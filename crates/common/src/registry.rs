//! String-addressable registry of [`ConcurrentMap`] backends.
//!
//! Every data structure evaluated in the workspace registers itself here as a
//! `(name, description, labeler, builder)` entry; consumers — the workload
//! drivers, the `fig3`/`fig4`/`ablation` experiment binaries, the Criterion
//! benches, the examples and the cross-structure tests — construct instances
//! exclusively through [`Registry::build`] with a *backend spec* string.
//! Adding a new structure (or a new ablation of an existing one) is therefore
//! one `register` call at startup, not a new enum variant matched across
//! crates.
//!
//! # Spec-string grammar
//!
//! A spec is one token of the form
//!
//! ```text
//! spec    ::=  name [ ":" arg ]
//! name    ::=  registered backend name (no ":")
//! arg     ::=  backend-specific argument, uninterpreted by the registry
//! ```
//!
//! `name` — everything before the **first** `:` — selects the registered
//! entry; the optional `arg` (everything after that `:`, so it may itself
//! contain colons) parameterises it. The registry never interprets the
//! argument: each backend parses it in its `build`/`label` functions and
//! documents the accepted values in its `description` (the experiment
//! binaries print those with `--help`). Whitespace around the two parts is
//! trimmed. Examples from the built-in set:
//!
//! * `"pma-batch:100"` — concurrent PMA, batch asynchronous updates with a
//!   `t_delay` of 100 ms (the paper's headline configuration);
//! * `"pma-sync"` — the synchronous-update PMA (Figure 4's baseline);
//! * `"btree:8k"` — the lock-coupled B+-tree with 8 KiB leaves (section 4.1
//!   ablation);
//! * `"masstree"` — the Masstree-like write-optimised tree.
//!
//! # Registration
//!
//! Provider crates expose a `register_backends(&Registry)` function (see
//! `pma_core` and `pma_baselines`); the workload factory installs the
//! built-in set into [`Registry::global`] exactly once. Downstream code —
//! including tests and examples — can register additional backends directly:
//!
//! ```
//! use std::sync::Arc;
//! use pma_common::registry::{BackendDef, BackendSpec, Registry};
//!
//! let registry = Registry::new();
//! registry.register(BackendDef {
//!     name: "null",
//!     description: "discards everything (demo)",
//!     label: |spec| format!("Null[{}]", spec.raw),
//!     build: |_registry, _spec| Err(pma_common::PmaError::NotFound("demo only".into())),
//!     build_loaded: None,
//! });
//! assert!(registry.contains("null"));
//! assert_eq!(registry.label("null:x").unwrap(), "Null[null:x]");
//! ```
//!
//! # Bulk loading (`build_loaded`)
//!
//! [`Registry::build_loaded`] constructs a backend *pre-populated* with a
//! sorted run of key/value pairs. Dispatch works like [`Registry::build`],
//! with one extra step: if the entry registered a native loader
//! ([`BackendDef::build_loaded`]), the sorted run is handed to it so the
//! backend can lay out its final shape in one pass (the concurrent PMA
//! presizes the array from its calibrated density bounds and performs zero
//! rebalances; the B+-tree builds its leaf level bottom-up; and so on).
//! Entries without a native loader fall back to `build` followed by
//! [`crate::map::ConcurrentMap::insert_batch`] + `flush`, so every backend is
//! loadable either way. The input contract (ascending keys, duplicates
//! resolve to the last entry) is validated once, up front.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::bytemap::ConcurrentByteMap;
use crate::error::PmaError;
use crate::map::{check_sorted, ConcurrentMap};
use crate::types::{Key, Value};

/// A parsed backend spec string: `name` or `name:arg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendSpec<'a> {
    /// The spec as written (for labels and error messages).
    pub raw: &'a str,
    /// The registry entry name (everything before the first `:`).
    pub name: &'a str,
    /// The backend-specific argument (everything after the first `:`).
    pub arg: Option<&'a str>,
}

impl<'a> BackendSpec<'a> {
    /// Splits `raw` at the first `:` into name and argument.
    pub fn parse(raw: &'a str) -> Self {
        match raw.split_once(':') {
            Some((name, arg)) => Self {
                raw,
                name: name.trim(),
                arg: Some(arg.trim()),
            },
            None => Self {
                raw,
                name: raw.trim(),
                arg: None,
            },
        }
    }

    /// Parses the argument as a `u64`, with a default when absent.
    pub fn u64_arg(&self, default: u64) -> Result<u64, PmaError> {
        match self.arg {
            None => Ok(default),
            Some(arg) => arg.parse().map_err(|_| {
                PmaError::invalid(
                    "backend_spec",
                    format!("`{}`: argument `{arg}` is not an integer", self.raw),
                )
            }),
        }
    }
}

/// Builds one backend instance from a parsed spec.
///
/// The first argument is the **dispatching registry** — the one whose
/// `build` resolved the spec. Simple backends ignore it; composite backends
/// (e.g. the range-sharded engine, whose argument names an *inner* spec)
/// resolve their constituent specs against it, so a backend set registered
/// into a local [`Registry`] composes without reaching for
/// [`Registry::global`].
pub type BuildFn = fn(&Registry, &BackendSpec<'_>) -> Result<Arc<dyn ConcurrentMap>, PmaError>;

/// Renders the display label (matching the paper's figures) for a spec.
pub type LabelFn = fn(&BackendSpec<'_>) -> String;

/// Builds one backend instance pre-populated with a sorted run of pairs.
/// The first argument is the dispatching registry, as for [`BuildFn`].
///
/// The registry guarantees the keys are in non-decreasing order
/// ([`check_sorted`] runs before dispatch) but duplicates may still be
/// present: the loader is responsible for resolving them to the **last**
/// entry (use [`crate::map::dedup_sorted_last_wins`]), matching
/// `insert_batch` upsert semantics.
pub type LoadFn =
    fn(&Registry, &BackendSpec<'_>, &[(Key, Value)]) -> Result<Arc<dyn ConcurrentMap>, PmaError>;

/// One registered backend.
#[derive(Clone, Copy)]
pub struct BackendDef {
    /// Registry name, the part of a spec before `:`.
    pub name: &'static str,
    /// Human-readable description, including the accepted argument.
    pub description: &'static str,
    /// Display-label renderer.
    pub label: LabelFn,
    /// Instance builder.
    pub build: BuildFn,
    /// Native bulk loader used by [`Registry::build_loaded`]; `None` falls
    /// back to `build` + `insert_batch`.
    pub build_loaded: Option<LoadFn>,
}

impl std::fmt::Debug for BackendDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendDef")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish()
    }
}

/// Builds one byte-keyed backend instance from a parsed spec (the
/// [`ConcurrentByteMap`] counterpart of [`BuildFn`]). The first argument is
/// the dispatching registry, so composite byte backends (`bsharded`) and
/// adapters over u64 backends (`b64`) resolve inner specs against it.
pub type ByteBuildFn =
    fn(&Registry, &BackendSpec<'_>) -> Result<Arc<dyn ConcurrentByteMap>, PmaError>;

/// Builds one byte-keyed backend pre-populated with a sorted run (the
/// [`ConcurrentByteMap`] counterpart of [`LoadFn`]). Keys arrive in
/// non-decreasing order; duplicates resolve to the last entry (use
/// [`crate::bytemap::dedup_sorted_bytes_last_wins`]).
pub type ByteLoadFn = fn(
    &Registry,
    &BackendSpec<'_>,
    &[(Vec<u8>, Value)],
) -> Result<Arc<dyn ConcurrentByteMap>, PmaError>;

/// One registered byte-keyed backend.
///
/// Byte backends live in a table *parallel* to the u64 [`BackendDef`] set —
/// same spec grammar, separate namespace — so the existing u64 surface
/// (every spec, test, and bench iterating [`Registry::names`]) is untouched
/// by the byte-key generalisation.
#[derive(Clone, Copy)]
pub struct ByteBackendDef {
    /// Registry name, the part of a spec before `:`.
    pub name: &'static str,
    /// Human-readable description, including the accepted argument.
    pub description: &'static str,
    /// Display-label renderer.
    pub label: LabelFn,
    /// Instance builder.
    pub build: ByteBuildFn,
    /// Native bulk loader used by [`Registry::build_bytes_loaded`]; `None`
    /// falls back to `build` + `insert_batch`.
    pub build_loaded: Option<ByteLoadFn>,
}

impl std::fmt::Debug for ByteBackendDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteBackendDef")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish()
    }
}

/// A set of named backends, addressable by spec string.
///
/// Holds two parallel tables: the original u64-keyed [`BackendDef`] entries
/// and the byte-keyed [`ByteBackendDef`] entries (`bpma`, `bbtree`,
/// `bsharded`, `b64`, …), dispatched through `build`/`build_loaded` and
/// `build_bytes`/`build_bytes_loaded` respectively.
#[derive(Debug, Default)]
pub struct Registry {
    entries: RwLock<BTreeMap<&'static str, BackendDef>>,
    byte_entries: RwLock<BTreeMap<&'static str, ByteBackendDef>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry used by the experiment harness.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Registers (or replaces) a backend definition.
    pub fn register(&self, def: BackendDef) {
        self.entries
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(def.name, def);
    }

    /// Whether a backend with `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(name)
    }

    /// Names of all registered backends, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .map(|n| n.to_string())
            .collect()
    }

    /// `(name, description)` of every registered backend, sorted by name.
    pub fn entries(&self) -> Vec<(String, String)> {
        self.entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|d| (d.name.to_string(), d.description.to_string()))
            .collect()
    }

    fn lookup(&self, spec: &BackendSpec<'_>) -> Result<BackendDef, PmaError> {
        self.entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(spec.name)
            .copied()
            .ok_or_else(|| {
                PmaError::NotFound(format!(
                    "backend `{}` (from spec `{}`); registered: {}",
                    spec.name,
                    spec.raw,
                    self.names().join(", ")
                ))
            })
    }

    /// The display label for `spec` (e.g. `"pma-batch:100"` → "PMA Batch
    /// 100ms"), matching the paper's figures.
    pub fn label(&self, spec: &str) -> Result<String, PmaError> {
        let spec = BackendSpec::parse(spec);
        Ok((self.lookup(&spec)?.label)(&spec))
    }

    /// The registered definition resolving `spec`, for callers that need to
    /// capture a backend's constructors (e.g. a composite backend resolving
    /// its inner structure once, at its own construction time).
    pub fn definition(&self, spec: &str) -> Result<BackendDef, PmaError> {
        self.lookup(&BackendSpec::parse(spec))
    }

    /// Builds a fresh instance of the backend selected by `spec`, passing
    /// `self` as the dispatching registry (see [`BuildFn`]).
    pub fn build(&self, spec: &str) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
        let spec = BackendSpec::parse(spec);
        (self.lookup(&spec)?.build)(self, &spec)
    }

    /// Builds an instance of the backend selected by `spec`, pre-populated
    /// with `items` (which must be sorted by key in non-decreasing order;
    /// the last entry wins on duplicate keys).
    ///
    /// Dispatches to the backend's native [`BackendDef::build_loaded`] when
    /// one is registered — the bulk-load fast path — and otherwise falls back
    /// to [`Registry::build`] followed by
    /// [`ConcurrentMap::insert_batch`] and [`ConcurrentMap::flush`]. Unsorted
    /// input is rejected with [`PmaError::InvalidParameter`] before any
    /// construction happens.
    pub fn build_loaded(
        &self,
        spec: &str,
        items: &[(Key, Value)],
    ) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
        check_sorted(items)?;
        let spec = BackendSpec::parse(spec);
        let def = self.lookup(&spec)?;
        match def.build_loaded {
            Some(load) => load(self, &spec, items),
            None => {
                let map = (def.build)(self, &spec)?;
                map.insert_batch(items);
                map.flush();
                Ok(map)
            }
        }
    }

    // -----------------------------------------------------------------
    // Byte-keyed backends (parallel table)
    // -----------------------------------------------------------------

    /// Registers (or replaces) a byte-keyed backend definition.
    pub fn register_bytes(&self, def: ByteBackendDef) {
        self.byte_entries
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(def.name, def);
    }

    /// Whether a byte-keyed backend with `name` is registered.
    pub fn contains_bytes(&self, name: &str) -> bool {
        self.byte_entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(name)
    }

    /// Names of all registered byte-keyed backends, sorted.
    pub fn byte_names(&self) -> Vec<String> {
        self.byte_entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .map(|n| n.to_string())
            .collect()
    }

    /// `(name, description)` of every registered byte-keyed backend, sorted
    /// by name.
    pub fn byte_entries(&self) -> Vec<(String, String)> {
        self.byte_entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|d| (d.name.to_string(), d.description.to_string()))
            .collect()
    }

    fn lookup_bytes(&self, spec: &BackendSpec<'_>) -> Result<ByteBackendDef, PmaError> {
        self.byte_entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(spec.name)
            .copied()
            .ok_or_else(|| {
                PmaError::NotFound(format!(
                    "byte backend `{}` (from spec `{}`); registered: {}",
                    spec.name,
                    spec.raw,
                    self.byte_names().join(", ")
                ))
            })
    }

    /// The display label for a byte-backend `spec`.
    pub fn byte_label(&self, spec: &str) -> Result<String, PmaError> {
        let spec = BackendSpec::parse(spec);
        Ok((self.lookup_bytes(&spec)?.label)(&spec))
    }

    /// Builds a fresh byte-keyed backend selected by `spec`, passing `self`
    /// as the dispatching registry (see [`ByteBuildFn`]).
    pub fn build_bytes(&self, spec: &str) -> Result<Arc<dyn ConcurrentByteMap>, PmaError> {
        let spec = BackendSpec::parse(spec);
        (self.lookup_bytes(&spec)?.build)(self, &spec)
    }

    /// Builds a byte-keyed backend pre-populated with `items` (sorted by key
    /// in non-decreasing byte order; the last entry wins on duplicates).
    ///
    /// Dispatches to the entry's native [`ByteBackendDef::build_loaded`] when
    /// registered, and otherwise falls back to [`Registry::build_bytes`]
    /// followed by `insert_batch` + `flush`.
    pub fn build_bytes_loaded(
        &self,
        spec: &str,
        items: &[(Vec<u8>, Value)],
    ) -> Result<Arc<dyn ConcurrentByteMap>, PmaError> {
        for pair in items.windows(2) {
            if pair[0].0 > pair[1].0 {
                return Err(PmaError::invalid(
                    "items",
                    "bulk-load input must be sorted by key in non-decreasing byte order"
                        .to_string(),
                ));
            }
        }
        let spec = BackendSpec::parse(spec);
        let def = self.lookup_bytes(&spec)?;
        match def.build_loaded {
            Some(load) => load(self, &spec, items),
            None => {
                let map = (def.build)(self, &spec)?;
                map.insert_batch(items);
                map.flush();
                Ok(map)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ScanStats;
    use crate::types::{Key, Value};

    #[derive(Default)]
    struct Dummy(std::sync::Mutex<std::collections::BTreeMap<Key, Value>>);

    impl ConcurrentMap for Dummy {
        fn insert(&self, key: Key, value: Value) {
            self.0.lock().unwrap().insert(key, value);
        }
        fn remove(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().remove(&key)
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
        fn scan_all(&self) -> ScanStats {
            self.scan_range(Key::MIN, Key::MAX)
        }
        fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
            if lo > hi {
                return;
            }
            for (&k, &v) in self.0.lock().unwrap().range(lo..=hi) {
                visitor(k, v);
            }
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
    }

    fn dummy_def() -> BackendDef {
        BackendDef {
            name: "dummy",
            description: "test backend; arg = ignored",
            label: |spec| match spec.arg {
                Some(arg) => format!("Dummy {arg}"),
                None => "Dummy".to_string(),
            },
            build: |_, _| Ok(Arc::new(Dummy::default())),
            build_loaded: None,
        }
    }

    #[test]
    fn parse_splits_on_first_colon() {
        let spec = BackendSpec::parse("pma-batch:100");
        assert_eq!(spec.name, "pma-batch");
        assert_eq!(spec.arg, Some("100"));
        let spec = BackendSpec::parse("masstree");
        assert_eq!(spec.name, "masstree");
        assert_eq!(spec.arg, None);
        let spec = BackendSpec::parse("a:b:c");
        assert_eq!(spec.name, "a");
        assert_eq!(spec.arg, Some("b:c"));
    }

    #[test]
    fn u64_arg_parses_with_default() {
        assert_eq!(BackendSpec::parse("x").u64_arg(7).unwrap(), 7);
        assert_eq!(BackendSpec::parse("x:42").u64_arg(7).unwrap(), 42);
        assert!(BackendSpec::parse("x:no").u64_arg(7).is_err());
    }

    #[test]
    fn register_build_label_roundtrip() {
        let registry = Registry::new();
        registry.register(dummy_def());
        assert!(registry.contains("dummy"));
        assert_eq!(registry.names(), vec!["dummy".to_string()]);
        assert_eq!(registry.label("dummy:8k").unwrap(), "Dummy 8k");
        let map = registry.build("dummy").unwrap();
        map.insert(1, 2);
        assert_eq!(map.get(1), Some(2));
    }

    #[test]
    fn unknown_backend_lists_registered_names() {
        let registry = Registry::new();
        registry.register(dummy_def());
        let msg = match registry.build("nope:1") {
            Ok(_) => panic!("unknown backend must not build"),
            Err(e) => e.to_string(),
        };
        assert!(msg.contains("nope"), "{msg}");
        assert!(msg.contains("dummy"), "{msg}");
    }

    #[test]
    fn re_registering_replaces() {
        let registry = Registry::new();
        registry.register(dummy_def());
        registry.register(BackendDef {
            description: "replacement",
            ..dummy_def()
        });
        assert_eq!(registry.entries()[0].1, "replacement");
        assert_eq!(registry.entries().len(), 1);
    }

    #[test]
    fn build_loaded_falls_back_to_insert_batch() {
        let registry = Registry::new();
        registry.register(dummy_def());
        let map = registry
            .build_loaded("dummy", &[(1, 10), (2, 20), (2, 22)])
            .unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(2), Some(22), "later duplicates must win");
        assert!(
            registry.build_loaded("dummy", &[(5, 0), (1, 0)]).is_err(),
            "unsorted input must be rejected"
        );
    }

    #[test]
    fn build_loaded_prefers_the_native_loader() {
        let registry = Registry::new();
        registry.register(BackendDef {
            build_loaded: Some(|_, _, items| {
                let map = Dummy::default();
                // A native loader that deliberately tags the first value so
                // the test can tell which path ran.
                for &(k, v) in items {
                    map.insert(k, v + 1000);
                }
                Ok(Arc::new(map))
            }),
            ..dummy_def()
        });
        let map = registry.build_loaded("dummy", &[(7, 70)]).unwrap();
        assert_eq!(map.get(7), Some(1070), "native loader must be dispatched");
    }

    #[derive(Default)]
    struct ByteDummy(std::sync::Mutex<std::collections::BTreeMap<Vec<u8>, Value>>);

    impl crate::bytemap::ConcurrentByteMap for ByteDummy {
        fn insert(&self, key: &[u8], value: Value) {
            self.0.lock().unwrap().insert(key.to_vec(), value);
        }
        fn remove(&self, key: &[u8]) -> Option<Value> {
            self.0.lock().unwrap().remove(key)
        }
        fn get(&self, key: &[u8]) -> Option<Value> {
            self.0.lock().unwrap().get(key).copied()
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
        fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
            for (k, &v) in self.0.lock().unwrap().iter() {
                if k.as_slice() >= lo && hi.is_none_or(|h| k.as_slice() < h) {
                    visitor(k, v);
                }
            }
        }
        fn name(&self) -> &'static str {
            "byte-dummy"
        }
    }

    fn byte_dummy_def() -> ByteBackendDef {
        ByteBackendDef {
            name: "byte-dummy",
            description: "test byte backend; arg = ignored",
            label: |spec| format!("ByteDummy[{}]", spec.raw),
            build: |_, _| Ok(Arc::new(ByteDummy::default())),
            build_loaded: None,
        }
    }

    #[test]
    fn byte_table_is_a_separate_namespace() {
        let registry = Registry::new();
        registry.register(dummy_def());
        registry.register_bytes(byte_dummy_def());
        // The u64 surface does not see the byte entry and vice versa.
        assert_eq!(registry.names(), vec!["dummy".to_string()]);
        assert_eq!(registry.byte_names(), vec!["byte-dummy".to_string()]);
        assert!(!registry.contains("byte-dummy"));
        assert!(!registry.contains_bytes("dummy"));
        assert!(registry.build("byte-dummy").is_err());
        assert!(registry.build_bytes("dummy").is_err());
        assert_eq!(
            registry.byte_label("byte-dummy:x").unwrap(),
            "ByteDummy[byte-dummy:x]"
        );
        assert_eq!(registry.byte_entries().len(), 1);
    }

    #[test]
    fn build_bytes_roundtrips_point_ops() {
        let registry = Registry::new();
        registry.register_bytes(byte_dummy_def());
        let map = registry.build_bytes("byte-dummy").unwrap();
        map.insert(b"user:1", 10);
        assert_eq!(map.get(b"user:1"), Some(10));
        assert_eq!(map.remove(b"user:1"), Some(10));
        assert!(map.is_empty());
    }

    #[test]
    fn build_bytes_loaded_falls_back_and_validates_order() {
        let registry = Registry::new();
        registry.register_bytes(byte_dummy_def());
        let map = registry
            .build_bytes_loaded(
                "byte-dummy",
                &[(b"a".to_vec(), 1), (b"b".to_vec(), 2), (b"b".to_vec(), 3)],
            )
            .unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(b"b"), Some(3), "later duplicates must win");
        assert!(
            registry
                .build_bytes_loaded("byte-dummy", &[(b"b".to_vec(), 1), (b"a".to_vec(), 2)])
                .is_err(),
            "unsorted byte input must be rejected"
        );
    }

    #[test]
    fn global_registry_is_shared() {
        // Use a unique name so other tests' registrations don't interfere.
        Registry::global().register(BackendDef {
            name: "registry-test-unique",
            ..dummy_def()
        });
        assert!(Registry::global().contains("registry-test-unique"));
    }
}
