//! Hand-rolled hot-path kernels: vectorised search over small sorted key
//! runs, bulk run copies, and cache-line-aligned key layouts.
//!
//! The structures of this workspace (PMA segments, gate chunks, the static
//! index, the shard directory) all route probes through short sorted `i64`
//! runs — exactly the shape where a branchless compare-and-popcount beats a
//! branchy binary search. The build environment has no crates.io access, so
//! the kernels are written directly against `core::arch`:
//!
//! * **AVX2** (x86_64, runtime-detected): 4 keys per compare.
//! * **SSE2** (x86_64 baseline, always available): 2 keys per compare, with
//!   the classic sign-select emulation of the missing 64-bit compare.
//! * **NEON** (aarch64 baseline): 2 keys per compare.
//! * **Scalar** fallback (every other target, and `PMA_FORCE_SCALAR=1`).
//!
//! Dispatch is resolved **once per process** ([`active_variant`]): runs
//! detect CPU features at startup, and setting the environment variable
//! `PMA_FORCE_SCALAR=1` pins the scalar fallback for debugging and for the
//! CI job that keeps that path covered. Every kernel is defined to be
//! bit-identical to its scalar twin on sorted input (duplicates, empty runs
//! and `i64::MIN`/`MAX` boundaries included) — property-tested in
//! `tests/simd_kernels.rs`.
//!
//! Long runs use a hybrid: a scalar binary search narrows the window to at
//! most [`SMALL_RUN`] elements, then the vector kernel counts the remainder
//! branchlessly, so the kernels stay cheap on both 8-element segment runs
//! and multi-thousand-entry separator arrays.

use crate::types::Key;
use std::sync::atomic::{AtomicI64, AtomicU8, Ordering};

/// Window size below which the count is fully vectorised; above it a scalar
/// binary search narrows the window first.
pub const SMALL_RUN: usize = 64;

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// The kernel implementation selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// AVX2 (x86_64, runtime-detected).
    Avx2,
    /// SSE2 (x86_64 compile-time baseline).
    Sse2,
    /// NEON (aarch64 compile-time baseline).
    Neon,
    /// Portable scalar fallback.
    Scalar,
}

impl Variant {
    /// Short lower-case name (recorded in bench reports).
    pub fn name(self) -> &'static str {
        match self {
            Variant::Avx2 => "avx2",
            Variant::Sse2 => "sse2",
            Variant::Neon => "neon",
            Variant::Scalar => "scalar",
        }
    }

    /// Whether this variant can execute on the current CPU.
    pub fn supported(self) -> bool {
        match self {
            Variant::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Variant::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            Variant::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            Variant::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

/// 0 = unresolved; otherwise `Variant` discriminant + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn resolve_variant() -> Variant {
    let forced = std::env::var("PMA_FORCE_SCALAR")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if forced {
        return Variant::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Variant::Avx2;
        }
        return Variant::Sse2;
    }
    #[cfg(target_arch = "aarch64")]
    {
        return Variant::Neon;
    }
    #[allow(unreachable_code)]
    Variant::Scalar
}

/// The kernel variant every dispatching entry point uses, resolved once per
/// process (CPU detection + the `PMA_FORCE_SCALAR` override).
#[inline]
pub fn active_variant() -> Variant {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => Variant::Avx2,
        2 => Variant::Sse2,
        3 => Variant::Neon,
        4 => Variant::Scalar,
        _ => {
            let v = resolve_variant();
            let code = match v {
                Variant::Avx2 => 1,
                Variant::Sse2 => 2,
                Variant::Neon => 3,
                Variant::Scalar => 4,
            };
            ACTIVE.store(code, Ordering::Relaxed);
            v
        }
    }
}

/// Name of the active kernel variant (`avx2`/`sse2`/`neon`/`scalar`).
pub fn kernel_variant() -> &'static str {
    active_variant().name()
}

// ---------------------------------------------------------------------
// Counting kernels
// ---------------------------------------------------------------------

/// Number of elements `<= key` in the sorted run — identical to
/// `run.partition_point(|&x| x <= key)`.
#[inline]
pub fn count_le(run: &[Key], key: Key) -> usize {
    count_le_with(active_variant(), run, key)
}

/// Number of elements `< key` in the sorted run — identical to
/// `run.partition_point(|&x| x < key)`.
#[inline]
pub fn count_lt(run: &[Key], key: Key) -> usize {
    // x < key  ⟺  x <= key - 1 for integer keys; nothing is below MIN.
    match key.checked_sub(1) {
        Some(pred) => count_le(run, pred),
        None => 0,
    }
}

/// `slice::binary_search`-compatible probe over a sorted run: `Ok(pos)` of
/// the first occurrence of `key`, or `Err(pos)` of its insertion point.
#[inline]
pub fn search(run: &[Key], key: Key) -> Result<usize, usize> {
    let pos = count_lt(run, key);
    if pos < run.len() && run[pos] == key {
        Ok(pos)
    } else {
        Err(pos)
    }
}

/// Routing probe over a sorted separator array: index of the last separator
/// `<= key`, or 0 when every separator is greater (the first entry acts as
/// `-inf`). This is the shape of both the static index's per-node scan and
/// the shard directory lookup.
#[inline]
pub fn route(separators: &[Key], key: Key) -> usize {
    count_le(separators, key).saturating_sub(1)
}

/// [`count_le`] pinned to an explicit variant (bench/test hook).
///
/// # Panics
/// Panics when `variant` is not [`Variant::supported`] on this CPU.
pub fn count_le_with(variant: Variant, run: &[Key], key: Key) -> usize {
    assert!(variant.supported(), "{variant:?} not supported on this CPU");
    // Narrow long runs with a branchless (cmov) binary search first: the
    // vector kernel then counts a window of at most SMALL_RUN elements.
    // Data-dependent branches here would mispredict on ~half the probes.
    let mut lo = 0usize;
    let mut hi = run.len();
    while hi - lo > SMALL_RUN {
        let mid = lo + (hi - lo) / 2;
        let le = run[mid] <= key;
        lo = if le { mid + 1 } else { lo };
        hi = if le { hi } else { mid };
    }
    let window = &run[lo..hi];
    lo + match variant {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `supported()` verified AVX2 at runtime above.
        Variant::Avx2 => unsafe { count_le_avx2(window, key) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline.
        Variant::Sse2 => unsafe { count_le_sse2(window, key) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is part of the aarch64 baseline.
        Variant::Neon => unsafe { count_le_neon(window, key) },
        _ => count_le_scalar(window, key),
    }
}

/// Scalar twin of the vector window count (branchless popcount loop).
#[inline]
fn count_le_scalar(window: &[Key], key: Key) -> usize {
    window.iter().map(|&x| usize::from(x <= key)).sum()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn count_le_avx2(window: &[Key], key: Key) -> usize {
    use std::arch::x86_64::*;
    let vkey = _mm256_set1_epi64x(key);
    // x <= key ⟺ !(x > key); true lanes of the compare are all-ones (-1),
    // so a running vector add counts -(lanes above key) with no per-chunk
    // mask extraction — one horizontal reduction at the very end.
    let mut acc = _mm256_setzero_si256();
    let mut chunks = window.chunks_exact(4);
    for chunk in chunks.by_ref() {
        let v = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
        acc = _mm256_add_epi64(acc, _mm256_cmpgt_epi64(v, vkey));
    }
    let mut lanes = [0i64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let gt = (-lanes.iter().sum::<i64>()) as usize;
    (window.len() - chunks.remainder().len() - gt) + count_le_scalar(chunks.remainder(), key)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn count_le_sse2(window: &[Key], key: Key) -> usize {
    use std::arch::x86_64::*;
    let vkey = _mm_set1_epi64x(key);
    // SSE2 has no 64-bit signed compare; select the deciding sign bit:
    // when the signs of x and key differ, x > key iff key is negative;
    // when they agree, key - x cannot overflow and its sign decides.
    // Shift that sign down to bit 0 and accumulate — one horizontal sum at
    // the end instead of a mask extraction per chunk.
    let mut acc = _mm_setzero_si128();
    let mut chunks = window.chunks_exact(2);
    for chunk in chunks.by_ref() {
        let v = _mm_loadu_si128(chunk.as_ptr() as *const __m128i);
        let sub = _mm_sub_epi64(vkey, v);
        let flip = _mm_xor_si128(v, vkey);
        let gt = _mm_or_si128(_mm_and_si128(flip, vkey), _mm_andnot_si128(flip, sub));
        acc = _mm_add_epi64(acc, _mm_srli_epi64::<63>(gt));
    }
    let mut lanes = [0i64; 2];
    _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, acc);
    let gt = (lanes[0] + lanes[1]) as usize;
    (window.len() - chunks.remainder().len() - gt) + count_le_scalar(chunks.remainder(), key)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn count_le_neon(window: &[Key], key: Key) -> usize {
    use std::arch::aarch64::*;
    let vkey = vdupq_n_s64(key);
    let mut acc = vdupq_n_s64(0);
    let mut chunks = window.chunks_exact(2);
    for chunk in chunks.by_ref() {
        let v = vld1q_s64(chunk.as_ptr());
        // x <= key ⟺ key >= x; true lanes are all-ones (-1), so subtracting
        // the mask accumulates one per hit.
        let le = vreinterpretq_s64_u64(vcgeq_s64(vkey, v));
        acc = vsubq_s64(acc, le);
    }
    let count = (vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1)) as usize;
    count + count_le_scalar(chunks.remainder(), key)
}

// ---------------------------------------------------------------------
// Run copy
// ---------------------------------------------------------------------

/// Appends `src` to `dst` through wide vector loads/stores (the bulk-copy
/// half of the cross-shard block merge). Bit-identical to
/// `dst.extend_from_slice(src)`.
#[inline]
pub fn append_run(dst: &mut Vec<i64>, src: &[i64]) {
    match active_variant() {
        #[cfg(target_arch = "x86_64")]
        Variant::Avx2 => {
            dst.reserve(src.len());
            let len = dst.len();
            // SAFETY: reserved above; AVX2 verified by the active variant.
            unsafe {
                append_run_avx2(dst.as_mut_ptr().add(len), src);
                dst.set_len(len + src.len());
            }
        }
        _ => dst.extend_from_slice(src),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn append_run_avx2(mut dst: *mut i64, src: &[i64]) {
    use std::arch::x86_64::*;
    let mut chunks = src.chunks_exact(4);
    for chunk in chunks.by_ref() {
        let v = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
        _mm256_storeu_si256(dst as *mut __m256i, v);
        dst = dst.add(4);
    }
    for (i, &x) in chunks.remainder().iter().enumerate() {
        *dst.add(i) = x;
    }
}

// ---------------------------------------------------------------------
// Prefetch
// ---------------------------------------------------------------------

/// Software-prefetches the cache line holding `ptr` for reading. A hint
/// only — no-op on targets without a stable prefetch intrinsic.
#[inline(always)]
pub fn prefetch_read(ptr: *const Key) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it cannot fault even on dangling input.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

// ---------------------------------------------------------------------
// Atomic separator scan (static index)
// ---------------------------------------------------------------------

/// [`count_le`] over a run of atomically-updated separators.
///
/// The entries are snapshotted with `Relaxed` loads into a small stack
/// buffer (so racing separator updates stay well-defined — the caller's
/// protocol tolerates stale values) and each filled buffer is counted with
/// the vector kernel. Early-exits between buffers: the run is sorted, so a
/// partial buffer count ends the scan.
pub fn count_le_atomic(entries: &[AtomicI64], key: Key) -> usize {
    let mut count = 0usize;
    let mut buf = [0i64; 8];
    for chunk in entries.chunks(8) {
        for (slot, entry) in buf.iter_mut().zip(chunk) {
            *slot = entry.load(Ordering::Relaxed);
        }
        let n = count_le(&buf[..chunk.len()], key);
        count += n;
        if n < chunk.len() {
            break;
        }
    }
    count
}

// ---------------------------------------------------------------------
// Cache-line-aligned key layouts
// ---------------------------------------------------------------------

/// One cache line of keys.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct KeyLine([Key; 8]);

/// A flat, 64-byte-aligned, immutable sorted key array — the layout the
/// routing kernels ([`route`]) are fed with so a probe touches the fewest
/// possible cache lines and vector loads never split a line.
pub struct AlignedKeys {
    lines: Box<[KeyLine]>,
    len: usize,
}

impl AlignedKeys {
    /// Copies `keys` into an aligned buffer (tail padding stays unread:
    /// every kernel respects `len`).
    pub fn from_slice(keys: &[Key]) -> Self {
        let mut lines = vec![KeyLine([0; 8]); keys.len().div_ceil(8)].into_boxed_slice();
        for (i, &k) in keys.iter().enumerate() {
            lines[i / 8].0[i % 8] = k;
        }
        Self {
            lines,
            len: keys.len(),
        }
    }

    /// The keys as a contiguous slice.
    #[inline]
    pub fn as_slice(&self) -> &[Key] {
        // SAFETY: `KeyLine` is `repr(C)`, so a boxed slice of lines is one
        // contiguous array of keys; `len <= lines.len() * 8` by construction.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr() as *const Key, self.len) }
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for AlignedKeys {
    type Target = [Key];
    #[inline]
    fn deref(&self) -> &[Key] {
        self.as_slice()
    }
}

impl std::fmt::Debug for AlignedKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedKeys")
            .field("len", &self.len)
            .finish()
    }
}

/// One cache line of atomically-updated separators.
#[repr(C, align(64))]
struct AtomicLine([AtomicI64; 8]);

/// A flat, 64-byte-aligned array of atomic separators — the storage of one
/// static-index level. Values mutate (`Relaxed`/`Release` stores under the
/// owning gate's latch); the shape is immutable.
pub struct AlignedAtomicKeys {
    lines: Box<[AtomicLine]>,
    len: usize,
}

impl AlignedAtomicKeys {
    /// Builds an aligned level from its initial separator values.
    pub fn from_slice(keys: &[Key]) -> Self {
        let lines = (0..keys.len().div_ceil(8))
            .map(|line| {
                AtomicLine(std::array::from_fn(|lane| {
                    AtomicI64::new(keys.get(line * 8 + lane).copied().unwrap_or(0))
                }))
            })
            .collect();
        Self {
            lines,
            len: keys.len(),
        }
    }

    /// The separators as a contiguous slice of atomics.
    #[inline]
    pub fn as_slice(&self) -> &[AtomicI64] {
        // SAFETY: `AtomicLine` is `repr(C)`, so a boxed slice of lines is
        // one contiguous array; `len <= lines.len() * 8` by construction.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr() as *const AtomicI64, self.len) }
    }

    /// Number of separators.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the level is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for AlignedAtomicKeys {
    type Target = [AtomicI64];
    #[inline]
    fn deref(&self) -> &[AtomicI64] {
        self.as_slice()
    }
}

// ---------------------------------------------------------------------
// Generic dispatch for the sequential PMA
// ---------------------------------------------------------------------

/// Sorted-run probes for PMA key types. Every integer primitive gets the
/// scalar defaults; `i64` — the key type of the concurrent structures —
/// overrides them with the vector kernels, so the *generic* sequential PMA
/// transparently uses the same kernels as the concurrent mirror.
pub trait RunSearch: Ord + Sized {
    /// `slice::binary_search`-compatible probe over a sorted run.
    #[inline]
    fn search_run(run: &[Self], key: &Self) -> Result<usize, usize> {
        run.binary_search(key)
    }

    /// `run.partition_point(|x| x <= key)` over a sorted run.
    #[inline]
    fn count_le_run(run: &[Self], key: &Self) -> usize {
        run.partition_point(|x| x <= key)
    }
}

macro_rules! scalar_run_search {
    ($($t:ty),*) => {$(impl RunSearch for $t {})*};
}
scalar_run_search!(i8, i16, i32, i128, isize, u8, u16, u32, u64, u128, usize);

impl RunSearch for i64 {
    #[inline]
    fn search_run(run: &[Self], key: &Self) -> Result<usize, usize> {
        search(run, *key)
    }

    #[inline]
    fn count_le_run(run: &[Self], key: &Self) -> usize {
        count_le(run, *key)
    }
}

// ---------------------------------------------------------------------
// Byte-key fence routing
// ---------------------------------------------------------------------

/// Routing directory over sorted variable-length byte fences: the byte-key
/// variant of [`route`].
///
/// The trick is that lexicographic byte order can be *approximated* by a
/// fixed-stride integer comparison: each fence's first eight bytes
/// (zero-padded, big-endian — [`crate::types::key_head`]) are packed into the
/// signed separator domain and probed with the existing SIMD [`route`]
/// kernel. Because the head is a monotone weakening of byte order, the
/// vector probe lands either on the right fence or inside the run of fences
/// sharing the probe key's head; a short scalar walk comparing full byte
/// slices breaks those ties. The fast path therefore inherits the dispatch
/// machinery unchanged — including the `PMA_FORCE_SCALAR` escape hatch.
///
/// ```
/// use pma_common::simd::ByteFences;
///
/// let fences = ByteFences::from_keys(&[&b""[..], b"g", b"user:", b"user:5"]);
/// assert_eq!(fences.route(b"apple"), 0);
/// assert_eq!(fences.route(b"user:"), 2);  // exact fence hit
/// assert_eq!(fences.route(b"user:4999"), 2);
/// assert_eq!(fences.route(b"user:7"), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ByteFences {
    /// First-8-byte heads mapped into the signed separator domain, one per
    /// fence, in fence order (ties between fences share a head).
    heads: Vec<Key>,
    /// The full fence keys, for tie-breaking and introspection.
    fences: Vec<Box<[u8]>>,
}

impl ByteFences {
    /// Builds a directory from sorted (ascending, duplicate-free) fences.
    /// The first fence acts as `-inf`: keys below it still route to slot 0.
    ///
    /// # Panics
    /// Panics when `fences` is not strictly ascending.
    pub fn from_keys<K: AsRef<[u8]>>(fences: &[K]) -> Self {
        let fences: Vec<Box<[u8]>> = fences.iter().map(|f| f.as_ref().into()).collect();
        assert!(
            fences.windows(2).all(|w| w[0] < w[1]),
            "byte fences must be strictly ascending"
        );
        let heads = fences
            .iter()
            .map(|f| crate::types::head_separator(crate::types::key_head(f)))
            .collect();
        Self { heads, fences }
    }

    /// Number of fences (= routable slots).
    pub fn len(&self) -> usize {
        self.fences.len()
    }

    /// True when no fences are installed.
    pub fn is_empty(&self) -> bool {
        self.fences.is_empty()
    }

    /// The full byte fence at `slot`.
    pub fn fence(&self, slot: usize) -> &[u8] {
        &self.fences[slot]
    }

    /// Index of the last fence `<= key`, or 0 when every fence is greater
    /// (the first fence acts as `-inf`) — identical semantics to [`route`].
    ///
    /// # Panics
    /// Panics when the directory is empty.
    pub fn route(&self, key: &[u8]) -> usize {
        assert!(!self.fences.is_empty(), "routing over an empty directory");
        let head = crate::types::head_separator(crate::types::key_head(key));
        // Fences past this point have a strictly greater head, hence are
        // strictly greater byte strings — never candidates.
        let mut candidates = count_le(&self.heads, head);
        // Inside the equal-head run the integer probe is blind; compare the
        // full byte slices. The walk is bounded by the number of fences
        // sharing the key's first eight bytes.
        while candidates > 0
            && self.heads[candidates - 1] == head
            && *self.fences[candidates - 1] > *key
        {
            candidates -= 1;
        }
        candidates.saturating_sub(1)
    }

    /// Bytes of heap owned by the directory (for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.heads.capacity() * std::mem::size_of::<Key>()
            + self.fences.capacity() * std::mem::size_of::<Box<[u8]>>()
            + self.fences.iter().map(|f| f.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_count_le(run: &[Key], key: Key) -> usize {
        run.partition_point(|&x| x <= key)
    }

    fn sorted_runs() -> Vec<Vec<Key>> {
        vec![
            vec![],
            vec![0],
            vec![i64::MIN, i64::MIN, -1, 0, 0, 1, i64::MAX, i64::MAX],
            (0..100).map(|i| i * 3).collect(),
            (0..1000)
                .map(|i| (i % 7) * (i / 7))
                .collect::<Vec<_>>()
                .tap_sort(),
            vec![5; 129],
        ]
    }

    trait TapSort {
        fn tap_sort(self) -> Self;
    }
    impl TapSort for Vec<Key> {
        fn tap_sort(mut self) -> Self {
            self.sort_unstable();
            self
        }
    }

    #[test]
    fn every_supported_variant_matches_partition_point() {
        for variant in [Variant::Avx2, Variant::Sse2, Variant::Neon, Variant::Scalar] {
            if !variant.supported() {
                continue;
            }
            for run in sorted_runs() {
                for key in [i64::MIN, -1, 0, 1, 5, 14, 15, 16, 99, 297, 300, i64::MAX] {
                    assert_eq!(
                        count_le_with(variant, &run, key),
                        reference_count_le(&run, key),
                        "{variant:?} len={} key={key}",
                        run.len()
                    );
                }
            }
        }
    }

    #[test]
    fn search_matches_binary_search_semantics() {
        let run: Vec<Key> = (0..50).map(|i| i * 2).collect();
        for key in -2..102 {
            match search(&run, key) {
                Ok(pos) => assert_eq!(run[pos], key),
                Err(pos) => {
                    assert!(pos == run.len() || run[pos] > key);
                    assert!(pos == 0 || run[pos - 1] < key);
                }
            }
        }
    }

    #[test]
    fn route_picks_last_covering_separator() {
        let seps: Vec<Key> = vec![i64::MIN, 10, 20, 30];
        assert_eq!(route(&seps, i64::MIN), 0);
        assert_eq!(route(&seps, 9), 0);
        assert_eq!(route(&seps, 10), 1);
        assert_eq!(route(&seps, 29), 2);
        assert_eq!(route(&seps, i64::MAX), 3);
        assert_eq!(route(&[], 7), 0, "empty separator array routes to 0");
    }

    #[test]
    fn append_run_matches_extend_from_slice() {
        for n in [0usize, 1, 3, 4, 5, 64, 127] {
            let src: Vec<i64> = (0..n as i64).map(|i| i * 7 - 3).collect();
            let mut dst = vec![-1i64, -2];
            append_run(&mut dst, &src);
            let mut expect = vec![-1i64, -2];
            expect.extend_from_slice(&src);
            assert_eq!(dst, expect, "n={n}");
        }
    }

    #[test]
    fn atomic_count_matches_plain_count() {
        let keys: Vec<Key> = (0..37).map(|i| i * 5).collect();
        let level = AlignedAtomicKeys::from_slice(&keys);
        for key in [-1, 0, 4, 5, 90, 179, 180, 1000] {
            assert_eq!(
                count_le_atomic(level.as_slice(), key),
                reference_count_le(&keys, key),
                "key={key}"
            );
        }
        assert_eq!(level.len(), 37);
        assert!(!level.is_empty());
    }

    #[test]
    fn aligned_keys_roundtrip_and_alignment() {
        for n in [0usize, 1, 7, 8, 9, 40] {
            let keys: Vec<Key> = (0..n as i64).collect();
            let aligned = AlignedKeys::from_slice(&keys);
            assert_eq!(aligned.as_slice(), keys.as_slice());
            assert_eq!(aligned.len(), n);
            assert_eq!(aligned.is_empty(), n == 0);
            if n > 0 {
                assert_eq!(aligned.as_slice().as_ptr() as usize % 64, 0);
            }
        }
    }

    #[test]
    fn run_search_trait_dispatches_per_type() {
        let run64: Vec<i64> = vec![1, 3, 5];
        assert_eq!(<i64 as RunSearch>::search_run(&run64, &3), Ok(1));
        assert_eq!(<i64 as RunSearch>::count_le_run(&run64, &4), 2);
        let run32: Vec<i32> = vec![1, 3, 5];
        assert_eq!(<i32 as RunSearch>::search_run(&run32, &4), Err(2));
        assert_eq!(<i32 as RunSearch>::count_le_run(&run32, &4), 2);
    }

    #[test]
    fn active_variant_is_stable_and_named() {
        let v = active_variant();
        assert_eq!(v, active_variant());
        assert!(["avx2", "sse2", "neon", "scalar"].contains(&kernel_variant()));
        assert!(v.supported());
    }

    fn reference_byte_route(fences: &[Box<[u8]>], key: &[u8]) -> usize {
        fences
            .partition_point(|f| f.as_ref() <= key)
            .saturating_sub(1)
    }

    #[test]
    fn byte_route_matches_reference_on_shared_head_fences() {
        // Fences deliberately heavy on shared 8-byte heads so the vector
        // probe must fall back to the scalar tie-break.
        let fences: Vec<&[u8]> = vec![
            b"",
            b"aaaaaaaa",
            b"aaaaaaaa\x00",
            b"aaaaaaaa\x00\x01",
            b"aaaaaaaab",
            b"aaaaaaaac",
            b"b",
            b"user:0000",
            b"user:0001",
            b"user:00010",
            b"zzzzzzzzzzzz",
        ];
        let dir = ByteFences::from_keys(&fences);
        let boxed: Vec<Box<[u8]>> = fences.iter().map(|f| (*f).into()).collect();
        let probes: Vec<Vec<u8>> = fences
            .iter()
            .flat_map(|f| {
                let f = f.to_vec();
                let mut below = f.clone();
                below.pop();
                let mut above = f.clone();
                above.push(0);
                [below, f, above]
            })
            .collect();
        for probe in &probes {
            assert_eq!(
                dir.route(probe),
                reference_byte_route(&boxed, probe),
                "probe {probe:?}"
            );
        }
    }

    #[test]
    fn byte_route_handles_short_and_empty_keys() {
        let dir = ByteFences::from_keys(&[&b""[..], &[0x01], &[0x01, 0x00], &[0x02]]);
        assert_eq!(dir.route(b""), 0);
        assert_eq!(dir.route(&[0x00]), 0);
        assert_eq!(dir.route(&[0x01]), 1);
        assert_eq!(dir.route(&[0x01, 0x00]), 2);
        assert_eq!(dir.route(&[0x01, 0x00, 0x00]), 2);
        assert_eq!(dir.route(&[0xFF; 16]), 3);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn byte_fences_reject_unsorted_input() {
        let _ = ByteFences::from_keys(&[&b"b"[..], b"a"]);
    }
}
