//! Key and value types.
//!
//! The paper's evaluation stores 8-byte key / 8-byte value integer pairs; the
//! concurrent data structures in this workspace use these concrete aliases so
//! that the shared-mutation storage of the PMA can be kept simple and its
//! safety argument auditable. The *sequential* PMA in `pma-core` is generic.

/// The key type used by the concurrent data structures (8-byte signed integer).
pub type Key = i64;

/// The value type used by the concurrent data structures (8-byte signed integer).
pub type Value = i64;

/// Smallest representable key, used as the `-inf` fence key of the first gate.
pub const KEY_MIN: Key = Key::MIN;

/// Largest representable key, used as the `+inf` fence key of the last gate.
pub const KEY_MAX: Key = Key::MAX;

/// A key/value pair, the element stored by every structure in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KeyValue {
    /// The ordering key.
    pub key: Key,
    /// The payload associated with `key`.
    pub value: Value,
}

impl KeyValue {
    /// Creates a new key/value pair.
    #[inline]
    pub const fn new(key: Key, value: Value) -> Self {
        Self { key, value }
    }
}

impl From<(Key, Value)> for KeyValue {
    #[inline]
    fn from((key, value): (Key, Value)) -> Self {
        Self { key, value }
    }
}

impl From<KeyValue> for (Key, Value) {
    #[inline]
    fn from(kv: KeyValue) -> Self {
        (kv.key, kv.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_value_roundtrip() {
        let kv = KeyValue::new(42, -7);
        let tuple: (Key, Value) = kv.into();
        assert_eq!(tuple, (42, -7));
        assert_eq!(KeyValue::from(tuple), kv);
    }

    #[test]
    fn key_value_ordering_is_by_key_then_value() {
        let a = KeyValue::new(1, 100);
        let b = KeyValue::new(2, 0);
        let c = KeyValue::new(2, 1);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    // The assertions are trivially true for i64 — that is exactly what the
    // test documents: the fence sentinels must bracket every representable
    // key, which would stop holding if `Key`/`KEY_MIN`/`KEY_MAX` were changed
    // to a type or values without that property.
    #[allow(clippy::absurd_extreme_comparisons)]
    fn fence_sentinels_bracket_all_keys() {
        for k in [-1_000_000_i64, 0, 1, Key::MAX - 1] {
            assert!(KEY_MIN <= k);
            assert!(k <= KEY_MAX);
        }
    }
}
