//! Key and value types.
//!
//! The paper's evaluation stores 8-byte key / 8-byte value integer pairs; the
//! concurrent data structures in this workspace use these concrete aliases so
//! that the shared-mutation storage of the PMA can be kept simple and its
//! safety argument auditable. The *sequential* PMA in `pma-core` is generic.

/// The key type used by the concurrent data structures (8-byte signed integer).
pub type Key = i64;

/// The value type used by the concurrent data structures (8-byte signed integer).
pub type Value = i64;

/// Smallest representable key, used as the `-inf` fence key of the first gate.
pub const KEY_MIN: Key = Key::MIN;

/// Largest representable key, used as the `+inf` fence key of the last gate.
pub const KEY_MAX: Key = Key::MAX;

/// A key/value pair, the element stored by every structure in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KeyValue {
    /// The ordering key.
    pub key: Key,
    /// The payload associated with `key`.
    pub value: Value,
}

impl KeyValue {
    /// Creates a new key/value pair.
    #[inline]
    pub const fn new(key: Key, value: Value) -> Self {
        Self { key, value }
    }
}

impl From<(Key, Value)> for KeyValue {
    #[inline]
    fn from((key, value): (Key, Value)) -> Self {
        Self { key, value }
    }
}

impl From<KeyValue> for (Key, Value) {
    #[inline]
    fn from(kv: KeyValue) -> Self {
        (kv.key, kv.value)
    }
}

/// An ordering key with an order-preserving byte encoding.
///
/// The single law every implementation must uphold is that the native order
/// and the lexicographic order of the encodings agree:
///
/// ```text
/// a.cmp(&b) == a.to_bytes().as_slice().cmp(b.to_bytes().as_slice())
/// ```
///
/// This is what lets the byte-keyed structures (`ConcurrentByteMap`
/// implementations) store *any* `ByteKey` as a plain sorted byte slice and
/// route on raw byte prefixes: integers, strings, and composite keys all end
/// up in one comparison domain.
///
/// The `u64` impl is zero cost: the big-endian encoding of an unsigned
/// integer is already order preserving, so `to_bytes` is a single
/// `to_be_bytes` and no per-key allocation is required on the borrow path
/// (`as_encoded` for `Vec<u8>` keys, the array for integers).
///
/// ```
/// use pma_common::types::ByteKey;
///
/// let a = 3_u64.to_bytes();
/// let b = 10_u64.to_bytes();
/// assert!(a < b); // big-endian keeps numeric order under byte comparison
///
/// let s = b"user:42".to_vec();
/// assert_eq!(s.as_encoded(), Some(&s[..])); // byte keys borrow for free
/// ```
pub trait ByteKey: Ord + Send + Sync + Sized {
    /// Encoded length in bytes when every key of this type encodes to the
    /// same length (`None` for variable-length keys such as `Vec<u8>`).
    const ENCODED_LEN: Option<usize>;

    /// Appends the order-preserving encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Returns the encoding as an owned buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN.unwrap_or(16));
        self.encode_into(&mut out);
        out
    }

    /// Borrows the encoding without copying, when the in-memory
    /// representation *is* the encoding (true for `Vec<u8>`, not for
    /// integers, whose encoding is materialised on the stack instead).
    fn as_encoded(&self) -> Option<&[u8]> {
        None
    }

    /// Decodes a key from its exact encoding; `None` if `bytes` is not a
    /// valid encoding of this type.
    fn from_bytes(bytes: &[u8]) -> Option<Self>;
}

impl ByteKey for u64 {
    const ENCODED_LEN: Option<usize> = Some(8);

    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }

    #[inline]
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(u64::from_be_bytes(arr))
    }
}

impl ByteKey for i64 {
    const ENCODED_LEN: Option<usize> = Some(8);

    // Flipping the sign bit maps i64 order onto u64 order, after which
    // big-endian bytes compare lexicographically in numeric order.
    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&((*self as u64) ^ SIGN_BIT).to_be_bytes());
    }

    #[inline]
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some((u64::from_be_bytes(arr) ^ SIGN_BIT) as i64)
    }
}

impl ByteKey for Vec<u8> {
    const ENCODED_LEN: Option<usize> = None;

    #[inline]
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }

    #[inline]
    fn as_encoded(&self) -> Option<&[u8]> {
        Some(self)
    }

    #[inline]
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

const SIGN_BIT: u64 = 1 << 63;

/// Order-preserving fixed 8-byte encoding of a native [`Key`]
/// (sign-flipped big-endian; equivalent to `ByteKey::to_bytes` for `i64`
/// without the allocation).
#[inline]
pub fn encode_key(key: Key) -> [u8; 8] {
    ((key as u64) ^ SIGN_BIT).to_be_bytes()
}

/// Inverse of [`encode_key`].
#[inline]
pub fn decode_key(bytes: [u8; 8]) -> Key {
    (u64::from_be_bytes(bytes) ^ SIGN_BIT) as Key
}

/// First eight bytes of `key` as a big-endian integer, zero-padded on the
/// right for shorter keys.
///
/// The head is a *monotone weakening* of lexicographic order: `a <= b`
/// implies `key_head(a) <= key_head(b)`, and therefore
/// `key_head(a) < key_head(b)` implies `a < b`. Keys agreeing on their first
/// eight bytes (and short keys vs their zero-padding) collapse to the same
/// head, which is exactly the tie a full byte comparison must break — see
/// [`crate::simd::ByteFences`].
#[inline]
pub fn key_head(key: &[u8]) -> u64 {
    let mut buf = [0_u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

/// Maps a [`key_head`] into the signed domain of the SIMD kernels, preserving
/// unsigned order (`h1 <= h2` iff `head_separator(h1) <= head_separator(h2)`).
#[inline]
pub fn head_separator(head: u64) -> Key {
    (head ^ SIGN_BIT) as Key
}

/// Smallest byte string strictly greater than every key that starts with
/// `prefix`, or `None` when no such bound exists (empty or all-`0xFF`
/// prefixes), in which case the prefix range is unbounded above.
///
/// This is the exclusive upper bound that turns a `prefix(p)` scan into the
/// half-open range `[p, prefix_upper_bound(p))`.
///
/// ```
/// use pma_common::types::prefix_upper_bound;
///
/// assert_eq!(prefix_upper_bound(b"user:"), Some(b"user;".to_vec()));
/// assert_eq!(prefix_upper_bound(&[0x61, 0xFF]), Some(vec![0x62]));
/// assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
/// assert_eq!(prefix_upper_bound(b""), None);
/// ```
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let last_incrementable = prefix.iter().rposition(|&b| b != 0xFF)?;
    let mut bound = prefix[..=last_incrementable].to_vec();
    bound[last_incrementable] += 1;
    Some(bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_value_roundtrip() {
        let kv = KeyValue::new(42, -7);
        let tuple: (Key, Value) = kv.into();
        assert_eq!(tuple, (42, -7));
        assert_eq!(KeyValue::from(tuple), kv);
    }

    #[test]
    fn key_value_ordering_is_by_key_then_value() {
        let a = KeyValue::new(1, 100);
        let b = KeyValue::new(2, 0);
        let c = KeyValue::new(2, 1);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    // The assertions are trivially true for i64 — that is exactly what the
    // test documents: the fence sentinels must bracket every representable
    // key, which would stop holding if `Key`/`KEY_MIN`/`KEY_MAX` were changed
    // to a type or values without that property.
    #[allow(clippy::absurd_extreme_comparisons)]
    fn fence_sentinels_bracket_all_keys() {
        for k in [-1_000_000_i64, 0, 1, Key::MAX - 1] {
            assert!(KEY_MIN <= k);
            assert!(k <= KEY_MAX);
        }
    }

    fn assert_order_preserving<K: ByteKey + std::fmt::Debug>(keys: &[K]) {
        for a in keys {
            for b in keys {
                assert_eq!(
                    a.cmp(b),
                    a.to_bytes().as_slice().cmp(b.to_bytes().as_slice()),
                    "encoding of {a:?} vs {b:?} must preserve order"
                );
            }
            if let Some(len) = K::ENCODED_LEN {
                assert_eq!(a.to_bytes().len(), len);
            }
            assert_eq!(K::from_bytes(&a.to_bytes()).as_ref(), Some(a));
        }
    }

    #[test]
    fn u64_encoding_preserves_order() {
        assert_order_preserving(&[0_u64, 1, 2, 255, 256, 1 << 20, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn i64_encoding_preserves_order() {
        assert_order_preserving(&[i64::MIN, -1 << 40, -256, -1, 0, 1, 255, 1 << 40, i64::MAX]);
    }

    #[test]
    fn byte_key_encoding_is_identity() {
        let keys: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![0, 0],
            b"user:1".to_vec(),
            b"user:10".to_vec(),
            vec![0xFF],
        ];
        assert_order_preserving(&keys);
        assert_eq!(keys[3].as_encoded(), Some(&b"user:1"[..]));
    }

    #[test]
    fn key_head_is_monotone() {
        let keys: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![1, 0],
            vec![1, 0, 5],
            vec![1, 255],
            vec![2],
            b"user:4".to_vec(),
            b"user:42-and-then-some".to_vec(),
            b"user:43".to_vec(),
            vec![0xFF; 12],
        ];
        for a in &keys {
            for b in &keys {
                if a <= b {
                    assert!(key_head(a) <= key_head(b), "{a:?} vs {b:?}");
                    assert!(head_separator(key_head(a)) <= head_separator(key_head(b)));
                }
            }
        }
    }

    #[test]
    fn prefix_upper_bound_brackets_exactly_the_prefix() {
        let cases: &[&[u8]] = &[b"user:", b"a", &[0x00], &[0x61, 0xFF, 0xFF]];
        for &p in cases {
            let hi = prefix_upper_bound(p).expect("incrementable prefix");
            // Every extension of p is < hi; hi itself does not start with p.
            let mut ext = p.to_vec();
            ext.push(0xFF);
            assert!(ext.as_slice() < hi.as_slice());
            assert!(p < hi.as_slice());
            assert!(!hi.starts_with(p));
        }
        assert_eq!(prefix_upper_bound(&[]), None);
        assert_eq!(prefix_upper_bound(&[0xFF]), None);
    }
}
