//! Small numeric utilities shared by the PMA, the baselines and the harness.

/// Returns the smallest power of two greater than or equal to `n` (minimum 1).
#[inline]
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Returns `true` if `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Integer log2 of a power of two.
///
/// # Panics
/// Panics in debug builds if `n` is not a power of two.
#[inline]
pub fn log2_exact(n: usize) -> u32 {
    debug_assert!(is_power_of_two(n), "log2_exact requires a power of two");
    n.trailing_zeros()
}

/// Ceiling division of two non-negative integers.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

/// Formats a throughput (operations per second) the way the paper's figures
/// report it: millions of elements per second with one decimal.
pub fn fmt_millions_per_sec(ops: u64, seconds: f64) -> String {
    if seconds <= 0.0 {
        return "n/a".to_string();
    }
    let m = ops as f64 / seconds / 1.0e6;
    format!("{m:.2}")
}

/// A cache-line padded wrapper used for per-thread counters to avoid false
/// sharing, as recommended for concurrent counters in the performance guide.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wraps `value` with 64-byte alignment.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_power_of_two_basics() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(4), 4);
        assert_eq!(next_power_of_two(1000), 1024);
    }

    #[test]
    fn is_power_of_two_basics() {
        assert!(!is_power_of_two(0));
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(!is_power_of_two(6));
        assert!(is_power_of_two(1 << 20));
    }

    #[test]
    fn log2_exact_matches_shift() {
        for s in 0..40 {
            assert_eq!(log2_exact(1usize << s), s as u32);
        }
    }

    #[test]
    fn div_ceil_basics() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(fmt_millions_per_sec(2_000_000, 1.0), "2.00");
        assert_eq!(fmt_millions_per_sec(500_000, 0.5), "1.00");
        assert_eq!(fmt_millions_per_sec(1, 0.0), "n/a");
    }

    #[test]
    fn cache_padded_is_aligned() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 64);
        let c = CachePadded::new(5u64);
        assert_eq!(*c, 5);
    }
}
