//! Registry entries for the concurrent PMA variants evaluated in the paper.
//!
//! [`register_backends`] installs the PMA configurations of Figures 3/4 and
//! the section 4.1 ablation into a [`Registry`]; they are then constructible
//! by spec string (`"pma-batch:100"`, `"pma-sync"`, ...) without any consumer
//! naming a concrete type.

use std::sync::Arc;
use std::time::Duration;

use pma_common::bytemap::{dedup_sorted_bytes_last_wins, ConcurrentByteMap};
use pma_common::registry::{BackendDef, BackendSpec, ByteBackendDef, Registry};
use pma_common::types::decode_key;
use pma_common::{ByteView64, ConcurrentMap, PmaError, Value};

use crate::bytepma::{BytePma, BytePmaConfig};
use crate::concurrent::ConcurrentPma;
use crate::params::{PmaParams, RebalancePolicy, UpdateMode};

/// The paper's PMA configuration with a configurable segment capacity and
/// update mode, sized for laptop-scale runs (the worker count adapts to the
/// available cores instead of being fixed at 8).
pub fn paper_pma_params(update_mode: UpdateMode, segment_capacity: usize) -> PmaParams {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4)
        .max(1);
    PmaParams {
        segment_capacity,
        segments_per_gate: 8,
        rebalancer_workers: workers,
        update_mode,
        ..PmaParams::default()
    }
}

/// Parameters for the spec's PMA variant (shared by `build` and
/// `build_loaded` so both construction paths configure identically).
fn spec_params(spec: &BackendSpec<'_>) -> Result<PmaParams, PmaError> {
    match spec.name {
        "pma-sync" => Ok(paper_pma_params(UpdateMode::Synchronous, 128)),
        "pma-1by1" => {
            let mut params = paper_pma_params(UpdateMode::OneByOne, 128);
            params.rebalance_policy = RebalancePolicy::Adaptive;
            Ok(params)
        }
        "pma-batch" => {
            let t_delay = Duration::from_millis(spec.u64_arg(100)?);
            Ok(paper_pma_params(UpdateMode::Batch { t_delay }, 128))
        }
        "pma-seg" => {
            let segment_capacity = spec.u64_arg(256)? as usize;
            Ok(paper_pma_params(
                UpdateMode::Batch {
                    t_delay: Duration::from_millis(100),
                },
                segment_capacity,
            ))
        }
        other => Err(PmaError::NotFound(format!("unknown PMA variant `{other}`"))),
    }
}

fn build_pma(
    _registry: &Registry,
    spec: &BackendSpec<'_>,
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    Ok(Arc::new(ConcurrentPma::new(spec_params(spec)?)?))
}

/// Native bulk loader: presized [`ConcurrentPma::from_sorted`] construction,
/// zero rebalances during the load.
fn build_loaded_pma(
    _registry: &Registry,
    spec: &BackendSpec<'_>,
    items: &[(pma_common::Key, pma_common::Value)],
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    Ok(Arc::new(ConcurrentPma::from_sorted(
        spec_params(spec)?,
        items,
    )?))
}

/// Registers every PMA variant: `pma-sync`, `pma-1by1`, `pma-batch[:ms]` and
/// `pma-seg[:capacity]`. All variants register the native bulk loader, so
/// `Registry::build_loaded` constructs them through
/// [`ConcurrentPma::from_sorted`].
pub fn register_backends(registry: &Registry) {
    registry.register(BackendDef {
        name: "pma-sync",
        description: "concurrent PMA, synchronous updates (Figure 4 baseline)",
        label: |_| "PMA Baseline".to_string(),
        build: build_pma,
        build_loaded: Some(build_loaded_pma),
    });
    registry.register(BackendDef {
        name: "pma-1by1",
        description: "concurrent PMA, one-by-one asynchronous updates (Figure 4 \"1by1\")",
        label: |_| "PMA 1by1".to_string(),
        build: build_pma,
        build_loaded: Some(build_loaded_pma),
    });
    registry.register(BackendDef {
        name: "pma-batch",
        description:
            "concurrent PMA, batch asynchronous updates; arg = t_delay in ms (default 100)",
        label: |spec| format!("PMA Batch {}ms", spec.u64_arg(100).unwrap_or(100)),
        build: build_pma,
        build_loaded: Some(build_loaded_pma),
    });
    registry.register(BackendDef {
        name: "pma-seg",
        description: "concurrent PMA, batch updates with a custom segment capacity; \
                      arg = elements per segment (default 256, section 4.1 ablation)",
        label: |spec| format!("PMA seg={}", spec.u64_arg(256).unwrap_or(256)),
        build: build_pma,
        build_loaded: Some(build_loaded_pma),
    });
    register_byte_backends(registry);
}

fn bpma_config(spec: &BackendSpec<'_>) -> Result<BytePmaConfig, PmaError> {
    Ok(BytePmaConfig {
        chunk_target: spec.u64_arg(128)? as usize,
    })
}

/// Default inner spec for the `b64` adapter when no argument is given.
const B64_DEFAULT_INNER: &str = "pma-batch:100";

fn build_b64(
    registry: &Registry,
    spec: &BackendSpec<'_>,
) -> Result<Arc<dyn ConcurrentByteMap>, PmaError> {
    let inner = spec.arg.unwrap_or(B64_DEFAULT_INNER);
    Ok(Arc::new(ByteView64::new(registry.build(inner)?)))
}

/// Native `b64` loader: decode the 8-byte keys once and hand the run to the
/// inner backend's own native loader through `Registry::build_loaded`.
fn build_loaded_b64(
    registry: &Registry,
    spec: &BackendSpec<'_>,
    items: &[(Vec<u8>, Value)],
) -> Result<Arc<dyn ConcurrentByteMap>, PmaError> {
    let inner = spec.arg.unwrap_or(B64_DEFAULT_INNER);
    let items = dedup_sorted_bytes_last_wins(items);
    let native: Vec<(pma_common::Key, Value)> = items
        .iter()
        .map(|(key, value)| {
            let arr: [u8; 8] = key.as_slice().try_into().map_err(|_| {
                PmaError::invalid(
                    "items",
                    format!("b64 keys must be exactly 8 bytes, got {}", key.len()),
                )
            })?;
            Ok((decode_key(arr), *value))
        })
        .collect::<Result<_, PmaError>>()?;
    Ok(Arc::new(ByteView64::new(
        registry.build_loaded(inner, &native)?,
    )))
}

/// Registers the byte-keyed backends provided by this crate:
///
/// * `bpma[:<chunk_target>]` — the prefix-compressed byte PMA;
/// * `b64[:<inner-u64-spec>]` — any u64 backend adapted to the byte surface
///   via the order-preserving 8-byte key encoding (default inner:
///   `pma-batch:100`), which also routes byte traffic through `sharded:*`
///   fences and the `cores:*` router once those are registered.
pub fn register_byte_backends(registry: &Registry) {
    registry.register_bytes(ByteBackendDef {
        name: "bpma",
        description: "byte-keyed PMA with prefix-compressed chunks; \
                      arg = target entries per chunk (default 128)",
        label: |spec| format!("BytePMA chunk={}", spec.u64_arg(128).unwrap_or(128)),
        build: |_, spec| Ok(Arc::new(BytePma::new(bpma_config(spec)?)?)),
        build_loaded: Some(|_, spec, items| {
            Ok(Arc::new(BytePma::from_sorted_bytes(
                bpma_config(spec)?,
                items,
            )?))
        }),
    });
    registry.register_bytes(ByteBackendDef {
        name: "b64",
        description: "byte view over a u64 backend (fixed 8-byte keys); \
                      arg = inner u64 spec (default pma-batch:100)",
        label: |spec| format!("ByteView64[{}]", spec.arg.unwrap_or(B64_DEFAULT_INNER)),
        build: build_b64,
        build_loaded: Some(build_loaded_b64),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pma_backend_builds_and_works() {
        let registry = Registry::new();
        register_backends(&registry);
        for spec in ["pma-sync", "pma-1by1", "pma-batch:1", "pma-seg:64"] {
            let map = registry.build(spec).unwrap();
            for k in 0..300i64 {
                map.insert(k, k);
            }
            map.flush();
            assert_eq!(map.len(), 300, "{spec}");
            assert_eq!(map.scan_range(10, 19).count, 10, "{spec}");
        }
    }

    #[test]
    fn every_pma_backend_bulk_loads_natively() {
        let registry = Registry::new();
        register_backends(&registry);
        let items: Vec<(i64, i64)> = (0..2_000i64).map(|k| (k * 2, -k)).collect();
        for spec in ["pma-sync", "pma-1by1", "pma-batch:1", "pma-seg:64"] {
            let map = registry.build_loaded(spec, &items).unwrap();
            assert_eq!(map.len(), 2_000, "{spec}");
            assert_eq!(map.get(100), Some(-50), "{spec}");
            assert_eq!(map.scan_all().count, 2_000, "{spec}");
        }
    }

    #[test]
    fn labels_match_paper_names() {
        let registry = Registry::new();
        register_backends(&registry);
        assert_eq!(registry.label("pma-sync").unwrap(), "PMA Baseline");
        assert_eq!(registry.label("pma-1by1").unwrap(), "PMA 1by1");
        assert_eq!(registry.label("pma-batch:100").unwrap(), "PMA Batch 100ms");
        assert_eq!(registry.label("pma-batch").unwrap(), "PMA Batch 100ms");
        assert_eq!(registry.label("pma-seg:256").unwrap(), "PMA seg=256");
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let registry = Registry::new();
        register_backends(&registry);
        assert!(registry.build("pma-batch:abc").is_err());
        assert!(
            registry.build("pma-seg:0").is_err(),
            "capacity 0 is invalid"
        );
        assert!(registry.build_bytes("bpma:1").is_err(), "chunk target 1");
        assert!(registry.build_bytes("b64:nope").is_err(), "unknown inner");
    }

    #[test]
    fn byte_backends_build_and_roundtrip() {
        let registry = Registry::new();
        register_backends(&registry);
        for spec in ["bpma:16", "b64:pma-batch:1"] {
            let map = registry.build_bytes(spec).unwrap();
            for k in 0..300_i64 {
                map.insert(&pma_common::types::encode_key(k), k);
            }
            map.flush();
            assert_eq!(map.len(), 300, "{spec}");
            assert_eq!(
                map.get(&pma_common::types::encode_key(7)),
                Some(7),
                "{spec}"
            );
            assert_eq!(map.scan_all().count, 300, "{spec}");
        }
        assert_eq!(registry.byte_label("bpma:16").unwrap(), "BytePMA chunk=16");
        assert_eq!(
            registry.byte_label("b64:pma-sync").unwrap(),
            "ByteView64[pma-sync]"
        );
    }

    #[test]
    fn b64_native_loader_dispatches_to_inner_loader() {
        let registry = Registry::new();
        register_backends(&registry);
        let mut items: Vec<(Vec<u8>, i64)> = (0..2_000_i64)
            .map(|k| (pma_common::types::encode_key(k * 2).to_vec(), -k))
            .collect();
        items.push(items[50].clone());
        items[2000].1 = 999; // duplicate of key 100: last wins
        items.sort();
        let map = registry
            .build_bytes_loaded("b64:pma-batch:1", &items)
            .unwrap();
        assert_eq!(map.len(), 2_000);
        assert_eq!(map.get(&pma_common::types::encode_key(100)), Some(999));
        let rejected = registry.build_bytes_loaded("b64", &[(b"short".to_vec(), 1)]);
        assert!(rejected.is_err(), "non-8-byte keys must be rejected");
    }
}
