//! Registry entries for the concurrent PMA variants evaluated in the paper.
//!
//! [`register_backends`] installs the PMA configurations of Figures 3/4 and
//! the section 4.1 ablation into a [`Registry`]; they are then constructible
//! by spec string (`"pma-batch:100"`, `"pma-sync"`, ...) without any consumer
//! naming a concrete type.

use std::sync::Arc;
use std::time::Duration;

use pma_common::registry::{BackendDef, BackendSpec, Registry};
use pma_common::{ConcurrentMap, PmaError};

use crate::concurrent::ConcurrentPma;
use crate::params::{PmaParams, RebalancePolicy, UpdateMode};

/// The paper's PMA configuration with a configurable segment capacity and
/// update mode, sized for laptop-scale runs (the worker count adapts to the
/// available cores instead of being fixed at 8).
pub fn paper_pma_params(update_mode: UpdateMode, segment_capacity: usize) -> PmaParams {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4)
        .max(1);
    PmaParams {
        segment_capacity,
        segments_per_gate: 8,
        rebalancer_workers: workers,
        update_mode,
        ..PmaParams::default()
    }
}

fn build_pma(params: PmaParams) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    Ok(Arc::new(ConcurrentPma::new(params)?))
}

fn build_sync(_spec: &BackendSpec<'_>) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    build_pma(paper_pma_params(UpdateMode::Synchronous, 128))
}

fn build_one_by_one(_spec: &BackendSpec<'_>) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    let mut params = paper_pma_params(UpdateMode::OneByOne, 128);
    params.rebalance_policy = RebalancePolicy::Adaptive;
    build_pma(params)
}

fn build_batch(spec: &BackendSpec<'_>) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    let t_delay = Duration::from_millis(spec.u64_arg(100)?);
    build_pma(paper_pma_params(UpdateMode::Batch { t_delay }, 128))
}

fn build_seg(spec: &BackendSpec<'_>) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    let segment_capacity = spec.u64_arg(256)? as usize;
    build_pma(paper_pma_params(
        UpdateMode::Batch {
            t_delay: Duration::from_millis(100),
        },
        segment_capacity,
    ))
}

/// Registers every PMA variant: `pma-sync`, `pma-1by1`, `pma-batch[:ms]` and
/// `pma-seg[:capacity]`.
pub fn register_backends(registry: &Registry) {
    registry.register(BackendDef {
        name: "pma-sync",
        description: "concurrent PMA, synchronous updates (Figure 4 baseline)",
        label: |_| "PMA Baseline".to_string(),
        build: build_sync,
    });
    registry.register(BackendDef {
        name: "pma-1by1",
        description: "concurrent PMA, one-by-one asynchronous updates (Figure 4 \"1by1\")",
        label: |_| "PMA 1by1".to_string(),
        build: build_one_by_one,
    });
    registry.register(BackendDef {
        name: "pma-batch",
        description:
            "concurrent PMA, batch asynchronous updates; arg = t_delay in ms (default 100)",
        label: |spec| format!("PMA Batch {}ms", spec.u64_arg(100).unwrap_or(100)),
        build: build_batch,
    });
    registry.register(BackendDef {
        name: "pma-seg",
        description: "concurrent PMA, batch updates with a custom segment capacity; \
                      arg = elements per segment (default 256, section 4.1 ablation)",
        label: |spec| format!("PMA seg={}", spec.u64_arg(256).unwrap_or(256)),
        build: build_seg,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pma_backend_builds_and_works() {
        let registry = Registry::new();
        register_backends(&registry);
        for spec in ["pma-sync", "pma-1by1", "pma-batch:1", "pma-seg:64"] {
            let map = registry.build(spec).unwrap();
            for k in 0..300i64 {
                map.insert(k, k);
            }
            map.flush();
            assert_eq!(map.len(), 300, "{spec}");
            assert_eq!(map.scan_range(10, 19).count, 10, "{spec}");
        }
    }

    #[test]
    fn labels_match_paper_names() {
        let registry = Registry::new();
        register_backends(&registry);
        assert_eq!(registry.label("pma-sync").unwrap(), "PMA Baseline");
        assert_eq!(registry.label("pma-1by1").unwrap(), "PMA 1by1");
        assert_eq!(registry.label("pma-batch:100").unwrap(), "PMA Batch 100ms");
        assert_eq!(registry.label("pma-batch").unwrap(), "PMA Batch 100ms");
        assert_eq!(registry.label("pma-seg:256").unwrap(), "PMA seg=256");
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let registry = Registry::new();
        register_backends(&registry);
        assert!(registry.build("pma-batch:abc").is_err());
        assert!(
            registry.build("pma-seg:0").is_err(),
            "capacity 0 is invalid"
        );
    }
}
