//! Registry entries for the concurrent PMA variants evaluated in the paper.
//!
//! [`register_backends`] installs the PMA configurations of Figures 3/4 and
//! the section 4.1 ablation into a [`Registry`]; they are then constructible
//! by spec string (`"pma-batch:100"`, `"pma-sync"`, ...) without any consumer
//! naming a concrete type.

use std::sync::Arc;
use std::time::Duration;

use pma_common::registry::{BackendDef, BackendSpec, Registry};
use pma_common::{ConcurrentMap, PmaError};

use crate::concurrent::ConcurrentPma;
use crate::params::{PmaParams, RebalancePolicy, UpdateMode};

/// The paper's PMA configuration with a configurable segment capacity and
/// update mode, sized for laptop-scale runs (the worker count adapts to the
/// available cores instead of being fixed at 8).
pub fn paper_pma_params(update_mode: UpdateMode, segment_capacity: usize) -> PmaParams {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4)
        .max(1);
    PmaParams {
        segment_capacity,
        segments_per_gate: 8,
        rebalancer_workers: workers,
        update_mode,
        ..PmaParams::default()
    }
}

/// Parameters for the spec's PMA variant (shared by `build` and
/// `build_loaded` so both construction paths configure identically).
fn spec_params(spec: &BackendSpec<'_>) -> Result<PmaParams, PmaError> {
    match spec.name {
        "pma-sync" => Ok(paper_pma_params(UpdateMode::Synchronous, 128)),
        "pma-1by1" => {
            let mut params = paper_pma_params(UpdateMode::OneByOne, 128);
            params.rebalance_policy = RebalancePolicy::Adaptive;
            Ok(params)
        }
        "pma-batch" => {
            let t_delay = Duration::from_millis(spec.u64_arg(100)?);
            Ok(paper_pma_params(UpdateMode::Batch { t_delay }, 128))
        }
        "pma-seg" => {
            let segment_capacity = spec.u64_arg(256)? as usize;
            Ok(paper_pma_params(
                UpdateMode::Batch {
                    t_delay: Duration::from_millis(100),
                },
                segment_capacity,
            ))
        }
        other => Err(PmaError::NotFound(format!("unknown PMA variant `{other}`"))),
    }
}

fn build_pma(
    _registry: &Registry,
    spec: &BackendSpec<'_>,
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    Ok(Arc::new(ConcurrentPma::new(spec_params(spec)?)?))
}

/// Native bulk loader: presized [`ConcurrentPma::from_sorted`] construction,
/// zero rebalances during the load.
fn build_loaded_pma(
    _registry: &Registry,
    spec: &BackendSpec<'_>,
    items: &[(pma_common::Key, pma_common::Value)],
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    Ok(Arc::new(ConcurrentPma::from_sorted(
        spec_params(spec)?,
        items,
    )?))
}

/// Registers every PMA variant: `pma-sync`, `pma-1by1`, `pma-batch[:ms]` and
/// `pma-seg[:capacity]`. All variants register the native bulk loader, so
/// `Registry::build_loaded` constructs them through
/// [`ConcurrentPma::from_sorted`].
pub fn register_backends(registry: &Registry) {
    registry.register(BackendDef {
        name: "pma-sync",
        description: "concurrent PMA, synchronous updates (Figure 4 baseline)",
        label: |_| "PMA Baseline".to_string(),
        build: build_pma,
        build_loaded: Some(build_loaded_pma),
    });
    registry.register(BackendDef {
        name: "pma-1by1",
        description: "concurrent PMA, one-by-one asynchronous updates (Figure 4 \"1by1\")",
        label: |_| "PMA 1by1".to_string(),
        build: build_pma,
        build_loaded: Some(build_loaded_pma),
    });
    registry.register(BackendDef {
        name: "pma-batch",
        description:
            "concurrent PMA, batch asynchronous updates; arg = t_delay in ms (default 100)",
        label: |spec| format!("PMA Batch {}ms", spec.u64_arg(100).unwrap_or(100)),
        build: build_pma,
        build_loaded: Some(build_loaded_pma),
    });
    registry.register(BackendDef {
        name: "pma-seg",
        description: "concurrent PMA, batch updates with a custom segment capacity; \
                      arg = elements per segment (default 256, section 4.1 ablation)",
        label: |spec| format!("PMA seg={}", spec.u64_arg(256).unwrap_or(256)),
        build: build_pma,
        build_loaded: Some(build_loaded_pma),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pma_backend_builds_and_works() {
        let registry = Registry::new();
        register_backends(&registry);
        for spec in ["pma-sync", "pma-1by1", "pma-batch:1", "pma-seg:64"] {
            let map = registry.build(spec).unwrap();
            for k in 0..300i64 {
                map.insert(k, k);
            }
            map.flush();
            assert_eq!(map.len(), 300, "{spec}");
            assert_eq!(map.scan_range(10, 19).count, 10, "{spec}");
        }
    }

    #[test]
    fn every_pma_backend_bulk_loads_natively() {
        let registry = Registry::new();
        register_backends(&registry);
        let items: Vec<(i64, i64)> = (0..2_000i64).map(|k| (k * 2, -k)).collect();
        for spec in ["pma-sync", "pma-1by1", "pma-batch:1", "pma-seg:64"] {
            let map = registry.build_loaded(spec, &items).unwrap();
            assert_eq!(map.len(), 2_000, "{spec}");
            assert_eq!(map.get(100), Some(-50), "{spec}");
            assert_eq!(map.scan_all().count, 2_000, "{spec}");
        }
    }

    #[test]
    fn labels_match_paper_names() {
        let registry = Registry::new();
        register_backends(&registry);
        assert_eq!(registry.label("pma-sync").unwrap(), "PMA Baseline");
        assert_eq!(registry.label("pma-1by1").unwrap(), "PMA 1by1");
        assert_eq!(registry.label("pma-batch:100").unwrap(), "PMA Batch 100ms");
        assert_eq!(registry.label("pma-batch").unwrap(), "PMA Batch 100ms");
        assert_eq!(registry.label("pma-seg:256").unwrap(), "PMA seg=256");
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let registry = Registry::new();
        register_backends(&registry);
        assert!(registry.build("pma-batch:abc").is_err());
        assert!(
            registry.build("pma-seg:0").is_err(),
            "capacity 0 is invalid"
        );
    }
}
