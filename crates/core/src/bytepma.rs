//! [`BytePma`]: the concurrent PMA generalised to variable-length byte keys.
//!
//! The u64 engine keeps a packed array of fixed 8-byte keys; a byte-keyed
//! store cannot, so this engine keeps the *chunk* discipline (bounded sorted
//! runs behind a routed directory, rebuilt wholesale at structural changes)
//! and swaps the chunk payload for a **prefix-compressed run**:
//!
//! ```text
//! ByteChunk
//! ├── prefix:   Vec<u8>     shared by every key in the chunk
//! ├── suffixes: Vec<u8>     the keys' distinct tails, concatenated (arena)
//! ├── offsets:  Vec<u32>    n+1 cut points into the arena
//! └── values:   Vec<Value>  one 8-byte value per key
//! ```
//!
//! Key `i` is `prefix ++ suffixes[offsets[i]..offsets[i+1]]`. The shared
//! prefix is stored **once per chunk** instead of once per key, which is
//! where the bytes/key win over a naive `Vec<u8>`-per-key layout comes from
//! (one URL corpus chunk typically shares `https://domain/…` across its ~128
//! keys; see `docs/INTERNALS.md` for the measured numbers). The prefix is
//! recomputed whenever a chunk is rebuilt — bulk load, split, or an insert
//! whose key falls outside the current prefix — mirroring how the u64 engine
//! already reconstructs chunks at redistribute/resize.
//!
//! Routing uses [`ByteFences`]: fences' first eight bytes ride the existing
//! SIMD `route` kernel (scalar tie-break on equal heads), so byte routing
//! obeys `PMA_FORCE_SCALAR` like every other kernel.
//!
//! Concurrency follows the chunk-level copy-on-write design of the u64
//! engine: point ops take the directory read lock plus one chunk lock;
//! structural changes (split, empty-chunk merge) take the directory write
//! lock; [`BytePma::frozen`] pins every chunk's current [`std::sync::Arc`]
//! version under a brief directory write lock, and a later writer that finds
//! its chunk pinned copies it instead of mutating in place (`cow_copies`).

use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

use parking_lot::RwLock;
use pma_common::bytemap::{
    dedup_sorted_bytes_last_wins, ByteMemoryStats, ConcurrentByteMap, FrozenByteView,
};
use pma_common::simd::ByteFences;
use pma_common::{MaintenanceStats, PmaError, Value};

/// Tuning knobs for [`BytePma`].
#[derive(Debug, Clone, Copy)]
pub struct BytePmaConfig {
    /// Target entries per chunk: bulk load fills chunks to this size, and a
    /// chunk exceeding twice it is split.
    pub chunk_target: usize,
}

impl Default for BytePmaConfig {
    fn default() -> Self {
        Self { chunk_target: 128 }
    }
}

/// Longest common prefix of two byte strings.
fn lcp(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// One prefix-compressed sorted run (see the module docs for the layout).
#[derive(Debug, Clone, Default)]
struct ByteChunk {
    prefix: Vec<u8>,
    suffixes: Vec<u8>,
    offsets: Vec<u32>,
    values: Vec<Value>,
}

impl ByteChunk {
    fn empty() -> Self {
        Self {
            prefix: Vec::new(),
            suffixes: Vec::new(),
            offsets: vec![0],
            values: Vec::new(),
        }
    }

    /// Builds a chunk from a strictly sorted run, computing the shared
    /// prefix as the LCP of the first and last key (equal to the LCP of the
    /// whole sorted run).
    fn from_run(items: &[(Vec<u8>, Value)]) -> Self {
        let Some((first, _)) = items.first() else {
            return Self::empty();
        };
        let (last, _) = items.last().expect("non-empty");
        let prefix = first[..lcp(first, last)].to_vec();
        let suffix_bytes: usize = items.iter().map(|(key, _)| key.len() - prefix.len()).sum();
        let mut chunk = Self {
            prefix,
            suffixes: Vec::with_capacity(suffix_bytes),
            offsets: Vec::with_capacity(items.len() + 1),
            values: Vec::with_capacity(items.len()),
        };
        chunk.offsets.push(0);
        for (key, value) in items {
            debug_assert!(key.starts_with(&chunk.prefix));
            chunk.suffixes.extend_from_slice(&key[chunk.prefix.len()..]);
            chunk.offsets.push(chunk.suffixes.len() as u32);
            chunk.values.push(*value);
        }
        chunk
    }

    fn len(&self) -> usize {
        self.values.len()
    }

    fn suffix(&self, i: usize) -> &[u8] {
        &self.suffixes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Compares stored key `i` (= `prefix ++ suffix(i)`) to `key` without
    /// materialising it.
    fn cmp_key(&self, i: usize, key: &[u8]) -> Ordering {
        let shared = self.prefix.len().min(key.len());
        match self.prefix[..shared].cmp(&key[..shared]) {
            Ordering::Equal if key.len() < self.prefix.len() => {
                // `key` is a proper prefix of the chunk prefix, so every
                // stored key (which extends the prefix) is greater.
                Ordering::Greater
            }
            Ordering::Equal => self.suffix(i).cmp(&key[self.prefix.len()..]),
            ord => ord,
        }
    }

    /// `slice::binary_search`-shaped probe for `key`.
    fn search(&self, key: &[u8]) -> Result<usize, usize> {
        let mut lo = 0;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.cmp_key(mid, key) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Shrinks the shared prefix to `keep` bytes, pushing the cut bytes back
    /// into every suffix (a full arena rebuild). Required before inserting a
    /// key that does not extend the current prefix.
    fn reprefix(&mut self, keep: usize) {
        debug_assert!(keep <= self.prefix.len());
        if keep == self.prefix.len() {
            return;
        }
        let moved = self.prefix[keep..].to_vec();
        let mut suffixes = Vec::with_capacity(self.suffixes.len() + moved.len() * self.len());
        let mut offsets = Vec::with_capacity(self.offsets.len());
        offsets.push(0_u32);
        for i in 0..self.len() {
            suffixes.extend_from_slice(&moved);
            suffixes.extend_from_slice(self.suffix(i));
            offsets.push(suffixes.len() as u32);
        }
        self.prefix.truncate(keep);
        self.suffixes = suffixes;
        self.offsets = offsets;
    }

    /// Splices `key` in at slot `idx` (which must be its sorted position).
    /// Handles prefix shrinkage when `key` falls outside the shared prefix;
    /// returns true when that rebuild happened.
    fn insert_at(&mut self, idx: usize, key: &[u8], value: Value) -> bool {
        let rebuilt = !key.starts_with(&self.prefix);
        if rebuilt {
            self.reprefix(lcp(&self.prefix, key));
        }
        let suffix = &key[self.prefix.len()..];
        let at = self.offsets[idx] as usize;
        self.suffixes.splice(at..at, suffix.iter().copied());
        let delta = suffix.len() as u32;
        self.offsets.insert(idx + 1, self.offsets[idx] + delta);
        for offset in &mut self.offsets[idx + 2..] {
            *offset += delta;
        }
        self.values.insert(idx, value);
        rebuilt
    }

    fn remove_at(&mut self, idx: usize) -> Value {
        let start = self.offsets[idx] as usize;
        let end = self.offsets[idx + 1] as usize;
        self.suffixes.drain(start..end);
        let delta = (end - start) as u32;
        self.offsets.remove(idx + 1);
        for offset in &mut self.offsets[idx + 1..] {
            *offset -= delta;
        }
        self.values.remove(idx)
    }

    /// Materialises key `i` into `buf` (cleared first).
    fn write_key(&self, i: usize, buf: &mut Vec<u8>) {
        buf.clear();
        buf.extend_from_slice(&self.prefix);
        buf.extend_from_slice(self.suffix(i));
    }

    /// Materialises every entry as owned pairs (split/debug path).
    fn to_pairs(&self) -> Vec<(Vec<u8>, Value)> {
        (0..self.len())
            .map(|i| {
                let mut key = Vec::with_capacity(self.prefix.len() + self.suffix(i).len());
                key.extend_from_slice(&self.prefix);
                key.extend_from_slice(self.suffix(i));
                (key, self.values[i])
            })
            .collect()
    }

    /// Logical key payload: what the keys would occupy fully expanded.
    fn key_bytes(&self) -> usize {
        self.prefix.len() * self.len() + self.suffixes.len()
    }

    /// Heap actually owned by the chunk.
    fn heap_bytes(&self) -> usize {
        self.prefix.capacity()
            + self.suffixes.capacity()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<Value>()
            + std::mem::size_of::<Self>()
    }
}

struct Directory {
    fences: Arc<ByteFences>,
    chunks: Vec<RwLock<Arc<ByteChunk>>>,
}

impl Directory {
    fn fence_keys(&self) -> Vec<Vec<u8>> {
        (0..self.fences.len())
            .map(|i| self.fences.fence(i).to_vec())
            .collect()
    }
}

/// A concurrent, byte-keyed PMA: prefix-compressed chunks behind a SIMD-
/// routed fence directory, with chunk-level copy-on-write snapshots.
///
/// Registry spec: `bpma[:<chunk_target>]` (default 128).
///
/// ```
/// use pma_core::bytepma::{BytePma, BytePmaConfig};
/// use pma_common::bytemap::ConcurrentByteMap;
///
/// let map = BytePma::new(BytePmaConfig { chunk_target: 4 }).unwrap();
/// for id in 0..64_i64 {
///     map.insert(format!("user:{id:04}").as_bytes(), id);
/// }
/// assert_eq!(map.len(), 64);
/// assert_eq!(map.get(b"user:0007"), Some(7));
///
/// // First-class prefix scan: exactly the "user:000x" decade.
/// assert_eq!(map.prefix_stats(b"user:000").count, 10);
///
/// // Point-in-time snapshot, unaffected by later writes.
/// let frozen = map.frozen().unwrap();
/// map.insert(b"user:9999", -1);
/// assert_eq!(frozen.len(), 64);
/// assert_eq!(frozen.get(b"user:9999"), None);
/// ```
pub struct BytePma {
    dir: RwLock<Directory>,
    config: BytePmaConfig,
    len: AtomicUsize,
    splits: AtomicU64,
    merges: AtomicU64,
    cow_copies: AtomicU64,
    reprefix_rebuilds: AtomicU64,
}

impl BytePma {
    /// Creates an empty byte PMA.
    pub fn new(config: BytePmaConfig) -> Result<Self, PmaError> {
        if config.chunk_target < 2 {
            return Err(PmaError::invalid(
                "chunk_target",
                format!("must be at least 2, got {}", config.chunk_target),
            ));
        }
        Ok(Self {
            dir: RwLock::new(Directory {
                fences: Arc::new(ByteFences::from_keys::<&[u8]>(&[b""])),
                chunks: vec![RwLock::new(Arc::new(ByteChunk::empty()))],
            }),
            config,
            len: AtomicUsize::new(0),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            cow_copies: AtomicU64::new(0),
            reprefix_rebuilds: AtomicU64::new(0),
        })
    }

    /// Bulk-loads from a key-sorted run (non-decreasing; later duplicates
    /// win), laying out chunks at exactly `chunk_target` entries with their
    /// shared prefixes computed once — the byte counterpart of the u64
    /// engine's native `from_sorted` loaders.
    pub fn from_sorted_bytes(
        config: BytePmaConfig,
        items: &[(Vec<u8>, Value)],
    ) -> Result<Self, PmaError> {
        let map = Self::new(config)?;
        let items = dedup_sorted_bytes_last_wins(items);
        if items.is_empty() {
            return Ok(map);
        }
        let mut fences: Vec<Vec<u8>> = vec![Vec::new()];
        let mut chunks = Vec::new();
        for run in items.chunks(config.chunk_target.max(2)) {
            if !chunks.is_empty() {
                fences.push(run[0].0.clone());
            }
            chunks.push(RwLock::new(Arc::new(ByteChunk::from_run(run))));
        }
        *map.dir.write() = Directory {
            fences: Arc::new(ByteFences::from_keys(&fences)),
            chunks,
        };
        map.len.store(items.len(), AtomicOrdering::Relaxed);
        Ok(map)
    }

    /// Copy-on-write aware mutable access to a chunk version.
    fn chunk_mut<'a>(&self, slot: &'a mut Arc<ByteChunk>) -> &'a mut ByteChunk {
        if Arc::strong_count(slot) > 1 {
            self.cow_copies.fetch_add(1, AtomicOrdering::Relaxed);
        }
        Arc::make_mut(slot)
    }

    /// Splits the chunk currently holding `key` if it is still over the
    /// split threshold (re-validated under the directory write lock).
    fn split_covering_chunk(&self, key: &[u8]) {
        let mut dir = self.dir.write();
        let idx = dir.fences.route(key);
        let pairs = {
            let chunk = dir.chunks[idx].read();
            if chunk.len() <= self.config.chunk_target * 2 {
                return; // a concurrent split already handled it
            }
            chunk.to_pairs()
        };
        let mid = pairs.len() / 2;
        let (left, right) = pairs.split_at(mid);
        let right_fence = right[0].0.clone();
        let mut fences = dir.fence_keys();
        fences.insert(idx + 1, right_fence);
        dir.chunks[idx] = RwLock::new(Arc::new(ByteChunk::from_run(left)));
        dir.chunks
            .insert(idx + 1, RwLock::new(Arc::new(ByteChunk::from_run(right))));
        dir.fences = Arc::new(ByteFences::from_keys(&fences));
        self.splits.fetch_add(1, AtomicOrdering::Relaxed);
    }

    /// Drops one empty chunk (folding its key range into the left
    /// neighbour), keeping the directory dense after heavy removals.
    fn merge_empty_chunk(&self) {
        let mut dir = self.dir.write();
        if dir.chunks.len() <= 1 {
            return;
        }
        let Some(idx) = dir.chunks.iter().position(|c| c.read().len() == 0) else {
            return;
        };
        let mut fences = dir.fence_keys();
        fences.remove(idx);
        dir.chunks.remove(idx);
        dir.fences = Arc::new(ByteFences::from_keys(&fences));
        self.merges.fetch_add(1, AtomicOrdering::Relaxed);
    }
}

impl ConcurrentByteMap for BytePma {
    fn insert(&self, key: &[u8], value: Value) {
        let needs_split = {
            let dir = self.dir.read();
            let idx = dir.fences.route(key);
            let mut slot = dir.chunks[idx].write();
            match slot.search(key) {
                Ok(pos) => {
                    self.chunk_mut(&mut slot).values[pos] = value;
                    false
                }
                Err(pos) => {
                    let chunk = self.chunk_mut(&mut slot);
                    if chunk.insert_at(pos, key, value) {
                        self.reprefix_rebuilds.fetch_add(1, AtomicOrdering::Relaxed);
                    }
                    self.len.fetch_add(1, AtomicOrdering::Relaxed);
                    chunk.len() > self.config.chunk_target * 2
                }
            }
        };
        if needs_split {
            self.split_covering_chunk(key);
        }
    }

    fn remove(&self, key: &[u8]) -> Option<Value> {
        let (removed, emptied) = {
            let dir = self.dir.read();
            let idx = dir.fences.route(key);
            let mut slot = dir.chunks[idx].write();
            match slot.search(key) {
                Ok(pos) => {
                    let chunk = self.chunk_mut(&mut slot);
                    let value = chunk.remove_at(pos);
                    self.len.fetch_sub(1, AtomicOrdering::Relaxed);
                    (Some(value), chunk.len() == 0)
                }
                Err(_) => (None, false),
            }
        };
        if emptied {
            self.merge_empty_chunk();
        }
        removed
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        let dir = self.dir.read();
        let chunk = {
            let idx = dir.fences.route(key);
            dir.chunks[idx].read()
        };
        let pos = chunk.search(key).ok()?;
        Some(chunk.values[pos])
    }

    fn len(&self) -> usize {
        self.len.load(AtomicOrdering::Relaxed)
    }

    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
        // Pin the chunk versions covering the range under the directory read
        // lock, then visit without holding any chunk lock: each chunk is a
        // consistent snapshot, writers are never blocked by the visitor.
        let pinned: Vec<Arc<ByteChunk>> = {
            let dir = self.dir.read();
            let start = dir.fences.route(lo);
            (start..dir.chunks.len())
                .take_while(|&idx| idx == start || hi.is_none_or(|hi| dir.fences.fence(idx) < hi))
                .map(|idx| Arc::clone(&dir.chunks[idx].read()))
                .collect()
        };
        let mut key = Vec::new();
        for chunk in pinned {
            let first = chunk.search(lo).unwrap_or_else(|pos| pos);
            for i in first..chunk.len() {
                chunk.write_key(i, &mut key);
                if let Some(hi) = hi {
                    if key.as_slice() >= hi {
                        return;
                    }
                }
                visitor(&key, chunk.values[i]);
            }
        }
    }

    fn flush(&self) {}

    fn frozen(&self) -> Option<Box<dyn FrozenByteView>> {
        // The write lock excludes every point op for the O(chunks) capture,
        // pinning one consistent version of each chunk.
        let dir = self.dir.write();
        let chunks: Vec<Arc<ByteChunk>> =
            dir.chunks.iter().map(|c| Arc::clone(&c.read())).collect();
        let len = chunks.iter().map(|c| c.len()).sum();
        Some(Box::new(FrozenBytePma {
            fences: Arc::clone(&dir.fences),
            chunks,
            len,
        }))
    }

    fn memory_stats(&self) -> Option<ByteMemoryStats> {
        let dir = self.dir.read();
        let mut stats = ByteMemoryStats {
            entries: 0,
            heap_bytes: dir.fences.heap_bytes()
                + dir.chunks.capacity() * std::mem::size_of::<RwLock<Arc<ByteChunk>>>(),
            key_bytes: 0,
        };
        for chunk in &dir.chunks {
            let chunk = chunk.read();
            stats.entries += chunk.len();
            stats.heap_bytes += chunk.heap_bytes();
            stats.key_bytes += chunk.key_bytes();
        }
        Some(stats)
    }

    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        let pinned = {
            let dir = self.dir.read();
            dir.chunks
                .iter()
                .filter(|c| Arc::strong_count(&c.read()) > 1)
                .count() as u64
        };
        Some(MaintenanceStats {
            splits: self.splits.load(AtomicOrdering::Relaxed),
            merges: self.merges.load(AtomicOrdering::Relaxed),
            cow_copies: self.cow_copies.load(AtomicOrdering::Relaxed),
            pinned_generations: pinned,
            // Reprefix rebuilds are chunk reconstructions forced by a key
            // escaping the shared prefix — the byte engine's analogue of a
            // redistribute, reported in the closest existing column.
            chase_rounds: self.reprefix_rebuilds.load(AtomicOrdering::Relaxed),
            ..MaintenanceStats::default()
        })
    }

    fn name(&self) -> &'static str {
        "byte-pma"
    }
}

/// Point-in-time snapshot of a [`BytePma`] (see [`BytePma::frozen`]).
struct FrozenBytePma {
    fences: Arc<ByteFences>,
    chunks: Vec<Arc<ByteChunk>>,
    len: usize,
}

impl FrozenByteView for FrozenBytePma {
    fn get(&self, key: &[u8]) -> Option<Value> {
        let chunk = &self.chunks[self.fences.route(key)];
        let pos = chunk.search(key).ok()?;
        Some(chunk.values[pos])
    }

    fn len(&self) -> usize {
        self.len
    }

    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
        let start = self.fences.route(lo);
        let mut key = Vec::new();
        for idx in start..self.chunks.len() {
            if idx > start && hi.is_some_and(|hi| self.fences.fence(idx) >= hi) {
                return;
            }
            let chunk = &self.chunks[idx];
            let first = chunk.search(lo).unwrap_or_else(|pos| pos);
            for i in first..chunk.len() {
                chunk.write_key(i, &mut key);
                if let Some(hi) = hi {
                    if key.as_slice() >= hi {
                        return;
                    }
                }
                visitor(&key, chunk.values[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pma_common::bytemap::ByteScanStats;
    use std::collections::BTreeMap;

    fn pma(target: usize) -> BytePma {
        BytePma::new(BytePmaConfig {
            chunk_target: target,
        })
        .unwrap()
    }

    fn url(i: usize) -> Vec<u8> {
        format!("https://example.com/users/{i:05}/profile").into_bytes()
    }

    #[test]
    fn point_ops_agree_with_model_across_splits() {
        let map = pma(4);
        let mut model = BTreeMap::new();
        for i in (0..200).rev() {
            map.insert(&url(i), i as Value);
            model.insert(url(i), i as Value);
        }
        for i in (0..200).step_by(3) {
            assert_eq!(map.remove(&url(i)), model.remove(&url(i)));
        }
        assert_eq!(map.len(), model.len());
        for i in 0..200 {
            assert_eq!(map.get(&url(i)), model.get(&url(i)).copied(), "key {i}");
        }
        let stats = map.maintenance_stats().unwrap();
        assert!(stats.splits > 0, "200 keys at target 4 must split");
    }

    #[test]
    fn chunks_share_prefixes() {
        let items: Vec<(Vec<u8>, Value)> = (0..256).map(|i| (url(i), i as Value)).collect();
        let map = BytePma::from_sorted_bytes(BytePmaConfig { chunk_target: 64 }, &items).unwrap();
        let mem = map.memory_stats().unwrap();
        assert_eq!(mem.entries, 256);
        // Every key is 39 bytes; the chunk prefix (>= "https://example.com/
        // users/") is stored once per chunk, so the arena holds far less
        // than the logical key payload.
        assert_eq!(mem.key_bytes, 256 * url(0).len());
        assert!(
            mem.heap_bytes < mem.key_bytes,
            "prefix compression must beat the expanded key payload: {mem:?}"
        );
    }

    #[test]
    fn insert_outside_prefix_triggers_reprefix() {
        // Point inserts into a fresh chunk never grow the prefix (it is
        // computed at rebuild time), so establish it with a bulk load.
        let items = vec![(b"aaaa-0001".to_vec(), 1), (b"aaaa-0002".to_vec(), 2)];
        let map = BytePma::from_sorted_bytes(BytePmaConfig { chunk_target: 64 }, &items).unwrap();
        // The chunk's prefix is now "aaaa-000"; this key shares only "aa".
        map.insert(b"aab", 3);
        assert_eq!(map.get(b"aaaa-0001"), Some(1));
        assert_eq!(map.get(b"aaaa-0002"), Some(2));
        assert_eq!(map.get(b"aab"), Some(3));
        let stats = map.maintenance_stats().unwrap();
        assert!(stats.chase_rounds > 0, "reprefix rebuild must be counted");
    }

    #[test]
    fn range_and_prefix_scans_are_ordered_and_bounded() {
        let map = pma(8);
        for i in 0..100 {
            map.insert(&url(i), i as Value);
        }
        map.insert(b"aaa", -1);
        map.insert(b"zzz", -2);
        let mut seen = Vec::new();
        map.prefix(b"https://example.com/users/0000", &mut |key, value| {
            seen.push((key.to_vec(), value));
        });
        assert_eq!(seen.len(), 10);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "ascending order");
        assert_eq!(seen[0].1, 0);
        assert_eq!(seen[9].1, 9);

        // Half-open range semantics: hi is excluded.
        let stats = map.scan_range(&url(10), Some(&url(20)));
        assert_eq!(stats.count, 10);
        assert_eq!(map.scan_all().count, 102);
    }

    #[test]
    fn empty_and_tiny_keys_are_valid() {
        let map = pma(4);
        map.insert(b"", 0);
        map.insert(&[0x00], 1);
        map.insert(&[0x00, 0x00], 2);
        map.insert(&[0xFF], 3);
        assert_eq!(map.get(b""), Some(0));
        assert_eq!(map.get(&[0x00]), Some(1));
        assert_eq!(map.len(), 4);
        let mut keys = Vec::new();
        map.range(&[], None, &mut |key, _| keys.push(key.to_vec()));
        assert_eq!(keys, vec![vec![], vec![0x00], vec![0x00, 0x00], vec![0xFF]]);
        assert_eq!(map.remove(b""), Some(0));
        assert_eq!(map.get(b""), None);
    }

    #[test]
    fn frozen_views_are_point_in_time_and_count_cow() {
        let map = pma(4);
        for i in 0..40 {
            map.insert(&url(i), i as Value);
        }
        let frozen = map.frozen().unwrap();
        for i in 0..40 {
            map.insert(&url(i), -(i as Value));
            map.insert(&url(i + 100), 7);
        }
        assert_eq!(frozen.len(), 40);
        for i in 0..40 {
            assert_eq!(frozen.get(&url(i)), Some(i as Value), "old value pinned");
            assert_eq!(frozen.get(&url(i + 100)), None, "new key invisible");
        }
        let mut stats = ByteScanStats::default();
        frozen.range(&[], None, &mut |key, value| stats.visit(key, value));
        assert_eq!(stats.count, 40);
        assert!(
            map.maintenance_stats().unwrap().cow_copies > 0,
            "writes under a pinned snapshot must copy"
        );
    }

    #[test]
    fn bulk_load_matches_point_inserts() {
        let mut items: Vec<(Vec<u8>, Value)> = (0..333).map(|i| (url(i), i as Value)).collect();
        items.push((url(100), 999)); // duplicate, sorts after (url(100), 100): last wins
        items.sort();
        let loaded =
            BytePma::from_sorted_bytes(BytePmaConfig { chunk_target: 16 }, &items).unwrap();
        let pointwise = pma(16);
        for (key, value) in &items {
            pointwise.insert(key, *value);
        }
        assert_eq!(loaded.len(), 333);
        assert_eq!(loaded.len(), pointwise.len());
        assert_eq!(loaded.scan_all(), pointwise.scan_all());
        assert_eq!(loaded.get(&url(100)), Some(999));
    }

    #[test]
    fn removing_whole_chunks_merges_them_away() {
        let items: Vec<(Vec<u8>, Value)> = (0..128).map(|i| (url(i), i as Value)).collect();
        let map = BytePma::from_sorted_bytes(BytePmaConfig { chunk_target: 8 }, &items).unwrap();
        for (key, _) in &items {
            map.remove(key);
        }
        assert_eq!(map.len(), 0);
        assert!(map.maintenance_stats().unwrap().merges > 0);
        // The directory still routes correctly after the merges.
        map.insert(&url(5), 55);
        assert_eq!(map.get(&url(5)), Some(55));
        assert_eq!(map.scan_all().count, 1);
    }

    #[test]
    fn concurrent_writers_and_scanners_converge() {
        let map = Arc::new(pma(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        let key = format!("w{t}:{i:04}").into_bytes();
                        map.insert(&key, (t * 1000 + i) as Value);
                        if i % 16 == 0 {
                            let _ = map.scan_range(b"w0", Some(b"w3"));
                            let _ = map.frozen();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(map.len(), 1000);
        let stats = map.scan_all();
        assert_eq!(stats.count, 1000);
    }
}
