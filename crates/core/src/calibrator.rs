//! The calibrator tree (paper section 2).
//!
//! The calibrator tree is a *logical* binary tree over the segments of the
//! PMA: its leaves are the segments, each internal node is a *window* grouping
//! `2^(level-1)` consecutive segments, and the root covers the whole array.
//! It is never materialised — this module only answers the questions the
//! rebalancing logic asks of it: what is the window of a given segment at a
//! given level, what are the density thresholds at that level, and, walking
//! bottom-up from a segment, which is the first window whose density is within
//! threshold.

use crate::params::DensityThresholds;
use pma_common::util::{is_power_of_two, log2_exact};

/// A window of the calibrator tree: a contiguous, aligned run of segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Index of the first segment of the window.
    pub start_segment: usize,
    /// Number of segments in the window (a power of two).
    pub num_segments: usize,
    /// Height of the window in the calibrator tree; 1 = a single segment,
    /// `height()` = the whole array.
    pub level: u32,
}

impl Window {
    /// Index one past the last segment of the window.
    #[inline]
    pub fn end_segment(&self) -> usize {
        self.start_segment + self.num_segments
    }

    /// Whether the window contains the given segment.
    #[inline]
    pub fn contains(&self, segment: usize) -> bool {
        segment >= self.start_segment && segment < self.end_segment()
    }
}

/// The (implicit) calibrator tree for an array of `num_segments` segments of
/// `segment_capacity` slots each.
#[derive(Debug, Clone)]
pub struct CalibratorTree {
    num_segments: usize,
    segment_capacity: usize,
    thresholds: DensityThresholds,
    height: u32,
}

impl CalibratorTree {
    /// Builds the calibrator tree description.
    ///
    /// # Panics
    /// Panics if `num_segments` is not a power of two or `segment_capacity`
    /// is zero; both are internal invariants of the PMA.
    pub fn new(
        num_segments: usize,
        segment_capacity: usize,
        thresholds: DensityThresholds,
    ) -> Self {
        assert!(
            is_power_of_two(num_segments),
            "the number of segments must be a power of two, got {num_segments}"
        );
        assert!(segment_capacity > 0, "segment capacity must be non-zero");
        let height = log2_exact(num_segments) + 1;
        Self {
            num_segments,
            segment_capacity,
            thresholds,
            height,
        }
    }

    /// Number of segments (leaves of the tree).
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// Capacity of one segment in element slots.
    #[inline]
    pub fn segment_capacity(&self) -> usize {
        self.segment_capacity
    }

    /// Total number of element slots in the array.
    #[inline]
    pub fn total_capacity(&self) -> usize {
        self.num_segments * self.segment_capacity
    }

    /// Height `h` of the tree: a single-segment array has height 1.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The thresholds the tree interpolates between.
    #[inline]
    pub fn thresholds(&self) -> &DensityThresholds {
        &self.thresholds
    }

    /// Upper density threshold `tau_k` at the given level (1-based).
    ///
    /// `tau_k = tau_h + (tau_1 - tau_h) * (h - k) / (h - 1)`; for a
    /// single-level tree the root thresholds apply.
    pub fn upper_threshold(&self, level: u32) -> f64 {
        debug_assert!(level >= 1 && level <= self.height);
        if self.height == 1 {
            return self.thresholds.tau_root;
        }
        let h = f64::from(self.height);
        let k = f64::from(level);
        self.thresholds.tau_root
            + (self.thresholds.tau_leaf - self.thresholds.tau_root) * (h - k) / (h - 1.0)
    }

    /// Lower density threshold `rho_k` at the given level (1-based).
    ///
    /// `rho_k = rho_h - (rho_h - rho_1) * (h - k) / (h - 1)`.
    pub fn lower_threshold(&self, level: u32) -> f64 {
        debug_assert!(level >= 1 && level <= self.height);
        if self.height == 1 {
            return self.thresholds.rho_root;
        }
        let h = f64::from(self.height);
        let k = f64::from(level);
        self.thresholds.rho_root
            - (self.thresholds.rho_root - self.thresholds.rho_leaf) * (h - k) / (h - 1.0)
    }

    /// Largest cardinality the whole array may hold without the root window
    /// exceeding its upper density threshold `tau_h`. Freshly resized and
    /// bulk-loaded arrays are presized so their element count stays at or
    /// below this bound (the tests and proptests assert it).
    pub fn max_root_fill(&self) -> usize {
        (self.thresholds.tau_root * self.total_capacity() as f64).floor() as usize
    }

    /// The window containing `segment` at the given level.
    pub fn window_at(&self, segment: usize, level: u32) -> Window {
        debug_assert!(segment < self.num_segments);
        debug_assert!(level >= 1 && level <= self.height);
        let size = 1usize << (level - 1);
        let start = (segment / size) * size;
        Window {
            start_segment: start,
            num_segments: size,
            level,
        }
    }

    /// Density of a window given the total number of elements it holds.
    #[inline]
    pub fn density(&self, window: &Window, cardinality: usize) -> f64 {
        cardinality as f64 / (window.num_segments * self.segment_capacity) as f64
    }

    /// Walks bottom-up from `segment` and returns the first window whose
    /// density — counting `extra` additional elements about to be inserted —
    /// does not exceed the upper threshold of its level. Returns `None` when
    /// even the root is over threshold, i.e. the array must be resized.
    ///
    /// `cardinality_of(segment)` must return the current number of elements in
    /// that segment.
    pub fn find_window_for_insert<F>(
        &self,
        segment: usize,
        extra: usize,
        mut cardinality_of: F,
    ) -> Option<Window>
    where
        F: FnMut(usize) -> usize,
    {
        let mut cardinality = 0usize;
        let mut counted = segment..segment; // empty range, grown level by level
        for level in 1..=self.height {
            let window = self.window_at(segment, level);
            // Only count the segments not already accumulated at lower levels.
            for s in window.start_segment..counted.start {
                cardinality += cardinality_of(s);
            }
            for s in counted.end..window.end_segment() {
                cardinality += cardinality_of(s);
            }
            counted = window.start_segment..window.end_segment();
            let density = self.density(&window, cardinality + extra);
            // For multi-segment windows, additionally require room for one gap
            // per segment: the redistribution leaves that gap whenever it can,
            // which guarantees the insertion that triggered the walk finds a
            // free slot in whichever segment its key routes to.
            let leaves_gap = window.num_segments == 1
                || cardinality + extra <= window.num_segments * (self.segment_capacity - 1);
            if density <= self.upper_threshold(level) && leaves_gap {
                return Some(window);
            }
        }
        None
    }

    /// Walks bottom-up from `segment` and returns the first window whose
    /// density — after removing `removed` elements — is at least the lower
    /// threshold of its level. Returns `None` when even the root is under
    /// threshold, i.e. the array should be downsized.
    pub fn find_window_for_delete<F>(&self, segment: usize, mut cardinality_of: F) -> Option<Window>
    where
        F: FnMut(usize) -> usize,
    {
        let mut cardinality = 0usize;
        let mut counted = segment..segment;
        for level in 1..=self.height {
            let window = self.window_at(segment, level);
            for s in window.start_segment..counted.start {
                cardinality += cardinality_of(s);
            }
            for s in counted.end..window.end_segment() {
                cardinality += cardinality_of(s);
            }
            counted = window.start_segment..window.end_segment();
            let density = self.density(&window, cardinality);
            if density >= self.lower_threshold(level) {
                return Some(window);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict_tree(segments: usize, capacity: usize) -> CalibratorTree {
        CalibratorTree::new(segments, capacity, DensityThresholds::strict())
    }

    #[test]
    fn figure_1_thresholds() {
        // Figure 1a: capacity 12 is not a power of two in our implementation,
        // so we reproduce the same tree shape with 4 segments of 4 slots and
        // check the interpolated thresholds the figure labels: at height 3
        // (the root) rho = tau = 0.75; at height 2 rho_2 = 0.625, tau_2 =
        // 0.875 for the strict thresholds rho_1 = 0.5, tau_1 = 1.
        let t = strict_tree(4, 4);
        assert_eq!(t.height(), 3);
        assert!((t.upper_threshold(3) - 0.75).abs() < 1e-9);
        assert!((t.lower_threshold(3) - 0.75).abs() < 1e-9);
        assert!((t.upper_threshold(2) - 0.875).abs() < 1e-9);
        assert!((t.lower_threshold(2) - 0.625).abs() < 1e-9);
        assert!((t.upper_threshold(1) - 1.0).abs() < 1e-9);
        assert!((t.lower_threshold(1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn thresholds_are_monotone_in_level() {
        let t = strict_tree(64, 16);
        for level in 1..t.height() {
            assert!(t.upper_threshold(level) >= t.upper_threshold(level + 1));
            assert!(t.lower_threshold(level) <= t.lower_threshold(level + 1));
        }
    }

    #[test]
    fn single_segment_tree_uses_root_thresholds() {
        let t = strict_tree(1, 8);
        assert_eq!(t.height(), 1);
        assert_eq!(t.upper_threshold(1), 0.75);
        assert_eq!(t.lower_threshold(1), 0.75);
    }

    #[test]
    fn window_at_is_aligned_and_sized() {
        let t = strict_tree(8, 4);
        assert_eq!(
            t.window_at(5, 1),
            Window {
                start_segment: 5,
                num_segments: 1,
                level: 1
            }
        );
        assert_eq!(
            t.window_at(5, 2),
            Window {
                start_segment: 4,
                num_segments: 2,
                level: 2
            }
        );
        assert_eq!(
            t.window_at(5, 3),
            Window {
                start_segment: 4,
                num_segments: 4,
                level: 3
            }
        );
        assert_eq!(
            t.window_at(5, 4),
            Window {
                start_segment: 0,
                num_segments: 8,
                level: 4
            }
        );
        assert!(t.window_at(5, 3).contains(7));
        assert!(!t.window_at(5, 3).contains(3));
    }

    #[test]
    fn find_window_for_insert_walks_up_until_density_fits() {
        // 4 segments of 4 slots; segment 2 full, neighbours nearly full.
        let cards = [4usize, 3, 4, 1];
        let t = strict_tree(4, 4);
        // Inserting one more into segment 2: level 1 density = 5/4 > 1.0,
        // level 2 (segments 2-3) = 6/8 <= 0.875 -> window {2,3}.
        let w = t
            .find_window_for_insert(2, 1, |s| cards[s])
            .expect("a window must fit");
        assert_eq!(w.start_segment, 2);
        assert_eq!(w.num_segments, 2);
        assert_eq!(w.level, 2);
    }

    #[test]
    fn find_window_for_insert_reports_resize_when_root_over_threshold() {
        let cards = [3usize, 4, 4, 4];
        let t = strict_tree(4, 4);
        // level 1: 5/4 > 1, level 2 (segments 2-3): 9/8 > 0.875,
        // level 3 (root): 16/16 = 1 > 0.75 -> no window, the array must grow.
        assert!(t.find_window_for_insert(2, 1, |s| cards[s]).is_none());
    }

    #[test]
    fn find_window_for_insert_level1_means_no_rebalance_needed() {
        let cards = [2usize, 3, 1, 1];
        let t = strict_tree(4, 4);
        let w = t.find_window_for_insert(1, 1, |s| cards[s]).unwrap();
        assert_eq!(w.level, 1);
        assert_eq!(w.start_segment, 1);
    }

    #[test]
    fn find_window_for_delete_walks_up_until_density_fits() {
        // Segment 1 nearly empty, siblings well filled.
        let cards = [3usize, 1, 3, 3];
        let t = strict_tree(4, 4);
        // level 1: 1/4 < 0.5; level 2 (segments 0-1): 4/8 = 0.5 < 0.625;
        // level 3 (root): 10/16 = 0.625 < 0.75 -> no window; downsize.
        assert!(t.find_window_for_delete(1, |s| cards[s]).is_none());

        let cards = [4usize, 1, 4, 4];
        // level 2: 5/8 = 0.625 >= 0.625 -> window {0,1}.
        let w = t.find_window_for_delete(1, |s| cards[s]).unwrap();
        assert_eq!(w.level, 2);
        assert_eq!(w.start_segment, 0);
        assert_eq!(w.num_segments, 2);
    }

    #[test]
    fn max_root_fill_matches_root_threshold() {
        let t = strict_tree(4, 4);
        // tau_root = 0.75 over 16 slots.
        assert_eq!(t.max_root_fill(), 12);
        let w = t.window_at(0, t.height());
        assert!(t.density(&w, t.max_root_fill()) <= t.upper_threshold(t.height()));
        assert!(t.density(&w, t.max_root_fill() + 1) > t.upper_threshold(t.height()));
    }

    #[test]
    fn density_computation() {
        let t = strict_tree(4, 4);
        let w = t.window_at(0, 3);
        assert!((t.density(&w, 8) - 0.5).abs() < 1e-9);
        assert!((t.density(&w, 16) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_segments_panics() {
        let _ = strict_tree(3, 4);
    }
}
