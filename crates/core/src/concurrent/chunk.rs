//! Storage of one gate's chunk: a fixed number of consecutive PMA segments.
//!
//! A chunk is the unit protected by a gate latch (paper section 3.1). Inside a
//! chunk the layout is the classic PMA layout: each segment owns a fixed slot
//! range, its live elements are packed at the start of that range and sorted,
//! and the chunk-wide key order is maintained across segments.
//!
//! All methods take `&self` / `&mut self`: the *caller* (the concurrent PMA
//! and the rebalancer) is responsible for holding the owning gate's latch in
//! the appropriate mode before touching a chunk.

use crate::sequential::adaptive::AdaptivePredictor;
use pma_common::{simd, Key, ScanStats, Value, KEY_MIN};

/// Outcome of [`ChunkData::try_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkInsert {
    /// A new element was stored.
    Inserted,
    /// The key already existed; its previous value is returned.
    Replaced(Value),
    /// The target segment (local index) is full; the caller must rebalance
    /// before retrying.
    SegmentFull(usize),
}

/// The elements of one chunk (one gate's worth of segments).
///
/// `Clone` exists for the copy-on-write path: when a frozen snapshot still
/// holds a chunk's version, the next in-place mutation clones the payload
/// (all slot arrays plus the predictor state) instead of mutating the shared
/// one. See [`super::gate::Gate::chunk_mut_cow`].
#[derive(Debug, Clone)]
pub struct ChunkData {
    segment_capacity: usize,
    /// Live elements per segment.
    cards: Box<[u32]>,
    /// Slot array: segment `s` owns `[s * B, (s + 1) * B)`.
    keys: Box<[Key]>,
    values: Box<[Value]>,
    /// Contiguous routing prefix: `mins[s]` is the minimum key of segment
    /// `s`, with empty segments inheriting the previous non-empty segment's
    /// minimum (leading empties hold [`KEY_MIN`]). The array is therefore
    /// non-decreasing and [`ChunkData::find_segment`] routes through it with
    /// one branchless vectorised count instead of touching every segment's
    /// slot range.
    mins: Box<[Key]>,
    /// Per-segment insertion/deletion activity, used by adaptive rebalancing.
    predictor: AdaptivePredictor,
}

impl ChunkData {
    /// Creates an empty chunk of `num_segments` segments of
    /// `segment_capacity` slots each.
    pub fn new(num_segments: usize, segment_capacity: usize) -> Self {
        assert!(num_segments > 0 && segment_capacity > 0);
        let slots = num_segments * segment_capacity;
        Self {
            segment_capacity,
            cards: vec![0u32; num_segments].into_boxed_slice(),
            keys: vec![0 as Key; slots].into_boxed_slice(),
            values: vec![0 as Value; slots].into_boxed_slice(),
            mins: vec![KEY_MIN; num_segments].into_boxed_slice(),
            predictor: AdaptivePredictor::new(num_segments),
        }
    }

    /// Builds a chunk by pulling elements from `stream` (ascending key order):
    /// segment `s` receives `targets[s]` elements.
    pub fn from_stream<I>(
        num_segments: usize,
        segment_capacity: usize,
        targets: &[usize],
        stream: &mut I,
    ) -> Self
    where
        I: Iterator<Item = (Key, Value)>,
    {
        assert_eq!(targets.len(), num_segments);
        let mut chunk = Self::new(num_segments, segment_capacity);
        for (s, &t) in targets.iter().enumerate() {
            assert!(t <= segment_capacity);
            let start = chunk.seg_start(s);
            for i in 0..t {
                let (k, v) = stream
                    .next()
                    .expect("stream exhausted before filling the chunk");
                chunk.keys[start + i] = k;
                chunk.values[start + i] = v;
            }
            chunk.cards[s] = t as u32;
        }
        chunk.refresh_mins();
        chunk
    }

    /// Rebuilds the routing prefix after a mutation that changed a segment
    /// minimum. One linear pass over the (few) segments of the chunk.
    fn refresh_mins(&mut self) {
        let mut current = KEY_MIN;
        for s in 0..self.num_segments() {
            if self.cards[s] > 0 {
                current = self.keys[self.seg_start(s)];
            }
            self.mins[s] = current;
        }
    }

    /// Number of segments in the chunk.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.cards.len()
    }

    /// Slots per segment.
    #[inline]
    pub fn segment_capacity(&self) -> usize {
        self.segment_capacity
    }

    /// Total number of slots in the chunk.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Total number of live elements in the chunk.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.cards.iter().map(|&c| c as usize).sum()
    }

    /// Live elements in segment `s`.
    #[inline]
    pub fn card(&self, s: usize) -> usize {
        self.cards[s] as usize
    }

    #[inline]
    fn seg_start(&self, s: usize) -> usize {
        s * self.segment_capacity
    }

    /// Sorted live keys of segment `s`.
    #[inline]
    pub fn seg_keys(&self, s: usize) -> &[Key] {
        let start = self.seg_start(s);
        &self.keys[start..start + self.card(s)]
    }

    /// Minimum key of segment `s`, if non-empty.
    #[inline]
    pub fn seg_min(&self, s: usize) -> Option<Key> {
        if self.cards[s] == 0 {
            None
        } else {
            Some(self.keys[self.seg_start(s)])
        }
    }

    /// Minimum key stored anywhere in the chunk.
    pub fn min_key(&self) -> Option<Key> {
        (0..self.num_segments()).find_map(|s| self.seg_min(s))
    }

    /// Maximum key stored anywhere in the chunk.
    pub fn max_key(&self) -> Option<Key> {
        (0..self.num_segments())
            .rev()
            .find(|&s| self.cards[s] > 0)
            .map(|s| {
                let start = self.seg_start(s);
                self.keys[start + self.card(s) - 1]
            })
    }

    /// Returns the segment that should contain `key`: the last non-empty
    /// segment whose minimum key is `<= key`, falling back to the first
    /// non-empty segment, or segment 0 for an empty chunk.
    ///
    /// Routes through the contiguous `mins` prefix with one vectorised
    /// count — a single cache line for the default 8-segment gate — then
    /// resolves empty-segment inheritance against the cards array.
    pub fn find_segment(&self, key: Key) -> usize {
        let mut s = simd::route(&self.mins, key);
        // An empty segment inherits the previous non-empty segment's
        // minimum: walk left to the owner.
        while self.cards[s] == 0 && s > 0 {
            s -= 1;
        }
        if self.cards[s] > 0 && self.keys[self.seg_start(s)] <= key {
            simd::prefetch_read(&self.keys[self.seg_start(s)]);
            return s;
        }
        // No non-empty segment's minimum is `<= key` (or the chunk is
        // empty): fall forward to the first non-empty segment.
        let first = (0..self.num_segments())
            .find(|&s| self.cards[s] > 0)
            .unwrap_or(0);
        simd::prefetch_read(&self.keys[self.seg_start(first)]);
        first
    }

    /// Point lookup within the chunk.
    pub fn get(&self, key: Key) -> Option<Value> {
        if self.cardinality() == 0 {
            return None;
        }
        let s = self.find_segment(key);
        let start = self.seg_start(s);
        simd::search(self.seg_keys(s), key)
            .ok()
            .map(|pos| self.values[start + pos])
    }

    /// Attempts to insert `key`/`value`. On [`ChunkInsert::SegmentFull`] the
    /// caller must rebalance (locally or globally) and retry.
    pub fn try_insert(&mut self, key: Key, value: Value) -> ChunkInsert {
        let s = self.find_segment(key);
        let start = self.seg_start(s);
        match simd::search(self.seg_keys(s), key) {
            Ok(pos) => {
                let old = self.values[start + pos];
                self.values[start + pos] = value;
                ChunkInsert::Replaced(old)
            }
            Err(pos) => {
                let card = self.card(s);
                if card == self.segment_capacity {
                    return ChunkInsert::SegmentFull(s);
                }
                self.keys
                    .copy_within(start + pos..start + card, start + pos + 1);
                self.values
                    .copy_within(start + pos..start + card, start + pos + 1);
                self.keys[start + pos] = key;
                self.values[start + pos] = value;
                self.cards[s] += 1;
                self.predictor.record_insert(s);
                if pos == 0 {
                    // The segment minimum changed (or the segment was
                    // empty): rebuild the routing prefix.
                    self.refresh_mins();
                }
                ChunkInsert::Inserted
            }
        }
    }

    /// Removes `key` from the chunk.
    pub fn remove(&mut self, key: Key) -> Option<Value> {
        if self.cardinality() == 0 {
            return None;
        }
        let s = self.find_segment(key);
        let start = self.seg_start(s);
        let pos = simd::search(self.seg_keys(s), key).ok()?;
        let old = self.values[start + pos];
        let card = self.card(s);
        self.keys
            .copy_within(start + pos + 1..start + card, start + pos);
        self.values
            .copy_within(start + pos + 1..start + card, start + pos);
        self.cards[s] -= 1;
        self.predictor.record_delete(s);
        if pos == 0 {
            // The segment minimum changed (or the segment drained).
            self.refresh_mins();
        }
        Some(old)
    }

    /// Folds every element of the chunk (ascending key order) into `stats`,
    /// one whole segment run at a time.
    pub fn scan(&self, stats: &mut ScanStats) {
        for s in 0..self.num_segments() {
            let start = self.seg_start(s);
            let card = self.card(s);
            stats.visit_run(
                &self.keys[start..start + card],
                &self.values[start..start + card],
            );
        }
    }

    /// Visits every element with key in `[lo, hi]`. Returns `false` when the
    /// scan ran past `hi` (i.e. the caller can stop at this chunk). The
    /// in-range span of each segment is cut with the counting kernels so the
    /// inner loop carries no bound checks.
    pub fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) -> bool {
        for s in 0..self.num_segments() {
            let start = self.seg_start(s);
            let seg = self.seg_keys(s);
            let begin = simd::count_lt(seg, lo);
            let end = simd::count_le(seg, hi);
            for (k, v) in seg[begin..end]
                .iter()
                .zip(&self.values[start + begin..start + end])
            {
                visitor(*k, *v);
            }
            if end < seg.len() {
                return false;
            }
        }
        true
    }

    /// Appends every element with key in `[lo, hi]` (ascending) to the
    /// output vectors through the bulk run-copy kernel. Returns `false` when
    /// the chunk holds a key greater than `hi` (the caller can stop).
    pub fn collect_range_into(
        &self,
        lo: Key,
        hi: Key,
        keys: &mut Vec<Key>,
        values: &mut Vec<Value>,
    ) -> bool {
        for s in 0..self.num_segments() {
            let start = self.seg_start(s);
            let seg = self.seg_keys(s);
            let begin = simd::count_lt(seg, lo);
            let end = simd::count_le(seg, hi);
            if begin < end {
                simd::append_run(keys, &seg[begin..end]);
                simd::append_run(values, &self.values[start + begin..start + end]);
            }
            if end < seg.len() {
                return false;
            }
        }
        true
    }

    /// Iterates over every element of the chunk in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Value)> + '_ {
        (0..self.num_segments()).flat_map(move |s| {
            let start = self.seg_start(s);
            let card = self.card(s);
            self.keys[start..start + card]
                .iter()
                .copied()
                .zip(self.values[start..start + card].iter().copied())
        })
    }

    /// Appends every element (ascending key order) to the output vectors.
    pub fn collect_into(&self, keys: &mut Vec<Key>, values: &mut Vec<Value>) {
        for s in 0..self.num_segments() {
            let start = self.seg_start(s);
            let card = self.card(s);
            simd::append_run(keys, &self.keys[start..start + card]);
            simd::append_run(values, &self.values[start..start + card]);
        }
    }

    /// Number of elements in the local segment window `[start_seg, start_seg + num_segs)`.
    pub fn window_cardinality(&self, start_seg: usize, num_segs: usize) -> usize {
        (start_seg..start_seg + num_segs)
            .map(|s| self.card(s))
            .sum()
    }

    /// Redistributes the elements of the local segment window evenly
    /// (`adaptive = false`) or according to the recorded insertion skew
    /// (`adaptive = true`). Used for rebalances fully contained in one gate.
    pub fn rebalance_local(&mut self, start_seg: usize, num_segs: usize, adaptive: bool) {
        let total = self.window_cardinality(start_seg, num_segs);
        let mut staged_keys = Vec::with_capacity(total);
        let mut staged_values = Vec::with_capacity(total);
        for s in start_seg..start_seg + num_segs {
            let start = self.seg_start(s);
            let card = self.card(s);
            staged_keys.extend_from_slice(&self.keys[start..start + card]);
            staged_values.extend_from_slice(&self.values[start..start + card]);
        }
        let targets = if adaptive {
            // As with `even_targets`, keep one gap per segment when the
            // elements allow it so the triggering insertion makes progress.
            let capacity = if total <= num_segs * (self.segment_capacity - 1) {
                self.segment_capacity - 1
            } else {
                self.segment_capacity
            };
            self.predictor.targets(start_seg, num_segs, total, capacity)
        } else {
            crate::sequential::even_targets(total, num_segs, self.segment_capacity)
        };
        let mut cursor = 0usize;
        for (i, &t) in targets.iter().enumerate() {
            let s = start_seg + i;
            let start = self.seg_start(s);
            self.keys[start..start + t].copy_from_slice(&staged_keys[cursor..cursor + t]);
            self.values[start..start + t].copy_from_slice(&staged_values[cursor..cursor + t]);
            self.cards[s] = t as u32;
            cursor += t;
        }
        self.refresh_mins();
    }

    /// Merges a sorted batch of insertions into the whole chunk, rewriting it
    /// with an even distribution. Duplicate keys overwrite the stored value.
    /// Returns the number of *new* keys added.
    ///
    /// The caller must ensure the chunk has room for the *merged* result —
    /// the current cardinality plus the batch keys not already stored must
    /// not exceed `capacity()` (batch keys that overwrite existing entries
    /// need no room). Keys must fall within the owning gate's fences so
    /// chunk-global order is preserved.
    pub fn merge_batch(&mut self, batch: &[(Key, Value)]) -> usize {
        debug_assert!(batch.windows(2).all(|w| w[0].0 <= w[1].0));
        let existing = self.cardinality();
        let mut merged_keys = Vec::with_capacity(existing + batch.len());
        let mut merged_values = Vec::with_capacity(existing + batch.len());
        let mut old_keys = Vec::with_capacity(existing);
        let mut old_values = Vec::with_capacity(existing);
        self.collect_into(&mut old_keys, &mut old_values);

        let mut added = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < old_keys.len() || j < batch.len() {
            if j >= batch.len() {
                merged_keys.push(old_keys[i]);
                merged_values.push(old_values[i]);
                i += 1;
            } else if i >= old_keys.len() {
                // Skip duplicate keys inside the batch itself (last wins).
                let (k, v) = batch[j];
                if j + 1 < batch.len() && batch[j + 1].0 == k {
                    j += 1;
                    continue;
                }
                merged_keys.push(k);
                merged_values.push(v);
                added += 1;
                j += 1;
            } else if old_keys[i] < batch[j].0 {
                merged_keys.push(old_keys[i]);
                merged_values.push(old_values[i]);
                i += 1;
            } else if old_keys[i] > batch[j].0 {
                let (k, v) = batch[j];
                if j + 1 < batch.len() && batch[j + 1].0 == k {
                    j += 1;
                    continue;
                }
                merged_keys.push(k);
                merged_values.push(v);
                added += 1;
                j += 1;
            } else {
                // Same key: the batch value wins (upsert), no new element.
                merged_keys.push(batch[j].0);
                merged_values.push(batch[j].1);
                i += 1;
                j += 1;
            }
        }

        let total = merged_keys.len();
        assert!(total <= self.capacity(), "batch does not fit in the chunk");
        let targets =
            crate::sequential::even_targets(total, self.num_segments(), self.segment_capacity);
        let mut cursor = 0usize;
        for (s, &t) in targets.iter().enumerate() {
            let start = self.seg_start(s);
            self.keys[start..start + t].copy_from_slice(&merged_keys[cursor..cursor + t]);
            self.values[start..start + t].copy_from_slice(&merged_values[cursor..cursor + t]);
            self.cards[s] = t as u32;
            cursor += t;
        }
        self.refresh_mins();
        added
    }

    /// Validates the chunk-local invariants (test hook).
    ///
    /// # Panics
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        let mut prev: Option<Key> = None;
        for s in 0..self.num_segments() {
            assert!(
                self.card(s) <= self.segment_capacity,
                "segment {s} over capacity"
            );
            for &k in self.seg_keys(s) {
                if let Some(p) = prev {
                    assert!(p < k, "chunk keys not strictly increasing");
                }
                prev = Some(k);
            }
        }
        // The routing prefix mirrors the segment minima, empty segments
        // inheriting from the left.
        let mut expected = KEY_MIN;
        for s in 0..self.num_segments() {
            if let Some(min) = self.seg_min(s) {
                expected = min;
            }
            assert_eq!(
                self.mins[s], expected,
                "routing prefix out of date at segment {s}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> ChunkData {
        ChunkData::new(4, 8)
    }

    #[test]
    fn empty_chunk() {
        let c = chunk();
        assert_eq!(c.cardinality(), 0);
        assert_eq!(c.capacity(), 32);
        assert_eq!(c.get(5), None);
        assert_eq!(c.min_key(), None);
        assert_eq!(c.max_key(), None);
        c.check_invariants();
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut c = chunk();
        for k in [5i64, 1, 9, 3, 7] {
            assert_eq!(c.try_insert(k, k * 10), ChunkInsert::Inserted);
        }
        assert_eq!(c.cardinality(), 5);
        for k in [5i64, 1, 9, 3, 7] {
            assert_eq!(c.get(k), Some(k * 10));
        }
        assert_eq!(c.get(2), None);
        assert_eq!(c.remove(3), Some(30));
        assert_eq!(c.remove(3), None);
        assert_eq!(c.cardinality(), 4);
        c.check_invariants();
    }

    #[test]
    fn upsert_replaces() {
        let mut c = chunk();
        assert_eq!(c.try_insert(1, 10), ChunkInsert::Inserted);
        assert_eq!(c.try_insert(1, 20), ChunkInsert::Replaced(10));
        assert_eq!(c.get(1), Some(20));
        assert_eq!(c.cardinality(), 1);
    }

    #[test]
    fn segment_full_is_reported() {
        let mut c = ChunkData::new(2, 4);
        for k in 0..4i64 {
            assert_eq!(c.try_insert(k, k), ChunkInsert::Inserted);
        }
        // All four landed in segment 0 (only non-empty segment routing).
        assert_eq!(c.card(0), 4);
        assert_eq!(c.try_insert(2_000, 0), ChunkInsert::SegmentFull(0));
    }

    #[test]
    fn rebalance_local_spreads_elements() {
        let mut c = ChunkData::new(2, 4);
        for k in 0..4i64 {
            c.try_insert(k, k);
        }
        c.rebalance_local(0, 2, false);
        assert_eq!(c.card(0), 2);
        assert_eq!(c.card(1), 2);
        c.check_invariants();
        assert_eq!(c.try_insert(10, 10), ChunkInsert::Inserted);
        for k in 0..4i64 {
            assert_eq!(c.get(k), Some(k));
        }
        assert_eq!(c.get(10), Some(10));
    }

    #[test]
    fn adaptive_rebalance_leaves_room_in_hot_segment() {
        let mut c = ChunkData::new(4, 8);
        // Fill segment 0 by appending ascending keys (maximal skew).
        for k in 0..8i64 {
            c.try_insert(k, k);
        }
        c.rebalance_local(0, 4, true);
        c.check_invariants();
        // The hottest segment (where inserts land) should not be the fullest.
        let hottest = c.find_segment(100);
        let max_card = (0..4).map(|s| c.card(s)).max().unwrap();
        assert!(c.card(hottest) <= max_card);
        assert_eq!(c.cardinality(), 8);
    }

    #[test]
    fn scan_accumulates_in_order() {
        let mut c = chunk();
        for k in [4i64, 2, 8, 6] {
            c.try_insert(k, 1);
        }
        let mut stats = ScanStats::default();
        c.scan(&mut stats);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.key_sum, 20);
        assert_eq!(stats.value_sum, 4);
    }

    #[test]
    fn range_respects_bounds_and_signals_stop() {
        let mut c = chunk();
        for k in 0..6i64 {
            assert_eq!(c.try_insert(k, k), ChunkInsert::Inserted);
        }
        // Spread over segments so the range crosses segment boundaries, then
        // add a few more keys that land in later segments.
        c.rebalance_local(0, 4, false);
        for k in 6..10i64 {
            assert_eq!(c.try_insert(k, k), ChunkInsert::Inserted);
        }
        assert_eq!(c.cardinality(), 10);
        let mut seen = Vec::new();
        let keep_going = c.range(3, 6, &mut |k, _| seen.push(k));
        assert_eq!(seen, vec![3, 4, 5, 6]);
        assert!(!keep_going, "hi bound inside the chunk must stop the scan");
        let mut seen = Vec::new();
        let keep_going = c.range(8, 100, &mut |k, _| seen.push(k));
        assert_eq!(seen, vec![8, 9]);
        assert!(keep_going, "scan may continue past this chunk");
    }

    #[test]
    fn collect_into_returns_sorted_elements() {
        let mut c = chunk();
        for k in [9i64, 1, 5, 3, 7] {
            c.try_insert(k, -k);
        }
        let (mut ks, mut vs) = (Vec::new(), Vec::new());
        c.collect_into(&mut ks, &mut vs);
        assert_eq!(ks, vec![1, 3, 5, 7, 9]);
        assert_eq!(vs, vec![-1, -3, -5, -7, -9]);
    }

    #[test]
    fn merge_batch_adds_and_overwrites() {
        let mut c = chunk();
        for k in [2i64, 4, 6] {
            c.try_insert(k, k);
        }
        let added = c.merge_batch(&[(1, 11), (4, 44), (5, 55), (9, 99)]);
        assert_eq!(added, 3, "key 4 already existed");
        assert_eq!(c.cardinality(), 6);
        assert_eq!(c.get(4), Some(44));
        assert_eq!(c.get(5), Some(55));
        assert_eq!(c.get(1), Some(11));
        assert_eq!(c.get(9), Some(99));
        c.check_invariants();
    }

    #[test]
    fn merge_batch_with_duplicate_batch_keys_keeps_last() {
        let mut c = chunk();
        let added = c.merge_batch(&[(1, 10), (1, 20), (2, 30)]);
        assert_eq!(added, 2);
        assert_eq!(c.get(1), Some(20));
        assert_eq!(c.get(2), Some(30));
    }

    #[test]
    fn from_stream_builds_requested_layout() {
        let elements: Vec<(Key, Value)> = (0..10).map(|k| (k, k * 2)).collect();
        let mut it = elements.iter().copied();
        let c = ChunkData::from_stream(4, 4, &[3, 3, 2, 2], &mut it);
        assert_eq!(c.cardinality(), 10);
        assert_eq!(c.card(0), 3);
        assert_eq!(c.card(3), 2);
        assert_eq!(c.get(7), Some(14));
        c.check_invariants();
        assert!(it.next().is_none());
    }

    #[test]
    fn window_cardinality_sums_segments() {
        let elements: Vec<(Key, Value)> = (0..10).map(|k| (k, k)).collect();
        let mut it = elements.iter().copied();
        let c = ChunkData::from_stream(4, 4, &[3, 3, 2, 2], &mut it);
        assert_eq!(c.window_cardinality(0, 2), 6);
        assert_eq!(c.window_cardinality(2, 2), 4);
        assert_eq!(c.window_cardinality(0, 4), 10);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn merge_batch_overflow_panics() {
        let mut c = ChunkData::new(1, 4);
        for k in 0..4i64 {
            c.try_insert(k, k);
        }
        let _ = c.merge_batch(&[(10, 1)]);
    }
}
