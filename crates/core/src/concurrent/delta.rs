//! Striped delta-capture overlay for copy-on-write structural changes.
//!
//! The paper's resize protocol (§3.4) builds the new instance off to the
//! side while concurrent operations accumulate in the combining queues, then
//! *folds* the queued delta into the new instance before publishing it — the
//! old instance is never mutated during the copy, so the copy cannot lose or
//! duplicate elements. [`DeltaLog`] packages that capture-and-fold as a
//! reusable component for structural changes above the instance level (the
//! sharded engine's incremental shard splits and merges):
//!
//! 1. the structural change installs a log on the structure it is about to
//!    replace and settles its queues once, under a short fence;
//! 2. writers then record their operations **only** in the log — the live
//!    structure stays quiescent, which is what makes the ordered live-scan
//!    of the base copy exact (a scan racing live inserts can miss settled
//!    elements when a multi-gate rebalance shifts them across the cursor);
//! 3. reads consult the log's per-key **overlay** ([`DeltaLog::lookup`])
//!    before falling through to the quiescent base, so acknowledged-but-
//!    unfolded operations stay visible;
//! 4. the rebuild drains the record list ([`DeltaLog::take_all`]) into the
//!    replacement structures — incrementally while writers keep recording
//!    (chase rounds), then one final pass under the fence. The overlay
//!    stays intact through drains (a drained record is applied to the *not
//!    yet published* replacement, so reads on the live side still need it)
//!    and dies with the log at publication.
//!
//! # Point records and run records
//!
//! Point operations land as [`DeltaOp`]s, one record each. Whole batch runs
//! land through [`DeltaLog::record_run`] as [`DeltaRecord::Run`]s: the run
//! is partitioned by stripe in **one pass** and each touched stripe stores a
//! single sorted, deduplicated sub-run (at most [`DELTA_STRIPES`] records
//! per call, however large the run). Without run records, a large
//! `insert_batch` arriving during an incremental split would decay to one
//! record — and one stripe lock acquisition — per item; with them, the
//! chase-round drains replay each sub-run through the replacement's own
//! `insert_batch` fast path.
//!
//! # The per-key ordering invariant
//!
//! The fold converges to the acknowledged state only if, for every key, the
//! drain replays operations in their linearization order. [`DeltaLog`]
//! hashes each key to one of [`DELTA_STRIPES`] stripes and serialises
//! same-stripe records through the stripe lock, so same-key records are
//! appended in the order their writers were granted the stripe — and the
//! overlay's last-writer-wins entry agrees with the append order (each
//! record carries a per-stripe sequence number; a run sub-run shadows older
//! point entries for its keys and vice versa). Cross-stripe order is
//! irrelevant: different stripes hold different keys, and replay only has
//! to be ordered per key. Drains preserve the invariant across rounds as
//! long as one thread performs them in sequence: within a stripe, every
//! record of an earlier round was appended before every record of a later
//! round.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pma_common::{dedup_sorted_last_wins, ConcurrentMap, Key, Value};

/// Number of stripes a [`DeltaLog`] partitions the key space into. Chosen so
/// that a handful of writer threads rarely collide while the per-log memory
/// overhead stays trivial (64 mutexes + vectors + overlay maps).
pub const DELTA_STRIPES: usize = 64;

/// One update captured by a [`DeltaLog`], replayable onto any
/// [`ConcurrentMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// An upsert of `key` to `value`.
    Insert(Key, Value),
    /// A deletion of `key`.
    Remove(Key),
}

impl DeltaOp {
    /// The key this operation addresses (decides its stripe and, at fold
    /// time, which replacement structure it routes to).
    #[inline]
    pub fn key(&self) -> Key {
        match *self {
            DeltaOp::Insert(key, _) => key,
            DeltaOp::Remove(key) => key,
        }
    }

    /// Replays the operation onto `map`. Inserts are upserts and removing an
    /// absent key is a no-op, so replay is idempotent given the per-key
    /// ordering invariant.
    #[inline]
    pub fn apply(&self, map: &dyn ConcurrentMap) {
        match *self {
            DeltaOp::Insert(key, value) => map.insert(key, value),
            DeltaOp::Remove(key) => {
                map.remove(key);
            }
        }
    }
}

/// One drained unit of a [`DeltaLog`]: either a point operation or a whole
/// sorted run captured by [`DeltaLog::record_run`]. The run payload is
/// `Arc`-shared with the log's read overlay, so draining does not copy it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaRecord {
    /// A point insert or remove.
    Op(DeltaOp),
    /// A sorted, key-deduplicated sub-run of one batch (all upserts).
    Run(Arc<[(Key, Value)]>),
}

impl DeltaRecord {
    /// How many captured operations this record carries (a run counts each
    /// of its items) — the unit [`DeltaLog::len`] is measured in.
    #[inline]
    pub fn count(&self) -> usize {
        match self {
            DeltaRecord::Op(_) => 1,
            DeltaRecord::Run(items) => items.len(),
        }
    }

    /// Replays the record onto `map`; runs go through the map's own
    /// `insert_batch` fast path instead of item-at-a-time inserts.
    pub fn apply(&self, map: &dyn ConcurrentMap) {
        match self {
            DeltaRecord::Op(op) => op.apply(map),
            DeltaRecord::Run(items) => map.insert_batch(items),
        }
    }

    /// Replays the record across a split pair: keys `< boundary` go to
    /// `left`, the rest to `right`. A run is cut once with a binary search
    /// and each half is batch-applied, preserving the single-pass economy
    /// of the run record through the fold.
    pub fn apply_split(&self, boundary: Key, left: &dyn ConcurrentMap, right: &dyn ConcurrentMap) {
        match self {
            DeltaRecord::Op(op) => {
                if op.key() < boundary {
                    op.apply(left);
                } else {
                    op.apply(right);
                }
            }
            DeltaRecord::Run(items) => {
                let cut = items.partition_point(|&(key, _)| key < boundary);
                if cut > 0 {
                    left.insert_batch(&items[..cut]);
                }
                if cut < items.len() {
                    right.insert_batch(&items[cut..]);
                }
            }
        }
    }
}

/// A retained run sub-run tagged with the stripe sequence number it was
/// recorded at, so overlay reads can arbitrate it against point entries.
type SeqRun = (u64, Arc<[(Key, Value)]>);

/// One stripe: the append-ordered record run of this stripe's keys plus the
/// read overlay (latest point op per key and the retained run sub-runs,
/// serving reads until publication). `seq` totally orders this stripe's
/// records so overlay reads can arbitrate between a point entry and a run
/// that both mention a key.
#[derive(Default)]
struct Stripe {
    seq: u64,
    recs: Vec<DeltaRecord>,
    latest: HashMap<Key, (u64, DeltaOp)>,
    runs: Vec<SeqRun>,
}

impl Stripe {
    /// The pending state of `key` in this stripe, arbitrated by sequence
    /// number between the point overlay and any retained runs. Runs newer
    /// than the point entry are searched newest-first; the first hit wins.
    fn pending(&self, key: Key) -> Option<DeltaOp> {
        let point = self.latest.get(&key).copied();
        let floor = point.map_or(0, |(seq, _)| seq);
        for &(seq, ref run) in self.runs.iter().rev() {
            if seq <= floor {
                break;
            }
            if let Ok(idx) = run.binary_search_by_key(&key, |&(k, _)| k) {
                return Some(DeltaOp::Insert(key, run[idx].1));
            }
        }
        point.map(|(_, op)| op)
    }
}

/// A striped operation log + read overlay capturing the concurrent delta of
/// a copy-on-write rebuild. See the [module docs](self) for the protocol.
pub struct DeltaLog {
    stripes: Box<[Mutex<Stripe>]>,
    /// Recorded-but-not-drained ops (runs count each item). Incremented
    /// before the append, so the value is an upper bound at all times and
    /// exact once no record is in flight (e.g. under a structural fence).
    /// Drives the rebuild's chase heuristic, not correctness.
    len: AtomicUsize,
    /// Backpressure cap: writers should back off (instead of recording)
    /// while `len > cap`. The structural thread lowers it for the closing
    /// phase of a rebuild, throttling writers hard enough that the chase
    /// drains converge and the final fenced fold stays small.
    cap: AtomicUsize,
}

impl Default for DeltaLog {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for DeltaLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaLog")
            .field("stripes", &self.stripes.len())
            .field("len", &self.len())
            .finish()
    }
}

impl DeltaLog {
    /// Creates an empty log with [`DELTA_STRIPES`] stripes and `cap` as the
    /// initial backpressure threshold.
    pub fn with_cap(cap: usize) -> Self {
        Self {
            stripes: (0..DELTA_STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            len: AtomicUsize::new(0),
            cap: AtomicUsize::new(cap),
        }
    }

    /// Creates an empty log with [`DELTA_STRIPES`] stripes and an
    /// effectively unlimited backpressure cap.
    pub fn new() -> Self {
        Self::with_cap(usize::MAX)
    }

    /// Whether writers should back off instead of recording (the log is
    /// over its backpressure cap).
    pub fn over_cap(&self) -> bool {
        self.len() > self.cap.load(Ordering::Relaxed)
    }

    /// Re-arms the backpressure cap (the structural thread lowers it for
    /// the closing phase of a rebuild).
    pub fn set_cap(&self, cap: usize) {
        self.cap.store(cap, Ordering::Relaxed);
    }

    /// Fibonacci-hashes `key` to its stripe index (keys are often sequential;
    /// a plain modulo would pile neighbouring keys onto neighbouring stripes
    /// and writers onto the same lock).
    #[inline]
    fn stripe_of(key: Key) -> usize {
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize % DELTA_STRIPES
    }

    /// Records an upsert. The live structure is *not* touched — the op is
    /// folded into the replacement at drain time and visible to reads
    /// through [`DeltaLog::lookup`] until then.
    #[inline]
    pub fn record_insert(&self, key: Key, value: Value) {
        self.len.fetch_add(1, Ordering::Relaxed);
        let mut stripe = self.stripes[Self::stripe_of(key)].lock();
        stripe.seq += 1;
        let seq = stripe.seq;
        stripe
            .recs
            .push(DeltaRecord::Op(DeltaOp::Insert(key, value)));
        stripe
            .latest
            .insert(key, (seq, DeltaOp::Insert(key, value)));
    }

    /// Records a whole batch run as at most one record per touched stripe
    /// and returns the number of records appended. The run is partitioned
    /// by stripe in a single pass; each stripe's sub-run is sorted (stably,
    /// so a duplicated key keeps its arrival order) and deduplicated
    /// last-writer-wins before it is published atomically under the stripe
    /// lock. The sub-run becomes part of the read overlay (shadowing older
    /// point entries for its keys) and is `Arc`-shared with the drain
    /// record, so neither reads nor drains copy it again.
    pub fn record_run(&self, run: &[(Key, Value)]) -> usize {
        if run.is_empty() {
            return 0;
        }
        let mut buckets: [Vec<(Key, Value)>; DELTA_STRIPES] = std::array::from_fn(|_| Vec::new());
        for &(key, value) in run {
            buckets[Self::stripe_of(key)].push((key, value));
        }
        let mut records = 0;
        for (idx, mut items) in buckets.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            items.sort_by_key(|&(key, _)| key);
            let shared: Arc<[(Key, Value)]> = dedup_sorted_last_wins(&items).into();
            self.len.fetch_add(shared.len(), Ordering::Relaxed);
            let mut stripe = self.stripes[idx].lock();
            stripe.seq += 1;
            let seq = stripe.seq;
            stripe.recs.push(DeltaRecord::Run(Arc::clone(&shared)));
            stripe.runs.push((seq, shared));
            records += 1;
        }
        records
    }

    /// Records a removal and returns the value the key held at this point in
    /// the linearization order: the overlay's pending value when the key was
    /// written during the capture window, otherwise `base(key)` — the
    /// caller passes a *read-only* lookup of the quiescent base structure
    /// (it runs under the stripe lock, so a racing same-key record cannot
    /// interleave between the lookup and the append).
    pub fn record_remove(
        &self,
        key: Key,
        base: impl FnOnce(Key) -> Option<Value>,
    ) -> Option<Value> {
        self.len.fetch_add(1, Ordering::Relaxed);
        let mut stripe = self.stripes[Self::stripe_of(key)].lock();
        let previous = match stripe.pending(key) {
            Some(DeltaOp::Insert(_, value)) => Some(value),
            Some(DeltaOp::Remove(_)) => None,
            None => base(key),
        };
        stripe.seq += 1;
        let seq = stripe.seq;
        stripe.recs.push(DeltaRecord::Op(DeltaOp::Remove(key)));
        stripe.latest.insert(key, (seq, DeltaOp::Remove(key)));
        previous
    }

    /// The latest recorded operation on `key`, if any — the read overlay: a
    /// lookup that hits returns the pending state (`Insert` → that value,
    /// `Remove` → absent); a miss means the quiescent base is authoritative.
    /// A key captured by a run record reads back as a pending insert of the
    /// run's value unless a newer point op shadows it.
    pub fn lookup(&self, key: Key) -> Option<DeltaOp> {
        self.stripes[Self::stripe_of(key)].lock().pending(key)
    }

    /// A point-in-time copy of the read overlay: the latest pending
    /// operation per key, folded to `Some(value)` for a pending insert and
    /// `None` for a pending remove. Each stripe is copied under its lock, so
    /// the copy is atomic per key (and exact whenever no record is in
    /// flight, e.g. under a structural fence). Frozen snapshots of a
    /// structure mid-rebuild lay this over the quiescent base, exactly like
    /// live reads lay [`DeltaLog::lookup`] over it.
    pub fn overlay_snapshot(&self) -> BTreeMap<Key, Option<Value>> {
        let mut out = BTreeMap::new();
        for stripe in self.stripes.iter() {
            let guard = stripe.lock();
            let mut per_key: HashMap<Key, (u64, Option<Value>)> = guard
                .latest
                .iter()
                .map(|(&key, &(seq, op))| {
                    let pending = match op {
                        DeltaOp::Insert(_, value) => Some(value),
                        DeltaOp::Remove(_) => None,
                    };
                    (key, (seq, pending))
                })
                .collect();
            for &(seq, ref run) in &guard.runs {
                for &(key, value) in run.iter() {
                    match per_key.get(&key) {
                        Some(&(newer, _)) if newer > seq => {}
                        _ => {
                            per_key.insert(key, (seq, Some(value)));
                        }
                    }
                }
            }
            for (key, (_, pending)) in per_key {
                out.insert(key, pending);
            }
        }
        out
    }

    /// Upper bound on the recorded-but-not-drained op count, runs counting
    /// each item (exact when no record is in flight).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether no operation is waiting to be drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every recorded record out of the log, stripe by stripe,
    /// leaving the read overlay intact (reads on the live side need it until
    /// publication). Within a stripe (and therefore per key) the append
    /// order is preserved; across stripes the order is arbitrary, which is
    /// fine because stripes partition the key space. Writers may keep
    /// recording concurrently — their records land in the next drain.
    /// Successive drains must be performed by one thread for the cross-round
    /// per-key order to hold.
    pub fn take_all(&self) -> Vec<DeltaRecord> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let mut guard = stripe.lock();
            if guard.recs.is_empty() {
                continue;
            }
            let drained = std::mem::take(&mut guard.recs);
            drop(guard);
            let items: usize = drained.iter().map(DeltaRecord::count).sum();
            self.len.fetch_sub(items, Ordering::Relaxed);
            out.extend(drained);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_take_all_preserves_per_key_order_and_overlay() {
        let log = DeltaLog::new();
        log.record_insert(7, 1);
        log.record_insert(7, 2);
        assert_eq!(log.record_remove(9, |_| Some(99)), Some(99));
        assert_eq!(log.len(), 3);
        // The overlay serves reads: pending insert, pending remove, miss.
        assert_eq!(log.lookup(7), Some(DeltaOp::Insert(7, 2)));
        assert_eq!(log.lookup(9), Some(DeltaOp::Remove(9)));
        assert_eq!(log.lookup(8), None);
        let drained = log.take_all();
        assert_eq!(drained.iter().map(DeltaRecord::count).sum::<usize>(), 3);
        assert!(log.is_empty());
        // Key 7's two inserts stay in append order.
        let on_seven: Vec<_> = drained
            .iter()
            .filter(|rec| matches!(rec, DeltaRecord::Op(op) if op.key() == 7))
            .collect();
        assert_eq!(
            on_seven,
            vec![
                &DeltaRecord::Op(DeltaOp::Insert(7, 1)),
                &DeltaRecord::Op(DeltaOp::Insert(7, 2))
            ]
        );
        // Drains keep the overlay (reads still need it until publication)…
        assert_eq!(log.lookup(7), Some(DeltaOp::Insert(7, 2)));
        // …and a fresh drain is empty.
        assert!(log.take_all().is_empty());
    }

    #[test]
    fn record_remove_linearizes_against_the_overlay() {
        let log = DeltaLog::new();
        // No pending op: the quiescent base answers.
        assert_eq!(log.record_remove(1, |_| Some(10)), Some(10));
        // The pending remove now shadows the base.
        assert_eq!(log.record_remove(1, |_| Some(10)), None);
        // A pending insert answers without consulting the base.
        log.record_insert(1, 11);
        assert_eq!(
            log.record_remove(1, |_| panic!("must not hit base")),
            Some(11)
        );
        // A run shadows an older point remove…
        log.record_run(&[(1, 12)]);
        assert_eq!(
            log.record_remove(1, |_| panic!("must not hit base")),
            Some(12)
        );
    }

    #[test]
    fn record_run_captures_one_record_per_touched_stripe() {
        let log = DeltaLog::new();
        let run: Vec<(Key, Value)> = (0..4096).map(|k| (k as Key, k as Value)).collect();
        let records = log.record_run(&run);
        assert!((1..=DELTA_STRIPES).contains(&records), "{records}");
        assert_eq!(log.len(), 4096);
        // Every item is readable through the overlay.
        assert_eq!(log.lookup(17), Some(DeltaOp::Insert(17, 17)));
        assert_eq!(log.lookup(4095), Some(DeltaOp::Insert(4095, 4095)));
        assert_eq!(log.lookup(5000), None);
        // The drain hands back runs, not per-item ops: far fewer records
        // than items, and each run is sorted for batch replay.
        let drained = log.take_all();
        assert_eq!(drained.len(), records);
        assert!(drained.len() * 10 <= 4096, "runs must beat per-item 10x");
        let mut total = 0;
        for rec in &drained {
            match rec {
                DeltaRecord::Run(items) => {
                    assert!(items.windows(2).all(|w| w[0].0 < w[1].0));
                    total += items.len();
                }
                DeltaRecord::Op(_) => panic!("run capture must not emit point ops"),
            }
        }
        assert_eq!(total, 4096);
        assert!(log.is_empty());
        // The overlay survives the drain.
        assert_eq!(log.lookup(17), Some(DeltaOp::Insert(17, 17)));
    }

    #[test]
    fn record_run_dedups_last_wins_and_keeps_empty_runs_free() {
        let log = DeltaLog::new();
        assert_eq!(log.record_run(&[]), 0);
        // Duplicate keys within one run: the later item wins atomically.
        let records = log.record_run(&[(5, 1), (5, 2), (5, 3)]);
        assert_eq!(records, 1);
        assert_eq!(log.len(), 1, "deduped run stores one item");
        assert_eq!(log.lookup(5), Some(DeltaOp::Insert(5, 3)));
    }

    #[test]
    fn runs_and_point_ops_arbitrate_by_recording_order() {
        let log = DeltaLog::new();
        log.record_insert(42, 1);
        log.record_run(&[(42, 2)]);
        // The run is newer: it shadows the point insert.
        assert_eq!(log.lookup(42), Some(DeltaOp::Insert(42, 2)));
        assert_eq!(log.overlay_snapshot().get(&42), Some(&Some(2)));
        // A newer point remove shadows the run.
        let _ = log.record_remove(42, |_| panic!("overlay must answer"));
        assert_eq!(log.lookup(42), Some(DeltaOp::Remove(42)));
        assert_eq!(log.overlay_snapshot().get(&42), Some(&None));
        // And a fresh run shadows the remove again.
        log.record_run(&[(42, 9)]);
        assert_eq!(log.lookup(42), Some(DeltaOp::Insert(42, 9)));
        assert_eq!(log.overlay_snapshot().get(&42), Some(&Some(9)));
    }

    #[test]
    fn apply_split_cuts_runs_at_the_boundary() {
        let left = crate::ConcurrentPma::new(crate::PmaParams::small()).unwrap();
        let right = crate::ConcurrentPma::new(crate::PmaParams::small()).unwrap();
        let run: Arc<[(Key, Value)]> = (0..100).map(|k| (k as Key, k as Value)).collect();
        DeltaRecord::Run(run).apply_split(50, &left, &right);
        DeltaRecord::Op(DeltaOp::Insert(10, 99)).apply_split(50, &left, &right);
        DeltaRecord::Op(DeltaOp::Remove(60)).apply_split(50, &left, &right);
        left.flush();
        right.flush();
        assert_eq!(left.len(), 50);
        assert_eq!(left.get(10), Some(99));
        assert_eq!(right.len(), 49, "remove lands on the right half");
        assert_eq!(right.get(60), None);
        assert_eq!(right.get(99), Some(99));
    }

    #[test]
    fn overlay_snapshot_folds_latest_op_per_key() {
        let log = DeltaLog::new();
        log.record_insert(1, 10);
        log.record_insert(1, 11);
        log.record_insert(2, 20);
        let _ = log.record_remove(2, |_| None);
        let _ = log.record_remove(3, |_| Some(30));
        let overlay = log.overlay_snapshot();
        assert_eq!(overlay.get(&1), Some(&Some(11)), "last insert wins");
        assert_eq!(overlay.get(&2), Some(&None), "remove shadows the insert");
        assert_eq!(overlay.get(&3), Some(&None));
        assert_eq!(overlay.get(&4), None);
        // The copy is detached: later records do not change it.
        log.record_insert(1, 12);
        assert_eq!(overlay.get(&1), Some(&Some(11)));
        // Drains keep the overlay, like `lookup`.
        let _ = log.take_all();
        assert_eq!(log.overlay_snapshot().get(&1), Some(&Some(12)));
    }

    #[test]
    fn backpressure_cap_trips_and_rearms() {
        let log = DeltaLog::with_cap(2);
        assert!(!log.over_cap());
        log.record_insert(1, 1);
        log.record_insert(2, 2);
        assert!(!log.over_cap(), "cap is inclusive");
        log.record_insert(3, 3);
        assert!(log.over_cap());
        log.set_cap(10);
        assert!(!log.over_cap());
        log.set_cap(0);
        assert!(log.over_cap());
        let _ = log.take_all();
        assert!(!log.over_cap(), "a drained log is under any cap");
    }

    #[test]
    fn concurrent_recorders_never_lose_ops() {
        let log = Arc::new(DeltaLog::new());
        const THREADS: usize = 4;
        const OPS: usize = 2_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..OPS {
                        let key = (t * OPS + i) as Key;
                        log.record_insert(key, key);
                    }
                });
            }
        });
        assert_eq!(log.len(), THREADS * OPS);
        let drained = log.take_all();
        assert_eq!(
            drained.iter().map(DeltaRecord::count).sum::<usize>(),
            THREADS * OPS
        );
    }

    #[test]
    fn drain_races_run_recorders_without_losing_items() {
        let log = Arc::new(DeltaLog::new());
        const RUNS: usize = 200;
        const RUN_LEN: usize = 100;
        let mut drained_items = 0usize;
        std::thread::scope(|scope| {
            let writer = {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for r in 0..RUNS {
                        let run: Vec<(Key, Value)> = (0..RUN_LEN)
                            .map(|i| ((r * RUN_LEN + i) as Key, 0))
                            .collect();
                        log.record_run(&run);
                    }
                })
            };
            while !writer.is_finished() {
                drained_items += log.take_all().iter().map(DeltaRecord::count).sum::<usize>();
            }
            writer.join().unwrap();
        });
        drained_items += log.take_all().iter().map(DeltaRecord::count).sum::<usize>();
        assert_eq!(drained_items, RUNS * RUN_LEN);
        assert!(log.is_empty());
    }

    #[test]
    fn apply_replays_onto_a_map() {
        let map = crate::ConcurrentPma::new(crate::PmaParams::small()).unwrap();
        DeltaRecord::Op(DeltaOp::Insert(1, 10)).apply(&map);
        DeltaRecord::Run((2..5).map(|k| (k as Key, k as Value * 10)).collect()).apply(&map);
        DeltaRecord::Op(DeltaOp::Remove(1)).apply(&map);
        DeltaRecord::Op(DeltaOp::Remove(99)).apply(&map); // absent key: no-op
        map.flush();
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(3), Some(30));
    }

    #[test]
    fn stripes_spread_sequential_keys() {
        let hit: std::collections::HashSet<usize> =
            (0..256).map(|k| DeltaLog::stripe_of(k as Key)).collect();
        assert!(
            hit.len() > DELTA_STRIPES / 2,
            "sequential keys must spread across stripes, got {}",
            hit.len()
        );
    }
}
