//! Striped delta-capture overlay for copy-on-write structural changes.
//!
//! The paper's resize protocol (§3.4) builds the new instance off to the
//! side while concurrent operations accumulate in the combining queues, then
//! *folds* the queued delta into the new instance before publishing it — the
//! old instance is never mutated during the copy, so the copy cannot lose or
//! duplicate elements. [`DeltaLog`] packages that capture-and-fold as a
//! reusable component for structural changes above the instance level (the
//! sharded engine's incremental shard splits and merges):
//!
//! 1. the structural change installs a log on the structure it is about to
//!    replace and settles its queues once, under a short fence;
//! 2. writers then record their operations **only** in the log — the live
//!    structure stays quiescent, which is what makes the ordered live-scan
//!    of the base copy exact (a scan racing live inserts can miss settled
//!    elements when a multi-gate rebalance shifts them across the cursor);
//! 3. reads consult the log's per-key **overlay** ([`DeltaLog::lookup`])
//!    before falling through to the quiescent base, so acknowledged-but-
//!    unfolded operations stay visible;
//! 4. the rebuild drains the op list ([`DeltaLog::take_all`]) into the
//!    replacement structures — incrementally while writers keep recording
//!    (chase rounds), then one final pass under the fence. The overlay
//!    stays intact through drains (a drained op is applied to the *not yet
//!    published* replacement, so reads on the live side still need it) and
//!    dies with the log at publication.
//!
//! # The per-key ordering invariant
//!
//! The fold converges to the acknowledged state only if, for every key, the
//! drain replays operations in their linearization order. [`DeltaLog`]
//! hashes each key to one of [`DELTA_STRIPES`] stripes and serialises
//! same-stripe records through the stripe lock, so same-key operations are
//! appended in the order their writers were granted the stripe — and the
//! overlay's last-writer-wins entry agrees with the append order. Cross-
//! stripe order is irrelevant: different stripes hold different keys, and
//! replay only has to be ordered per key. Drains preserve the invariant
//! across rounds as long as one thread performs them in sequence: within a
//! stripe, every op of an earlier round was appended before every op of a
//! later round.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use pma_common::{ConcurrentMap, Key, Value};

/// Number of stripes a [`DeltaLog`] partitions the key space into. Chosen so
/// that a handful of writer threads rarely collide while the per-log memory
/// overhead stays trivial (64 mutexes + vectors + overlay maps).
pub const DELTA_STRIPES: usize = 64;

/// One update captured by a [`DeltaLog`], replayable onto any
/// [`ConcurrentMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// An upsert of `key` to `value`.
    Insert(Key, Value),
    /// A deletion of `key`.
    Remove(Key),
}

impl DeltaOp {
    /// The key this operation addresses (decides its stripe and, at fold
    /// time, which replacement structure it routes to).
    #[inline]
    pub fn key(&self) -> Key {
        match *self {
            DeltaOp::Insert(key, _) => key,
            DeltaOp::Remove(key) => key,
        }
    }

    /// Replays the operation onto `map`. Inserts are upserts and removing an
    /// absent key is a no-op, so replay is idempotent given the per-key
    /// ordering invariant.
    #[inline]
    pub fn apply(&self, map: &dyn ConcurrentMap) {
        match *self {
            DeltaOp::Insert(key, value) => map.insert(key, value),
            DeltaOp::Remove(key) => {
                map.remove(key);
            }
        }
    }
}

/// One stripe: the append-ordered op run of this stripe's keys plus the
/// per-key overlay (latest op per key, serving reads until publication).
#[derive(Default)]
struct Stripe {
    ops: Vec<DeltaOp>,
    latest: HashMap<Key, DeltaOp>,
}

/// A striped operation log + read overlay capturing the concurrent delta of
/// a copy-on-write rebuild. See the [module docs](self) for the protocol.
pub struct DeltaLog {
    stripes: Box<[Mutex<Stripe>]>,
    /// Recorded-but-not-drained ops. Incremented before the append, so the
    /// value is an upper bound at all times and exact once no record is in
    /// flight (e.g. under a structural fence). Drives the rebuild's chase
    /// heuristic, not correctness.
    len: AtomicUsize,
    /// Backpressure cap: writers should back off (instead of recording)
    /// while `len > cap`. The structural thread lowers it for the closing
    /// phase of a rebuild, throttling writers hard enough that the chase
    /// drains converge and the final fenced fold stays small.
    cap: AtomicUsize,
}

impl Default for DeltaLog {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for DeltaLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaLog")
            .field("stripes", &self.stripes.len())
            .field("len", &self.len())
            .finish()
    }
}

impl DeltaLog {
    /// Creates an empty log with [`DELTA_STRIPES`] stripes and `cap` as the
    /// initial backpressure threshold.
    pub fn with_cap(cap: usize) -> Self {
        Self {
            stripes: (0..DELTA_STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            len: AtomicUsize::new(0),
            cap: AtomicUsize::new(cap),
        }
    }

    /// Creates an empty log with [`DELTA_STRIPES`] stripes and an
    /// effectively unlimited backpressure cap.
    pub fn new() -> Self {
        Self::with_cap(usize::MAX)
    }

    /// Whether writers should back off instead of recording (the log is
    /// over its backpressure cap).
    pub fn over_cap(&self) -> bool {
        self.len() > self.cap.load(Ordering::Relaxed)
    }

    /// Re-arms the backpressure cap (the structural thread lowers it for
    /// the closing phase of a rebuild).
    pub fn set_cap(&self, cap: usize) {
        self.cap.store(cap, Ordering::Relaxed);
    }

    /// Fibonacci-hashes `key` to its stripe index (keys are often sequential;
    /// a plain modulo would pile neighbouring keys onto neighbouring stripes
    /// and writers onto the same lock).
    #[inline]
    fn stripe_of(key: Key) -> usize {
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize % DELTA_STRIPES
    }

    /// Records an upsert. The live structure is *not* touched — the op is
    /// folded into the replacement at drain time and visible to reads
    /// through [`DeltaLog::lookup`] until then.
    #[inline]
    pub fn record_insert(&self, key: Key, value: Value) {
        self.len.fetch_add(1, Ordering::Relaxed);
        let mut stripe = self.stripes[Self::stripe_of(key)].lock();
        stripe.ops.push(DeltaOp::Insert(key, value));
        stripe.latest.insert(key, DeltaOp::Insert(key, value));
    }

    /// Records a removal and returns the value the key held at this point in
    /// the linearization order: the overlay's pending value when the key was
    /// written during the capture window, otherwise `base(key)` — the
    /// caller passes a *read-only* lookup of the quiescent base structure
    /// (it runs under the stripe lock, so a racing same-key record cannot
    /// interleave between the lookup and the append).
    pub fn record_remove(
        &self,
        key: Key,
        base: impl FnOnce(Key) -> Option<Value>,
    ) -> Option<Value> {
        self.len.fetch_add(1, Ordering::Relaxed);
        let mut stripe = self.stripes[Self::stripe_of(key)].lock();
        let previous = match stripe.latest.get(&key) {
            Some(&DeltaOp::Insert(_, value)) => Some(value),
            Some(&DeltaOp::Remove(_)) => None,
            None => base(key),
        };
        stripe.ops.push(DeltaOp::Remove(key));
        stripe.latest.insert(key, DeltaOp::Remove(key));
        previous
    }

    /// The latest recorded operation on `key`, if any — the read overlay: a
    /// lookup that hits returns the pending state (`Insert` → that value,
    /// `Remove` → absent); a miss means the quiescent base is authoritative.
    pub fn lookup(&self, key: Key) -> Option<DeltaOp> {
        self.stripes[Self::stripe_of(key)]
            .lock()
            .latest
            .get(&key)
            .copied()
    }

    /// A point-in-time copy of the read overlay: the latest pending
    /// operation per key, folded to `Some(value)` for a pending insert and
    /// `None` for a pending remove. Each stripe is copied under its lock, so
    /// the copy is atomic per key (and exact whenever no record is in
    /// flight, e.g. under a structural fence). Frozen snapshots of a
    /// structure mid-rebuild lay this over the quiescent base, exactly like
    /// live reads lay [`DeltaLog::lookup`] over it.
    pub fn overlay_snapshot(&self) -> BTreeMap<Key, Option<Value>> {
        let mut out = BTreeMap::new();
        for stripe in self.stripes.iter() {
            let guard = stripe.lock();
            for (&key, op) in &guard.latest {
                let pending = match *op {
                    DeltaOp::Insert(_, value) => Some(value),
                    DeltaOp::Remove(_) => None,
                };
                out.insert(key, pending);
            }
        }
        out
    }

    /// Upper bound on the recorded-but-not-drained op count (exact when no
    /// record is in flight).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether no operation is waiting to be drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every recorded operation out of the log, stripe by stripe,
    /// leaving the read overlay intact (reads on the live side need it until
    /// publication). Within a stripe (and therefore per key) the append
    /// order is preserved; across stripes the order is arbitrary, which is
    /// fine because stripes partition the key space. Writers may keep
    /// recording concurrently — their ops land in the next drain. Successive
    /// drains must be performed by one thread for the cross-round per-key
    /// order to hold.
    pub fn take_all(&self) -> Vec<DeltaOp> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let mut guard = stripe.lock();
            if guard.ops.is_empty() {
                continue;
            }
            let drained = std::mem::take(&mut guard.ops);
            drop(guard);
            self.len.fetch_sub(drained.len(), Ordering::Relaxed);
            out.extend(drained);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_take_all_preserves_per_key_order_and_overlay() {
        let log = DeltaLog::new();
        log.record_insert(7, 1);
        log.record_insert(7, 2);
        assert_eq!(log.record_remove(9, |_| Some(99)), Some(99));
        assert_eq!(log.len(), 3);
        // The overlay serves reads: pending insert, pending remove, miss.
        assert_eq!(log.lookup(7), Some(DeltaOp::Insert(7, 2)));
        assert_eq!(log.lookup(9), Some(DeltaOp::Remove(9)));
        assert_eq!(log.lookup(8), None);
        let drained = log.take_all();
        assert_eq!(drained.len(), 3);
        assert!(log.is_empty());
        // Key 7's two inserts stay in append order.
        let on_seven: Vec<_> = drained.iter().filter(|op| op.key() == 7).collect();
        assert_eq!(
            on_seven,
            vec![&DeltaOp::Insert(7, 1), &DeltaOp::Insert(7, 2)]
        );
        // Drains keep the overlay (reads still need it until publication)…
        assert_eq!(log.lookup(7), Some(DeltaOp::Insert(7, 2)));
        // …and a fresh drain is empty.
        assert!(log.take_all().is_empty());
    }

    #[test]
    fn record_remove_linearizes_against_the_overlay() {
        let log = DeltaLog::new();
        // No pending op: the quiescent base answers.
        assert_eq!(log.record_remove(1, |_| Some(10)), Some(10));
        // The pending remove now shadows the base.
        assert_eq!(log.record_remove(1, |_| Some(10)), None);
        // A pending insert answers without consulting the base.
        log.record_insert(1, 11);
        assert_eq!(
            log.record_remove(1, |_| panic!("must not hit base")),
            Some(11)
        );
    }

    #[test]
    fn overlay_snapshot_folds_latest_op_per_key() {
        let log = DeltaLog::new();
        log.record_insert(1, 10);
        log.record_insert(1, 11);
        log.record_insert(2, 20);
        let _ = log.record_remove(2, |_| None);
        let _ = log.record_remove(3, |_| Some(30));
        let overlay = log.overlay_snapshot();
        assert_eq!(overlay.get(&1), Some(&Some(11)), "last insert wins");
        assert_eq!(overlay.get(&2), Some(&None), "remove shadows the insert");
        assert_eq!(overlay.get(&3), Some(&None));
        assert_eq!(overlay.get(&4), None);
        // The copy is detached: later records do not change it.
        log.record_insert(1, 12);
        assert_eq!(overlay.get(&1), Some(&Some(11)));
        // Drains keep the overlay, like `lookup`.
        let _ = log.take_all();
        assert_eq!(log.overlay_snapshot().get(&1), Some(&Some(12)));
    }

    #[test]
    fn backpressure_cap_trips_and_rearms() {
        let log = DeltaLog::with_cap(2);
        assert!(!log.over_cap());
        log.record_insert(1, 1);
        log.record_insert(2, 2);
        assert!(!log.over_cap(), "cap is inclusive");
        log.record_insert(3, 3);
        assert!(log.over_cap());
        log.set_cap(10);
        assert!(!log.over_cap());
        log.set_cap(0);
        assert!(log.over_cap());
        let _ = log.take_all();
        assert!(!log.over_cap(), "a drained log is under any cap");
    }

    #[test]
    fn concurrent_recorders_never_lose_ops() {
        let log = Arc::new(DeltaLog::new());
        const THREADS: usize = 4;
        const OPS: usize = 2_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..OPS {
                        let key = (t * OPS + i) as Key;
                        log.record_insert(key, key);
                    }
                });
            }
        });
        assert_eq!(log.len(), THREADS * OPS);
        assert_eq!(log.take_all().len(), THREADS * OPS);
    }

    #[test]
    fn drain_races_recorders_without_losing_ops() {
        let log = Arc::new(DeltaLog::new());
        const OPS: usize = 20_000;
        let mut drained = Vec::new();
        std::thread::scope(|scope| {
            let writer = {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..OPS {
                        log.record_insert(i as Key, 0);
                    }
                })
            };
            while !writer.is_finished() {
                drained.extend(log.take_all());
            }
            writer.join().unwrap();
        });
        drained.extend(log.take_all());
        assert_eq!(drained.len(), OPS);
    }

    #[test]
    fn apply_replays_onto_a_map() {
        let map = crate::ConcurrentPma::new(crate::PmaParams::small()).unwrap();
        DeltaOp::Insert(1, 10).apply(&map);
        DeltaOp::Insert(2, 20).apply(&map);
        DeltaOp::Remove(1).apply(&map);
        DeltaOp::Remove(99).apply(&map); // absent key: no-op
        map.flush();
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(2), Some(20));
    }

    #[test]
    fn stripes_spread_sequential_keys() {
        let hit: std::collections::HashSet<usize> =
            (0..256).map(|k| DeltaLog::stripe_of(k as Key)).collect();
        assert!(
            hit.len() > DELTA_STRIPES / 2,
            "sequential keys must spread across stripes, got {}",
            hit.len()
        );
    }
}
