//! Epoch-based centralized garbage collection (paper section 3.4).
//!
//! When the sparse array is resized, a brand-new instance (array + gates +
//! static index) is published through the single entry pointer and the old
//! instance must eventually be freed. Clients may still be traversing the old
//! gates, so the rebalancer *retires* the old instance into a centralized
//! garbage list together with the current epoch; a collector periodically
//! frees every retired item whose epoch precedes the minimum epoch among all
//! active clients.
//!
//! Every client operation is bracketed by [`EpochRegistry::pin`] /
//! [`EpochGuard::drop`]: while pinned, the client's slot advertises the epoch
//! at which its operation started, which prevents reclamation of anything it
//! can still observe.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Maximum number of threads that may operate on a single PMA concurrently.
///
/// Slots are claimed lazily and never released (a thread keeps its slot for
/// the lifetime of the registry); 256 comfortably covers the paper's 16-thread
/// experiments and typical many-core machines.
pub const MAX_THREADS: usize = 256;

/// Value advertising "not inside any operation".
const INACTIVE: u64 = 0;

/// Per-registry table of active epochs, one cache-line-padded slot per thread.
pub struct EpochRegistry {
    /// Unique id used by the thread-local slot cache.
    id: usize,
    /// Global epoch counter; starts at 1 so that `INACTIVE` (0) is never a
    /// valid epoch.
    global_epoch: AtomicU64,
    /// Epoch currently advertised by each registered thread (0 = inactive).
    slots: Box<[PaddedAtomicU64]>,
    /// Number of slots that have been claimed so far.
    claimed: AtomicUsize,
}

#[repr(align(64))]
struct PaddedAtomicU64(AtomicU64);

impl std::fmt::Debug for EpochRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochRegistry")
            .field("id", &self.id)
            .field("global_epoch", &self.global_epoch.load(Ordering::Relaxed))
            .field("claimed", &self.claimed.load(Ordering::Relaxed))
            .finish()
    }
}

static REGISTRY_IDS: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Maps registry id -> (slot index claimed by this thread, pin nesting
    /// depth). The depth makes pins reentrant: only the outermost pin
    /// publishes/clears the epoch, so nested operations (e.g. the rebalancer
    /// re-applying queued updates) remain protected by the original epoch.
    static SLOT_CACHE: std::cell::RefCell<Vec<(usize, usize, u32)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Default for EpochRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochRegistry {
    /// Creates a registry with [`MAX_THREADS`] slots.
    pub fn new() -> Self {
        let slots = (0..MAX_THREADS)
            .map(|_| PaddedAtomicU64(AtomicU64::new(INACTIVE)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            id: REGISTRY_IDS.fetch_add(1, Ordering::Relaxed),
            global_epoch: AtomicU64::new(1),
            slots,
            claimed: AtomicUsize::new(0),
        }
    }

    /// Current value of the global epoch counter.
    pub fn current_epoch(&self) -> u64 {
        self.global_epoch.load(Ordering::Acquire)
    }

    /// Advances the global epoch and returns the new value. Called whenever
    /// something is retired, so that future pins are distinguishable from
    /// pins that may still observe the retired memory.
    pub fn advance(&self) -> u64 {
        self.global_epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Enters an epoch-protected critical section. While the returned guard
    /// is alive, memory retired after this call will not be freed. Pins are
    /// reentrant: nested pins from the same thread keep the epoch of the
    /// outermost pin.
    pub fn pin(&self) -> EpochGuard<'_> {
        let slot = SLOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(entry) = cache.iter_mut().find(|(id, _, _)| *id == self.id) {
                if entry.2 == 0 {
                    let epoch = self.global_epoch.load(Ordering::Acquire);
                    self.slots[entry.1].0.store(epoch, Ordering::SeqCst);
                }
                entry.2 += 1;
                return entry.1;
            }
            let slot = self.claimed.fetch_add(1, Ordering::Relaxed);
            assert!(
                slot < MAX_THREADS,
                "more than {MAX_THREADS} threads registered with one PMA"
            );
            let epoch = self.global_epoch.load(Ordering::Acquire);
            self.slots[slot].0.store(epoch, Ordering::SeqCst);
            cache.push((self.id, slot, 1));
            slot
        });
        EpochGuard {
            registry: self,
            slot,
        }
    }

    /// Minimum epoch advertised by any active thread. Retired items stamped
    /// with an epoch *older* than this value can be freed. When no thread is
    /// active nothing is protected and `u64::MAX` is returned.
    pub fn min_active_epoch(&self) -> u64 {
        let claimed = self.claimed.load(Ordering::Acquire).min(MAX_THREADS);
        let mut min = u64::MAX;
        for slot in &self.slots[..claimed] {
            let e = slot.0.load(Ordering::SeqCst);
            if e != INACTIVE && e < min {
                min = e;
            }
        }
        min
    }

    /// Number of threads currently inside an epoch-protected section.
    pub fn active_threads(&self) -> usize {
        let claimed = self.claimed.load(Ordering::Acquire).min(MAX_THREADS);
        self.slots[..claimed]
            .iter()
            .filter(|s| s.0.load(Ordering::Relaxed) != INACTIVE)
            .count()
    }
}

/// RAII guard marking the calling thread as active in the registry.
#[must_use = "the epoch protection ends when the guard is dropped"]
pub struct EpochGuard<'a> {
    registry: &'a EpochRegistry,
    slot: usize,
}

impl std::fmt::Debug for EpochGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochGuard")
            .field("slot", &self.slot)
            .finish()
    }
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        let clear = SLOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let entry = cache
                .iter_mut()
                .find(|(id, _, _)| *id == self.registry.id)
                .expect("an EpochGuard exists, so its slot entry must exist");
            entry.2 -= 1;
            entry.2 == 0
        });
        if clear {
            self.registry.slots[self.slot]
                .0
                .store(INACTIVE, Ordering::SeqCst);
        }
    }
}

/// Centralized garbage list of retired allocations (paper section 3.4).
pub struct GarbageBin<T> {
    items: Mutex<Vec<(u64, T)>>,
}

impl<T> Default for GarbageBin<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for GarbageBin<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GarbageBin")
            .field("len", &self.items.lock().len())
            .finish()
    }
}

impl<T> GarbageBin<T> {
    /// Creates an empty bin.
    pub fn new() -> Self {
        Self {
            items: Mutex::new(Vec::new()),
        }
    }

    /// Adds `item` to the garbage, stamped with the epoch at which it was
    /// retired, and advances the registry's epoch so that pins taken after
    /// this call are distinguishable from pins that may still observe the
    /// item. The caller must have unlinked the item (made it unreachable from
    /// the entry pointer) *before* retiring it.
    pub fn retire(&self, registry: &EpochRegistry, item: T) {
        let epoch = registry.current_epoch();
        self.items.lock().push((epoch, item));
        registry.advance();
    }

    /// Frees every retired item whose epoch strictly precedes the minimum
    /// epoch of all active threads (every thread still pinned at the item's
    /// retirement epoch keeps it alive). Returns how many items were dropped.
    pub fn collect(&self, registry: &EpochRegistry) -> usize {
        let min = registry.min_active_epoch();
        let mut items = self.items.lock();
        let before = items.len();
        items.retain(|(epoch, _)| *epoch >= min);
        before - items.len()
    }

    /// Frees everything unconditionally (only safe when no client can be
    /// active any more, e.g. on drop of the owning structure).
    pub fn clear(&self) -> usize {
        let mut items = self.items.lock();
        let n = items.len();
        items.clear();
        n
    }

    /// Number of retired items not yet freed.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether the bin is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn pin_and_unpin_toggle_activity() {
        let reg = EpochRegistry::new();
        assert_eq!(reg.active_threads(), 0);
        {
            let _g = reg.pin();
            assert_eq!(reg.active_threads(), 1);
        }
        assert_eq!(reg.active_threads(), 0);
    }

    #[test]
    fn min_active_epoch_tracks_oldest_pin() {
        let reg = EpochRegistry::new();
        let g = reg.pin();
        let pinned_at = reg.current_epoch();
        reg.advance();
        reg.advance();
        assert_eq!(reg.min_active_epoch(), pinned_at);
        drop(g);
        // With no active pin nothing is protected.
        assert_eq!(reg.min_active_epoch(), u64::MAX);
    }

    #[test]
    fn garbage_is_not_collected_while_a_pin_predates_it() {
        struct NoisyDrop(Arc<AtomicBool>);
        impl Drop for NoisyDrop {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let reg = EpochRegistry::new();
        let bin: GarbageBin<NoisyDrop> = GarbageBin::new();
        let dropped = Arc::new(AtomicBool::new(false));

        let guard = reg.pin();
        bin.retire(&reg, NoisyDrop(dropped.clone()));
        assert_eq!(bin.collect(&reg), 0, "pinned thread must protect the item");
        assert!(!dropped.load(Ordering::SeqCst));
        drop(guard);
        assert_eq!(bin.collect(&reg), 1);
        assert!(dropped.load(Ordering::SeqCst));
        assert!(bin.is_empty());
    }

    #[test]
    fn pins_started_after_retirement_do_not_block_collection() {
        let reg = EpochRegistry::new();
        let bin: GarbageBin<u64> = GarbageBin::new();
        bin.retire(&reg, 1);
        let _late = reg.pin();
        assert_eq!(bin.collect(&reg), 1);
    }

    #[test]
    fn clear_drops_everything() {
        let reg = EpochRegistry::new();
        let bin: GarbageBin<u64> = GarbageBin::new();
        bin.retire(&reg, 1);
        bin.retire(&reg, 2);
        assert_eq!(bin.len(), 2);
        assert_eq!(bin.clear(), 2);
        assert!(bin.is_empty());
    }

    #[test]
    fn nested_pins_keep_the_outer_epoch() {
        let reg = EpochRegistry::new();
        let bin: GarbageBin<u64> = GarbageBin::new();
        let outer = reg.pin();
        let outer_epoch = reg.min_active_epoch();
        bin.retire(&reg, 42);
        {
            let _inner = reg.pin();
            assert_eq!(reg.min_active_epoch(), outer_epoch);
        }
        // Dropping the inner pin must NOT release the protection.
        assert_eq!(reg.active_threads(), 1);
        assert_eq!(bin.collect(&reg), 0);
        drop(outer);
        assert_eq!(reg.active_threads(), 0);
        assert_eq!(bin.collect(&reg), 1);
    }

    #[test]
    fn concurrent_pins_from_many_threads() {
        let reg = Arc::new(EpochRegistry::new());
        let bin = Arc::new(GarbageBin::<usize>::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let reg = reg.clone();
            let bin = bin.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let _g = reg.pin();
                    if i % 50 == 0 {
                        bin.retire(&reg, t * 1000 + i);
                    }
                    if i % 70 == 0 {
                        bin.collect(&reg);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // With no pins outstanding everything must be collectable.
        bin.collect(&reg);
        assert!(bin.is_empty());
    }
}
