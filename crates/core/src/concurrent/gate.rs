//! Gates: the per-chunk latches and metadata of the parallel sparse array
//! (paper section 3.1).
//!
//! Each gate protects one chunk (a fixed number of consecutive segments) and
//! stores:
//! * a read-write latch, modelled as a small state machine (`Free`,
//!   `Read(n)`, `Write`, `Rebalance`) behind a mutex + condvar, so that latch
//!   ownership can be *transferred* to the rebalancer service;
//! * the pair of fence keys bounding the keys that may live in the chunk;
//! * the combining queue (`pQ` in the paper) used by the asynchronous update
//!   modes;
//! * book-keeping for resize invalidation and the `t_delay` throttle.
//!
//! The chunk payload itself lives in an [`UnsafeCell`] as a reference-counted
//! *version* ([`ChunkVersion`]): it may only be accessed while the gate latch
//! is held in the appropriate mode. That protocol is enforced by the callers
//! in [`crate::concurrent`]; the unsafe accessors here document the
//! precondition. Frozen snapshots clone the `Arc` under a shared latch; a
//! later exclusive mutation notices the extra reference and copies the chunk
//! before writing (copy-on-write), so the snapshot's version is immutable for
//! as long as it is held.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, MutexGuard};
use pma_common::{Key, Value, KEY_MAX, KEY_MIN};

use super::chunk::ChunkData;

/// One immutable-once-shared version of a gate's chunk, stamped with the
/// global write generation that installed it (see
/// [`super::version::CowGen`]). The stamp is observability metadata — the
/// copy-on-write protocol itself is carried entirely by the `Arc` reference
/// count: a count above one means a frozen snapshot holds this version, and
/// any exclusive mutator must copy instead of mutating in place.
#[derive(Debug)]
pub struct ChunkVersion {
    /// Write generation current when this version was installed.
    pub gen: u64,
    /// The chunk payload.
    pub data: ChunkData,
}

/// An update forwarded through a combining queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert (or overwrite) a key/value pair.
    Insert(Key, Value),
    /// Remove a key.
    Delete(Key),
}

impl UpdateOp {
    /// The key the operation refers to.
    #[inline]
    pub fn key(&self) -> Key {
        match self {
            UpdateOp::Insert(k, _) | UpdateOp::Delete(k) => *k,
        }
    }
}

/// Latch state of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// No thread holds the latch.
    Free,
    /// Held in shared mode by `n` readers.
    Read(u32),
    /// Held exclusively by one writer.
    Write,
    /// Held by the rebalancer service (or handed over to it).
    Rebalance,
}

/// Mutable metadata of a gate, all protected by the gate's mutex.
#[derive(Debug)]
pub struct GateState {
    /// Current latch state.
    pub mode: GateMode,
    /// Smallest key that may be stored in this gate's chunk (inclusive).
    pub fence_lo: Key,
    /// Largest key that may be stored in this gate's chunk (inclusive).
    pub fence_hi: Key,
    /// Set when the instance this gate belongs to has been replaced by a
    /// resize; clients must restart from the new entry pointer.
    pub invalidated: bool,
    /// The latch has been handed over to the rebalancer service.
    pub service_owned: bool,
    /// The combining queue has been handed to the rebalancer (batch mode,
    /// `t_delay` not yet elapsed); arriving writers keep appending to it.
    pub delegated: bool,
    /// The combining queue is frozen by a resize: the queued operations are
    /// being folded into the replacement instance, so would-be queueing
    /// writers must block until the new instance is published instead of
    /// appending to soon-to-be-dead state.
    pub queue_closed: bool,
    /// Writers (and the rebalancer service) currently blocked waiting to
    /// acquire this gate exclusively. While non-zero, arriving readers park
    /// instead of joining `Read` mode: without this, continuously
    /// overlapping scanners never drain the reader count to zero and an
    /// exclusive acquirer starves (writer preference).
    pub writers_waiting: u32,
    /// A writer is active and accepts forwarded operations (paper: `pQ` set).
    pub queue_open: bool,
    /// Operations forwarded by other writers (the combining queue).
    pub pending: VecDeque<UpdateOp>,
    /// When this gate last took part in a global rebalance (for `t_delay`).
    pub last_global_rebalance: Instant,
    /// Monotonic counter bumped every time a rebalance involving this gate
    /// completes; used by handed-off writers to wait for completion.
    pub rebalance_epoch: u64,
}

impl GateState {
    fn new(fence_lo: Key, fence_hi: Key) -> Self {
        Self {
            mode: GateMode::Free,
            fence_lo,
            fence_hi,
            invalidated: false,
            service_owned: false,
            delegated: false,
            queue_closed: false,
            writers_waiting: 0,
            queue_open: false,
            pending: VecDeque::new(),
            last_global_rebalance: Instant::now(),
            rebalance_epoch: 0,
        }
    }

    /// Whether `key` falls within this gate's fences.
    #[inline]
    pub fn covers(&self, key: Key) -> bool {
        key >= self.fence_lo && key <= self.fence_hi
    }
}

/// One gate: latch + metadata + the chunk it protects.
pub struct Gate {
    /// Position of the gate in the instance's gate array.
    pub id: usize,
    state: Mutex<GateState>,
    cond: Condvar,
    chunk: UnsafeCell<Arc<ChunkVersion>>,
}

// SAFETY: the `UnsafeCell<Arc<ChunkVersion>>` is only accessed through the
// unsafe accessors below, whose contract requires the caller to hold the gate
// latch in the appropriate mode (shared for `chunk()`/`chunk_version()`,
// exclusive — `Write` or `Rebalance` ownership — for
// `chunk_mut_cow()`/`install_chunk()`). The latch state itself is protected
// by the internal mutex; `Arc` clones escaping through `chunk_version()` are
// immutable from that point on (every exclusive mutation checks the
// reference count and copies when it is shared), so reads through an escaped
// clone never race a write.
unsafe impl Sync for Gate {}
unsafe impl Send for Gate {}

impl std::fmt::Debug for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Gate")
            .field("id", &self.id)
            .field("mode", &st.mode)
            .field("fence_lo", &st.fence_lo)
            .field("fence_hi", &st.fence_hi)
            .field("invalidated", &st.invalidated)
            .finish()
    }
}

impl Gate {
    /// Creates a gate protecting an empty chunk with the given fences.
    pub fn new(id: usize, num_segments: usize, segment_capacity: usize) -> Self {
        Self::with_chunk(
            id,
            ChunkData::new(num_segments, segment_capacity),
            KEY_MIN,
            KEY_MAX,
        )
    }

    /// Creates a gate around an existing chunk with the given fences,
    /// stamped with generation 0 (pre-versioning construction paths and
    /// tests).
    pub fn with_chunk(id: usize, chunk: ChunkData, fence_lo: Key, fence_hi: Key) -> Self {
        Self::with_chunk_gen(id, chunk, 0, fence_lo, fence_hi)
    }

    /// Creates a gate around an existing chunk stamped with the given write
    /// generation.
    pub fn with_chunk_gen(
        id: usize,
        chunk: ChunkData,
        gen: u64,
        fence_lo: Key,
        fence_hi: Key,
    ) -> Self {
        Self {
            id,
            state: Mutex::new(GateState::new(fence_lo, fence_hi)),
            cond: Condvar::new(),
            chunk: UnsafeCell::new(Arc::new(ChunkVersion { gen, data: chunk })),
        }
    }

    /// Locks the gate's metadata.
    pub fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock()
    }

    /// Blocks on the gate's condition variable until notified. The guard must
    /// belong to this gate's mutex.
    pub fn wait(&self, guard: &mut MutexGuard<'_, GateState>) {
        self.cond.wait(guard);
    }

    /// Wakes every thread blocked on this gate.
    pub fn notify_all(&self) {
        self.cond.notify_all();
    }

    /// Shared access to the chunk.
    ///
    /// # Safety
    /// The caller must hold this gate's latch in `Read`, `Write` or
    /// `Rebalance` mode (i.e. no other thread may mutate the chunk for the
    /// duration of the returned borrow).
    pub unsafe fn chunk(&self) -> &ChunkData {
        let version: &Arc<ChunkVersion> = &*self.chunk.get();
        &version.data
    }

    /// Clones the gate's current chunk version (an `Arc` bump, no data
    /// copy). This is how a frozen snapshot captures the chunk: the returned
    /// handle stays valid — and immutable — after the latch is released,
    /// because every exclusive mutation first checks the version's reference
    /// count and copies the payload when the version is shared.
    ///
    /// # Safety
    /// Same contract as [`Gate::chunk`] (any latch mode held).
    pub unsafe fn chunk_version(&self) -> Arc<ChunkVersion> {
        Arc::clone(&*self.chunk.get())
    }

    /// Exclusive, copy-on-write access to the chunk. If the current version
    /// is uniquely owned by the gate, a plain mutable borrow is returned
    /// (`copied == false`, the hot path: one relaxed refcount load). If a
    /// frozen snapshot still holds the version, the payload is cloned into a
    /// fresh version stamped `stamp` and the borrow points at the copy
    /// (`copied == true`); the snapshot keeps the old version untouched.
    ///
    /// # Safety
    /// The caller must hold this gate's latch exclusively (`Write` mode, or
    /// `Rebalance` mode owned by the rebalancer service).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn chunk_mut_cow(&self, stamp: u64) -> (&mut ChunkData, bool) {
        let slot = &mut *self.chunk.get();
        let copied = if Arc::get_mut(slot).is_none() {
            // Shared with a snapshot: copy before mutating. The refcount
            // check is race-free because snapshot captures happen under the
            // gate latch too — a snapshot either cloned the Arc before we
            // acquired exclusivity (count > 1, we copy) or will capture the
            // version we are about to install (count == 1, it sees the
            // mutated chunk, which is correct: the mutation happened before
            // the freeze).
            let fresh = ChunkVersion {
                gen: stamp,
                data: slot.data.clone(),
            };
            *slot = Arc::new(fresh);
            true
        } else {
            false
        };
        let version = Arc::get_mut(slot).expect("freshly installed version must be unique");
        (&mut version.data, copied)
    }

    /// Installs `new` (stamped `gen`) as the gate's chunk, returning the
    /// previous version. This is the "memory rewiring" publication step of a
    /// rebalance: workers build the new chunk in a staging buffer and the
    /// master installs it with a pointer-sized swap. The returned version
    /// stays alive for any snapshot that captured it.
    ///
    /// # Safety
    /// Same contract as [`Gate::chunk_mut_cow`].
    pub unsafe fn install_chunk(&self, new: ChunkData, gen: u64) -> Arc<ChunkVersion> {
        std::mem::replace(
            &mut *self.chunk.get(),
            Arc::new(ChunkVersion { gen, data: new }),
        )
    }

    /// Parks an exclusive acquirer (a writer or the rebalancer service) on
    /// the gate, counted in [`GateState::writers_waiting`] so arriving
    /// readers yield for the duration (writer preference). Readers parked
    /// by that counter may have no later wake-up coming if this acquirer
    /// walks away to a neighbouring gate instead of acquiring, so the last
    /// exclusive waiter to leave re-notifies.
    pub fn wait_exclusive(&self, guard: &mut MutexGuard<'_, GateState>) {
        let _span = pma_common::obs::span(pma_common::obs::Category::GateWait, self.id as u64);
        guard.writers_waiting += 1;
        self.wait(guard);
        guard.writers_waiting -= 1;
        if guard.writers_waiting == 0 {
            self.notify_all();
        }
    }

    /// Releases a shared (read) acquisition.
    pub fn release_read(&self) {
        let mut st = self.lock();
        match st.mode {
            GateMode::Read(1) => {
                st.mode = GateMode::Free;
                drop(st);
                self.notify_all();
            }
            GateMode::Read(n) => st.mode = GateMode::Read(n - 1),
            ref other => unreachable!("release_read while in mode {other:?}"),
        }
    }

    /// Releases an exclusive (write) acquisition and wakes waiters.
    pub fn release_write(&self) {
        let mut st = self.lock();
        debug_assert_eq!(st.mode, GateMode::Write);
        st.mode = GateMode::Free;
        st.queue_open = false;
        drop(st);
        self.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn update_op_key() {
        assert_eq!(UpdateOp::Insert(5, 1).key(), 5);
        assert_eq!(UpdateOp::Delete(-3).key(), -3);
    }

    #[test]
    fn new_gate_covers_whole_key_space() {
        let g = Gate::new(0, 2, 8);
        let st = g.lock();
        assert_eq!(st.mode, GateMode::Free);
        assert!(st.covers(KEY_MIN));
        assert!(st.covers(0));
        assert!(st.covers(KEY_MAX));
        assert!(!st.invalidated);
    }

    #[test]
    fn fence_covering() {
        let g = Gate::with_chunk(1, ChunkData::new(1, 4), 10, 20);
        let st = g.lock();
        assert!(!st.covers(9));
        assert!(st.covers(10));
        assert!(st.covers(20));
        assert!(!st.covers(21));
    }

    #[test]
    fn read_acquire_release_cycle() {
        let g = Gate::new(0, 1, 4);
        {
            let mut st = g.lock();
            st.mode = GateMode::Read(2);
        }
        g.release_read();
        assert_eq!(g.lock().mode, GateMode::Read(1));
        g.release_read();
        assert_eq!(g.lock().mode, GateMode::Free);
    }

    #[test]
    fn write_release_clears_queue_flag() {
        let g = Gate::new(0, 1, 4);
        {
            let mut st = g.lock();
            st.mode = GateMode::Write;
            st.queue_open = true;
        }
        g.release_write();
        let st = g.lock();
        assert_eq!(st.mode, GateMode::Free);
        assert!(!st.queue_open);
    }

    #[test]
    fn chunk_access_under_exclusive_latch() {
        let g = Gate::new(0, 2, 8);
        {
            let mut st = g.lock();
            st.mode = GateMode::Write;
        }
        // SAFETY: we set (and logically hold) Write mode above; no other
        // thread exists in this test.
        unsafe {
            let (chunk, copied) = g.chunk_mut_cow(1);
            assert!(!copied, "uniquely owned version must not copy");
            chunk.try_insert(7, 70);
            assert_eq!(g.chunk().get(7), Some(70));
        }
        g.release_write();
    }

    #[test]
    fn install_chunk_swaps_payload() {
        let g = Gate::new(0, 1, 4);
        {
            let mut st = g.lock();
            st.mode = GateMode::Write;
        }
        let mut staged = ChunkData::new(1, 4);
        staged.try_insert(1, 1);
        // SAFETY: exclusive latch held as above.
        let old = unsafe { g.install_chunk(staged, 7) };
        assert_eq!(old.data.cardinality(), 0);
        assert_eq!(old.gen, 0);
        unsafe {
            assert_eq!(g.chunk().get(1), Some(1));
            assert_eq!(g.chunk_version().gen, 7);
        }
        g.release_write();
    }

    #[test]
    fn shared_version_copies_on_write_and_keeps_the_frozen_payload() {
        let g = Gate::new(0, 1, 8);
        {
            let mut st = g.lock();
            st.mode = GateMode::Write;
        }
        // SAFETY: exclusive latch held as above; single-threaded test.
        unsafe {
            g.chunk_mut_cow(0).0.try_insert(1, 10);
            // A snapshot captures the version (Arc clone, no data copy).
            let frozen = g.chunk_version();
            // The next mutation must copy instead of touching the captured
            // payload, and restamp the fresh version.
            let (chunk, copied) = g.chunk_mut_cow(3);
            assert!(copied, "shared version must be copied before mutation");
            chunk.try_insert(2, 20);
            chunk.remove(1);
            assert_eq!(frozen.data.get(1), Some(10), "frozen payload mutated");
            assert_eq!(frozen.data.get(2), None, "frozen payload mutated");
            assert_eq!(frozen.gen, 0);
            assert_eq!(g.chunk_version().gen, 3);
            assert_eq!(g.chunk().get(1), None);
            assert_eq!(g.chunk().get(2), Some(20));
            drop(frozen);
            // With the snapshot gone the gate owns its version again.
            let (_, copied) = g.chunk_mut_cow(4);
            assert!(!copied, "unique again after the snapshot dropped");
        }
        g.release_write();
    }

    #[test]
    fn writer_wakes_blocked_reader() {
        let g = Arc::new(Gate::new(0, 1, 4));
        {
            let mut st = g.lock();
            st.mode = GateMode::Write;
        }
        let g2 = g.clone();
        let reader = std::thread::spawn(move || {
            let mut st = g2.lock();
            while !matches!(st.mode, GateMode::Free | GateMode::Read(_)) {
                g2.wait(&mut st);
            }
            let n = match st.mode {
                GateMode::Read(n) => n + 1,
                _ => 1,
            };
            st.mode = GateMode::Read(n);
            drop(st);
            g2.release_read();
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        g.release_write();
        assert!(reader.join().unwrap());
        assert_eq!(g.lock().mode, GateMode::Free);
    }

    #[test]
    fn pending_queue_fifo() {
        let g = Gate::new(0, 1, 4);
        let mut st = g.lock();
        st.pending.push_back(UpdateOp::Insert(1, 1));
        st.pending.push_back(UpdateOp::Delete(2));
        assert_eq!(st.pending.pop_front(), Some(UpdateOp::Insert(1, 1)));
        assert_eq!(st.pending.pop_front(), Some(UpdateOp::Delete(2)));
        assert_eq!(st.pending.pop_front(), None);
    }
}
