//! Gates: the per-chunk latches and metadata of the parallel sparse array
//! (paper section 3.1).
//!
//! Each gate protects one chunk (a fixed number of consecutive segments) and
//! stores:
//! * a read-write latch, modelled as a small state machine (`Free`,
//!   `Read(n)`, `Write`, `Rebalance`) behind a mutex + condvar, so that latch
//!   ownership can be *transferred* to the rebalancer service;
//! * the pair of fence keys bounding the keys that may live in the chunk;
//! * the combining queue (`pQ` in the paper) used by the asynchronous update
//!   modes;
//! * book-keeping for resize invalidation and the `t_delay` throttle.
//!
//! The chunk payload itself lives in an [`UnsafeCell`]: it may only be
//! accessed while the gate latch is held in the appropriate mode. That
//! protocol is enforced by the callers in [`crate::concurrent`]; the unsafe
//! accessors here document the precondition.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::time::Instant;

use parking_lot::{Condvar, Mutex, MutexGuard};
use pma_common::{Key, Value, KEY_MAX, KEY_MIN};

use super::chunk::ChunkData;

/// An update forwarded through a combining queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert (or overwrite) a key/value pair.
    Insert(Key, Value),
    /// Remove a key.
    Delete(Key),
}

impl UpdateOp {
    /// The key the operation refers to.
    #[inline]
    pub fn key(&self) -> Key {
        match self {
            UpdateOp::Insert(k, _) | UpdateOp::Delete(k) => *k,
        }
    }
}

/// Latch state of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// No thread holds the latch.
    Free,
    /// Held in shared mode by `n` readers.
    Read(u32),
    /// Held exclusively by one writer.
    Write,
    /// Held by the rebalancer service (or handed over to it).
    Rebalance,
}

/// Mutable metadata of a gate, all protected by the gate's mutex.
#[derive(Debug)]
pub struct GateState {
    /// Current latch state.
    pub mode: GateMode,
    /// Smallest key that may be stored in this gate's chunk (inclusive).
    pub fence_lo: Key,
    /// Largest key that may be stored in this gate's chunk (inclusive).
    pub fence_hi: Key,
    /// Set when the instance this gate belongs to has been replaced by a
    /// resize; clients must restart from the new entry pointer.
    pub invalidated: bool,
    /// The latch has been handed over to the rebalancer service.
    pub service_owned: bool,
    /// The combining queue has been handed to the rebalancer (batch mode,
    /// `t_delay` not yet elapsed); arriving writers keep appending to it.
    pub delegated: bool,
    /// The combining queue is frozen by a resize: the queued operations are
    /// being folded into the replacement instance, so would-be queueing
    /// writers must block until the new instance is published instead of
    /// appending to soon-to-be-dead state.
    pub queue_closed: bool,
    /// Writers (and the rebalancer service) currently blocked waiting to
    /// acquire this gate exclusively. While non-zero, arriving readers park
    /// instead of joining `Read` mode: without this, continuously
    /// overlapping scanners never drain the reader count to zero and an
    /// exclusive acquirer starves (writer preference).
    pub writers_waiting: u32,
    /// A writer is active and accepts forwarded operations (paper: `pQ` set).
    pub queue_open: bool,
    /// Operations forwarded by other writers (the combining queue).
    pub pending: VecDeque<UpdateOp>,
    /// When this gate last took part in a global rebalance (for `t_delay`).
    pub last_global_rebalance: Instant,
    /// Monotonic counter bumped every time a rebalance involving this gate
    /// completes; used by handed-off writers to wait for completion.
    pub rebalance_epoch: u64,
}

impl GateState {
    fn new(fence_lo: Key, fence_hi: Key) -> Self {
        Self {
            mode: GateMode::Free,
            fence_lo,
            fence_hi,
            invalidated: false,
            service_owned: false,
            delegated: false,
            queue_closed: false,
            writers_waiting: 0,
            queue_open: false,
            pending: VecDeque::new(),
            last_global_rebalance: Instant::now(),
            rebalance_epoch: 0,
        }
    }

    /// Whether `key` falls within this gate's fences.
    #[inline]
    pub fn covers(&self, key: Key) -> bool {
        key >= self.fence_lo && key <= self.fence_hi
    }
}

/// One gate: latch + metadata + the chunk it protects.
pub struct Gate {
    /// Position of the gate in the instance's gate array.
    pub id: usize,
    state: Mutex<GateState>,
    cond: Condvar,
    chunk: UnsafeCell<ChunkData>,
}

// SAFETY: the `UnsafeCell<ChunkData>` is only accessed through the unsafe
// accessors below, whose contract requires the caller to hold the gate latch
// in the appropriate mode (shared for `chunk()`, exclusive — `Write` or
// `Rebalance` ownership — for `chunk_mut()`/`replace_chunk()`). The latch
// state itself is protected by the internal mutex.
unsafe impl Sync for Gate {}
unsafe impl Send for Gate {}

impl std::fmt::Debug for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Gate")
            .field("id", &self.id)
            .field("mode", &st.mode)
            .field("fence_lo", &st.fence_lo)
            .field("fence_hi", &st.fence_hi)
            .field("invalidated", &st.invalidated)
            .finish()
    }
}

impl Gate {
    /// Creates a gate protecting an empty chunk with the given fences.
    pub fn new(id: usize, num_segments: usize, segment_capacity: usize) -> Self {
        Self::with_chunk(
            id,
            ChunkData::new(num_segments, segment_capacity),
            KEY_MIN,
            KEY_MAX,
        )
    }

    /// Creates a gate around an existing chunk with the given fences.
    pub fn with_chunk(id: usize, chunk: ChunkData, fence_lo: Key, fence_hi: Key) -> Self {
        Self {
            id,
            state: Mutex::new(GateState::new(fence_lo, fence_hi)),
            cond: Condvar::new(),
            chunk: UnsafeCell::new(chunk),
        }
    }

    /// Locks the gate's metadata.
    pub fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock()
    }

    /// Blocks on the gate's condition variable until notified. The guard must
    /// belong to this gate's mutex.
    pub fn wait(&self, guard: &mut MutexGuard<'_, GateState>) {
        self.cond.wait(guard);
    }

    /// Wakes every thread blocked on this gate.
    pub fn notify_all(&self) {
        self.cond.notify_all();
    }

    /// Shared access to the chunk.
    ///
    /// # Safety
    /// The caller must hold this gate's latch in `Read`, `Write` or
    /// `Rebalance` mode (i.e. no other thread may mutate the chunk for the
    /// duration of the returned borrow).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn chunk(&self) -> &ChunkData {
        &*self.chunk.get()
    }

    /// Exclusive access to the chunk.
    ///
    /// # Safety
    /// The caller must hold this gate's latch exclusively (`Write` mode, or
    /// `Rebalance` mode owned by the rebalancer service).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn chunk_mut(&self) -> &mut ChunkData {
        &mut *self.chunk.get()
    }

    /// Swaps the gate's chunk with `new`, returning the old one. This is the
    /// "memory rewiring" publication step of a rebalance: workers build the
    /// new chunk in a staging buffer and the master installs it with a
    /// pointer-sized swap.
    ///
    /// # Safety
    /// Same contract as [`Gate::chunk_mut`].
    pub unsafe fn replace_chunk(&self, new: ChunkData) -> ChunkData {
        std::mem::replace(&mut *self.chunk.get(), new)
    }

    /// Parks an exclusive acquirer (a writer or the rebalancer service) on
    /// the gate, counted in [`GateState::writers_waiting`] so arriving
    /// readers yield for the duration (writer preference). Readers parked
    /// by that counter may have no later wake-up coming if this acquirer
    /// walks away to a neighbouring gate instead of acquiring, so the last
    /// exclusive waiter to leave re-notifies.
    pub fn wait_exclusive(&self, guard: &mut MutexGuard<'_, GateState>) {
        guard.writers_waiting += 1;
        self.wait(guard);
        guard.writers_waiting -= 1;
        if guard.writers_waiting == 0 {
            self.notify_all();
        }
    }

    /// Releases a shared (read) acquisition.
    pub fn release_read(&self) {
        let mut st = self.lock();
        match st.mode {
            GateMode::Read(1) => {
                st.mode = GateMode::Free;
                drop(st);
                self.notify_all();
            }
            GateMode::Read(n) => st.mode = GateMode::Read(n - 1),
            ref other => unreachable!("release_read while in mode {other:?}"),
        }
    }

    /// Releases an exclusive (write) acquisition and wakes waiters.
    pub fn release_write(&self) {
        let mut st = self.lock();
        debug_assert_eq!(st.mode, GateMode::Write);
        st.mode = GateMode::Free;
        st.queue_open = false;
        drop(st);
        self.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn update_op_key() {
        assert_eq!(UpdateOp::Insert(5, 1).key(), 5);
        assert_eq!(UpdateOp::Delete(-3).key(), -3);
    }

    #[test]
    fn new_gate_covers_whole_key_space() {
        let g = Gate::new(0, 2, 8);
        let st = g.lock();
        assert_eq!(st.mode, GateMode::Free);
        assert!(st.covers(KEY_MIN));
        assert!(st.covers(0));
        assert!(st.covers(KEY_MAX));
        assert!(!st.invalidated);
    }

    #[test]
    fn fence_covering() {
        let g = Gate::with_chunk(1, ChunkData::new(1, 4), 10, 20);
        let st = g.lock();
        assert!(!st.covers(9));
        assert!(st.covers(10));
        assert!(st.covers(20));
        assert!(!st.covers(21));
    }

    #[test]
    fn read_acquire_release_cycle() {
        let g = Gate::new(0, 1, 4);
        {
            let mut st = g.lock();
            st.mode = GateMode::Read(2);
        }
        g.release_read();
        assert_eq!(g.lock().mode, GateMode::Read(1));
        g.release_read();
        assert_eq!(g.lock().mode, GateMode::Free);
    }

    #[test]
    fn write_release_clears_queue_flag() {
        let g = Gate::new(0, 1, 4);
        {
            let mut st = g.lock();
            st.mode = GateMode::Write;
            st.queue_open = true;
        }
        g.release_write();
        let st = g.lock();
        assert_eq!(st.mode, GateMode::Free);
        assert!(!st.queue_open);
    }

    #[test]
    fn chunk_access_under_exclusive_latch() {
        let g = Gate::new(0, 2, 8);
        {
            let mut st = g.lock();
            st.mode = GateMode::Write;
        }
        // SAFETY: we set (and logically hold) Write mode above; no other
        // thread exists in this test.
        unsafe {
            g.chunk_mut().try_insert(7, 70);
            assert_eq!(g.chunk().get(7), Some(70));
        }
        g.release_write();
    }

    #[test]
    fn replace_chunk_swaps_payload() {
        let g = Gate::new(0, 1, 4);
        {
            let mut st = g.lock();
            st.mode = GateMode::Write;
        }
        let mut staged = ChunkData::new(1, 4);
        staged.try_insert(1, 1);
        // SAFETY: exclusive latch held as above.
        let old = unsafe { g.replace_chunk(staged) };
        assert_eq!(old.cardinality(), 0);
        unsafe {
            assert_eq!(g.chunk().get(1), Some(1));
        }
        g.release_write();
    }

    #[test]
    fn writer_wakes_blocked_reader() {
        let g = Arc::new(Gate::new(0, 1, 4));
        {
            let mut st = g.lock();
            st.mode = GateMode::Write;
        }
        let g2 = g.clone();
        let reader = std::thread::spawn(move || {
            let mut st = g2.lock();
            while !matches!(st.mode, GateMode::Free | GateMode::Read(_)) {
                g2.wait(&mut st);
            }
            let n = match st.mode {
                GateMode::Read(n) => n + 1,
                _ => 1,
            };
            st.mode = GateMode::Read(n);
            drop(st);
            g2.release_read();
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        g.release_write();
        assert!(reader.join().unwrap());
        assert_eq!(g.lock().mode, GateMode::Free);
    }

    #[test]
    fn pending_queue_fifo() {
        let g = Gate::new(0, 1, 4);
        let mut st = g.lock();
        st.pending.push_back(UpdateOp::Insert(1, 1));
        st.pending.push_back(UpdateOp::Delete(2));
        assert_eq!(st.pending.pop_front(), Some(UpdateOp::Insert(1, 1)));
        assert_eq!(st.pending.pop_front(), Some(UpdateOp::Delete(2)));
        assert_eq!(st.pending.pop_front(), None);
    }
}
