//! One published "instance" of the parallel sparse array: the gates (with
//! their chunks), the static index over them, and the geometry shared by
//! both.
//!
//! Following the paper (section 3.4), the gates, the index and the storage
//! have a *single entry pointer*: the [`PmaInstance`]. A resize builds a
//! brand-new instance, publishes it atomically and retires the old one
//! through the epoch-based garbage collector.

use pma_common::{Key, Value, KEY_MAX, KEY_MIN};

use crate::calibrator::CalibratorTree;
use crate::params::PmaParams;
use crate::sequential::even_targets;

use super::chunk::ChunkData;
use super::gate::Gate;
use super::static_index::StaticIndex;

/// Gates + static index + geometry. Immutable in shape; the chunks and gate
/// metadata are mutated under the gate latches.
#[derive(Debug)]
pub struct PmaInstance {
    /// The gates, in key order.
    pub gates: Box<[Gate]>,
    /// The static index routing keys to gates.
    pub index: StaticIndex,
    /// Segments per gate (identical for every gate).
    pub segments_per_gate: usize,
    /// Slots per segment.
    pub segment_capacity: usize,
    /// Calibrator tree over *all* segments of the instance.
    pub calibrator: CalibratorTree,
    /// Calibrator level whose windows coincide with one gate.
    pub gate_level: u32,
}

impl PmaInstance {
    /// Creates an empty instance with a single gate.
    pub fn empty(params: &PmaParams) -> Self {
        Self::from_sorted(&[], &[], 1, params)
    }

    /// Builds an instance holding the given sorted elements, spread evenly
    /// over `num_gates` gates (the traditional post-resize distribution).
    ///
    /// # Panics
    /// Panics if `num_gates` is not a power of two, the keys are not strictly
    /// increasing, or the elements do not fit.
    pub fn from_sorted(
        keys: &[Key],
        values: &[Value],
        num_gates: usize,
        params: &PmaParams,
    ) -> Self {
        Self::from_sorted_gen(keys, values, num_gates, params, 0)
    }

    /// [`Self::from_sorted`], stamping every chunk with write generation
    /// `gen`. Resizes use this with a freshly advanced generation so frozen
    /// snapshots can tell pre-resize chunk versions from post-resize ones.
    pub fn from_sorted_gen(
        keys: &[Key],
        values: &[Value],
        num_gates: usize,
        params: &PmaParams,
        gen: u64,
    ) -> Self {
        assert!(
            num_gates.is_power_of_two(),
            "num_gates must be a power of two"
        );
        assert_eq!(keys.len(), values.len());
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
        let segments_per_gate = params.segments_per_gate;
        let segment_capacity = params.segment_capacity;
        let num_segments = num_gates * segments_per_gate;
        let capacity = num_segments * segment_capacity;
        assert!(
            keys.len() <= capacity,
            "elements do not fit in the instance"
        );

        let targets = even_targets(keys.len(), num_segments, segment_capacity);
        let mut stream = keys.iter().copied().zip(values.iter().copied());

        // Build each gate's chunk from its slice of the per-segment targets.
        let mut chunks = Vec::with_capacity(num_gates);
        for g in 0..num_gates {
            let t = &targets[g * segments_per_gate..(g + 1) * segments_per_gate];
            chunks.push(ChunkData::from_stream(
                segments_per_gate,
                segment_capacity,
                t,
                &mut stream,
            ));
        }
        assert!(stream.next().is_none());

        let mins: Vec<Option<Key>> = chunks.iter().map(|c| c.min_key()).collect();
        let fences = compute_window_fences(KEY_MIN, KEY_MAX, &mins);
        let separators: Vec<Key> = fences.iter().map(|&(lo, _)| lo).collect();
        let index = StaticIndex::new(params.index_node_fanout, &separators);

        let gates: Box<[Gate]> = chunks
            .into_iter()
            .enumerate()
            .map(|(g, chunk)| Gate::with_chunk_gen(g, chunk, gen, fences[g].0, fences[g].1))
            .collect();

        let calibrator = CalibratorTree::new(num_segments, segment_capacity, params.thresholds);
        let gate_level = (segments_per_gate.trailing_zeros() + 1).min(calibrator.height());

        Self {
            gates,
            index,
            segments_per_gate,
            segment_capacity,
            calibrator,
            gate_level,
        }
    }

    /// Number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Total number of segments.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.num_gates() * self.segments_per_gate
    }

    /// Total number of element slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.num_segments() * self.segment_capacity
    }

    /// Slots per gate.
    #[inline]
    pub fn gate_capacity(&self) -> usize {
        self.segments_per_gate * self.segment_capacity
    }

    /// Gate containing the given global segment index.
    #[inline]
    pub fn gate_of_segment(&self, segment: usize) -> usize {
        segment / self.segments_per_gate
    }

    /// First global segment index of the given gate.
    #[inline]
    pub fn first_segment_of_gate(&self, gate: usize) -> usize {
        gate * self.segments_per_gate
    }
}

/// Recomputes the fence keys of a run of gates after their elements were
/// redistributed.
///
/// `outer_lo` / `outer_hi` are the (unchanged) outer bounds of the run — the
/// lower fence of the first gate and the upper fence of the last gate —
/// and `mins[i]` is the new minimum key stored in the `i`-th gate of the run
/// (`None` if it is empty). Returns the `(fence_lo, fence_hi)` pair of every
/// gate in the run: disjoint ranges that exactly cover `[outer_lo, outer_hi]`.
pub fn compute_window_fences(
    outer_lo: Key,
    outer_hi: Key,
    mins: &[Option<Key>],
) -> Vec<(Key, Key)> {
    let n = mins.len();
    assert!(n > 0);
    // boundaries[i] = lower fence of gate i.
    let mut boundaries = vec![outer_lo; n];
    let mut next_known: Option<Key> = None;
    for i in (1..n).rev() {
        if let Some(m) = mins[i] {
            next_known = Some(m);
        }
        boundaries[i] = next_known.unwrap_or(outer_hi);
    }
    boundaries[0] = outer_lo;
    (0..n)
        .map(|i| {
            let lo = boundaries[i];
            let hi = if i + 1 < n {
                boundaries[i + 1].saturating_sub(1)
            } else {
                outer_hi
            };
            (lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PmaParams;

    #[test]
    fn empty_instance_has_one_all_covering_gate() {
        let inst = PmaInstance::empty(&PmaParams::small());
        assert_eq!(inst.num_gates(), 1);
        assert_eq!(inst.num_segments(), 2);
        assert_eq!(inst.capacity(), 16);
        let st = inst.gates[0].lock();
        assert_eq!(st.fence_lo, KEY_MIN);
        assert_eq!(st.fence_hi, KEY_MAX);
    }

    #[test]
    fn from_sorted_distributes_evenly_and_sets_fences() {
        let params = PmaParams::small(); // 2 segments of 8 per gate
        let keys: Vec<Key> = (0..40).collect();
        let values: Vec<Value> = (0..40).map(|k| k * 2).collect();
        let inst = PmaInstance::from_sorted(&keys, &values, 4, &params);
        assert_eq!(inst.num_gates(), 4);
        assert_eq!(inst.capacity(), 64);

        let mut total = 0usize;
        let mut prev_hi = None;
        for g in 0..4 {
            let st = inst.gates[g].lock();
            // SAFETY: single-threaded test, no latch needed.
            let chunk = unsafe { inst.gates[g].chunk() };
            total += chunk.cardinality();
            chunk.check_invariants();
            // Fences are contiguous and disjoint.
            if let Some(prev) = prev_hi {
                assert_eq!(st.fence_lo, prev + 1i64);
            } else {
                assert_eq!(st.fence_lo, KEY_MIN);
            }
            prev_hi = Some(st.fence_hi);
            // Every stored key respects the fences.
            if let (Some(min), Some(max)) = (chunk.min_key(), chunk.max_key()) {
                assert!(min >= st.fence_lo.max(0));
                assert!(max <= st.fence_hi);
            }
        }
        assert_eq!(prev_hi, Some(KEY_MAX));
        assert_eq!(total, 40);

        // The index routes keys to gates whose fences cover them.
        for probe in [0i64, 7, 13, 20, 33, 39] {
            let g = inst.index.find_gate(probe);
            let st = inst.gates[g].lock();
            assert!(st.covers(probe), "probe {probe} routed to gate {g}");
        }
    }

    #[test]
    fn gate_and_segment_mapping() {
        let params = PmaParams::small();
        let keys: Vec<Key> = (0..10).collect();
        let values = keys.clone();
        let inst = PmaInstance::from_sorted(&keys, &values, 2, &params);
        assert_eq!(inst.gate_of_segment(0), 0);
        assert_eq!(inst.gate_of_segment(1), 0);
        assert_eq!(inst.gate_of_segment(2), 1);
        assert_eq!(inst.first_segment_of_gate(1), 2);
        assert_eq!(inst.gate_level, 2);
        assert_eq!(inst.gate_capacity(), 16);
    }

    #[test]
    fn compute_window_fences_all_non_empty() {
        let f = compute_window_fences(KEY_MIN, KEY_MAX, &[Some(0), Some(10), Some(20)]);
        assert_eq!(f, vec![(KEY_MIN, 9), (10, 19), (20, KEY_MAX)]);
    }

    #[test]
    fn compute_window_fences_with_empty_gates() {
        // Trailing empty gates get an empty range just below the outer bound.
        let f = compute_window_fences(0, 100, &[Some(5), None, None]);
        assert_eq!(f[0], (0, 99));
        assert!(f[1].0 > f[1].1, "empty gate gets an empty fence range");
        assert_eq!(f[2].1, 100);
        // A middle empty gate also gets an empty range.
        let f = compute_window_fences(0, 100, &[Some(5), None, Some(50)]);
        assert_eq!(f[0], (0, 49));
        assert!(f[1].0 > f[1].1);
        assert_eq!(f[2], (50, 100));
        // Leading empty gate covers the lower part of the range.
        let f = compute_window_fences(0, 100, &[None, Some(50)]);
        assert_eq!(f[0], (0, 49));
        assert_eq!(f[1], (50, 100));
    }

    #[test]
    fn compute_window_fences_covers_range_without_gaps() {
        let mins = [Some(3), Some(8), None, Some(20), None];
        let f = compute_window_fences(0, 1000, &mins);
        assert_eq!(f[0].0, 0);
        assert_eq!(f.last().unwrap().1, 1000);
        for w in f.windows(2) {
            let (_, hi) = w[0];
            let (lo, _) = w[1];
            // Non-empty ranges must be contiguous: next lo == prev hi + 1;
            // empty ranges may overlap degenerately but never leave a gap.
            if w[0].0 <= hi {
                assert_eq!(lo, hi + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_gate_count_panics() {
        let params = PmaParams::small();
        let _ = PmaInstance::from_sorted(&[], &[], 3, &params);
    }
}
