//! The concurrent Packed Memory Array (paper section 3).
//!
//! The sparse array is split into chunks protected by [`gate::Gate`]s; a
//! [`static_index::StaticIndex`] routes keys to gates; rebalances spanning
//! multiple gates are executed by the `rebalancer` service; resizes publish
//! a new [`instance::PmaInstance`] through a single entry pointer and reclaim
//! the old one with [`epoch`]-based garbage collection; and contended writers
//! combine their updates asynchronously ([`crate::params::UpdateMode`]).
//!
//! # Concurrency protocol (summary)
//!
//! * Clients hold **at most one gate latch** at a time. Readers take a gate in
//!   shared mode, writers in exclusive mode.
//! * A client reaches a gate through the static index, then validates the
//!   gate's *fence keys*; on a mismatch (stale index read or concurrent
//!   rebalance) it walks to the neighbouring gate.
//! * A writer whose insertion overflows a segment first tries to rebalance a
//!   window *inside* its gate; if no in-gate window is within threshold it
//!   hands the gate over to the rebalancer and waits (its own operation is
//!   retried afterwards).
//! * With the asynchronous update modes, a writer that finds another writer
//!   active on its gate appends its operation to that writer's combining
//!   queue and returns immediately.

pub mod chunk;
pub mod delta;
pub mod epoch;
pub mod gate;
pub mod instance;
mod rebalancer;
mod shared;
pub mod static_index;
pub mod version;

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use pma_common::obs;
use pma_common::{
    CombiningStats, ConcurrentMap, FrozenView, Key, MaintenanceStats, PmaError, ScanStats, Value,
};

use crate::params::{PmaParams, RebalancePolicy, UpdateMode};
use crate::stats::{Stats, StatsSnapshot};

use chunk::ChunkInsert;
use gate::{GateMode, UpdateOp};
use instance::PmaInstance;
use rebalancer::{RebalancerHandle, Request};
use shared::Shared;
use version::FrozenSnapshot;

/// Result of trying to acquire a gate for a write.
enum WriteAcquire {
    /// The gate is held in `Write` mode by the caller.
    Acquired(usize),
    /// The operation was appended to another writer's combining queue.
    Queued,
    /// The instance was resized; the caller must restart.
    Restart,
}

/// Result of applying an operation while holding a gate in `Write` mode.
enum ApplyResult {
    /// The operation completed; the previous value (for upserts/deletes).
    Done(Option<Value>),
    /// The operation needs a rebalance that spans multiple gates.
    NeedsGlobal,
}

/// A thread-safe Packed Memory Array storing 8-byte integer keys and values,
/// as evaluated in the paper.
///
/// # Examples
/// ```
/// use pma_core::{ConcurrentPma, PmaParams};
///
/// let pma = ConcurrentPma::new(PmaParams::small()).unwrap();
/// pma.insert(1, 100);
/// pma.insert(2, 200);
/// assert_eq!(pma.get(1), Some(100));
/// assert_eq!(pma.remove(2), Some(200));
/// assert_eq!(pma.len(), 1);
/// ```
pub struct ConcurrentPma {
    shared: Arc<Shared>,
    rebalancer: RebalancerHandle,
}

impl std::fmt::Debug for ConcurrentPma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentPma")
            .field("len", &self.len())
            .field("params", &self.shared.params)
            .finish()
    }
}

impl ConcurrentPma {
    /// Creates a concurrent PMA with the given parameters and starts its
    /// rebalancer service.
    pub fn new(params: PmaParams) -> Result<Self, PmaError> {
        params.validate()?;
        let shared = Arc::new(Shared::new(params));
        let rebalancer = RebalancerHandle::start(Arc::clone(&shared));
        Ok(Self { shared, rebalancer })
    }

    /// Creates a concurrent PMA with the paper's default configuration
    /// (128-element segments, 8 segments per gate, batch updates with
    /// `t_delay` = 100 ms, 8 rebalancer workers).
    pub fn with_defaults() -> Self {
        Self::new(PmaParams::default()).expect("default parameters are valid")
    }

    /// Builds a concurrent PMA pre-populated with `items`, which must be
    /// sorted by key in non-decreasing order (the last entry wins on
    /// duplicate keys).
    ///
    /// This is the bulk-load fast path: the gate count is presized from the
    /// calibrated density bounds ([`PmaParams::presized_gates`], the same
    /// rule resizes use), the gates, chunks and static index are laid out in
    /// a single pass with a uniform gap distribution, and the finished
    /// instance is published through the ordinary epoch entry pointer —
    /// **zero rebalances** happen during the load (observable through
    /// [`ConcurrentPma::stats`]: `total_rebalances()` is 0 and
    /// `bulk_loaded_keys` equals the number of distinct keys). Loading N
    /// sorted keys is therefore O(N), versus the point-insert path's
    /// amortised O(N log² N / B) with its rebalance cascades.
    ///
    /// # Errors
    /// Returns [`PmaError::InvalidParameter`] when `params` is invalid or the
    /// keys are not in ascending order.
    ///
    /// # Examples
    /// ```
    /// use pma_core::{ConcurrentPma, PmaParams};
    ///
    /// let items: Vec<(i64, i64)> = (0..10_000).map(|k| (k, k * 2)).collect();
    /// let pma = ConcurrentPma::from_sorted(PmaParams::small(), &items).unwrap();
    /// assert_eq!(pma.len(), 10_000);
    /// assert_eq!(pma.get(123), Some(246));
    /// assert_eq!(pma.stats().total_rebalances(), 0);
    /// ```
    pub fn from_sorted(params: PmaParams, items: &[(Key, Value)]) -> Result<Self, PmaError> {
        params.validate()?;
        pma_common::check_sorted(items)?;
        let items = pma_common::dedup_sorted_last_wins(items);
        let (keys, values): (Vec<Key>, Vec<Value>) = items.into_iter().unzip();
        let num_gates = params.presized_gates(keys.len());
        let instance = Box::new(PmaInstance::from_sorted(&keys, &values, num_gates, &params));
        let shared = Arc::new(Shared::with_instance(params, instance, keys.len()));
        Stats::add(&shared.stats.bulk_loaded_keys, keys.len() as u64);
        let rebalancer = RebalancerHandle::start(Arc::clone(&shared));
        Ok(Self { shared, rebalancer })
    }

    /// The configuration this PMA was created with.
    pub fn params(&self) -> &PmaParams {
        &self.shared.params
    }

    /// Number of stored elements.
    ///
    /// With an asynchronous update mode, operations still sitting in
    /// combining queues are not counted yet; call [`ConcurrentPma::flush`]
    /// first for an exact answer.
    pub fn len(&self) -> usize {
        self.shared.element_count()
    }

    /// Whether the PMA stores no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of element slots currently allocated (including gaps).
    pub fn capacity(&self) -> usize {
        let _pin = self.shared.pin();
        // SAFETY: pinned above.
        unsafe { self.shared.instance_ref() }.capacity()
    }

    /// Number of gates (latches) the array is currently divided into.
    pub fn num_gates(&self) -> usize {
        let _pin = self.shared.pin();
        // SAFETY: pinned above.
        unsafe { self.shared.instance_ref() }.num_gates()
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Inserts `key` with `value` (upsert). With an asynchronous update mode
    /// the operation may be executed later by another thread.
    pub fn insert(&self, key: Key, value: Value) {
        let allow_queue = self.shared.params.update_mode != UpdateMode::Synchronous;
        self.update(UpdateOp::Insert(key, value), allow_queue);
    }

    /// Removes `key`. Returns the removed value when the removal was executed
    /// synchronously; returns `None` when the key was absent *or* when the
    /// operation was delegated to another writer's combining queue.
    pub fn remove(&self, key: Key) -> Option<Value> {
        let allow_queue = self.shared.params.update_mode != UpdateMode::Synchronous;
        self.update(UpdateOp::Delete(key), allow_queue)
    }

    /// Looks up `key`.
    pub fn get(&self, key: Key) -> Option<Value> {
        Stats::bump(&self.shared.stats.lookups);
        loop {
            let _pin = self.shared.pin();
            // SAFETY: pinned above.
            let inst = unsafe { self.shared.instance_ref() };
            match self.acquire_read(inst, key) {
                Some(g) => {
                    // SAFETY: gate `g` is held in shared mode.
                    let result = unsafe { inst.gates[g].chunk() }.get(key);
                    inst.gates[g].release_read();
                    return result;
                }
                None => {
                    Stats::bump(&self.shared.stats.resize_restarts);
                    continue;
                }
            }
        }
    }

    /// Whether `key` is stored.
    pub fn contains_key(&self, key: Key) -> bool {
        self.get(key).is_some()
    }

    /// Scans every element in ascending key order, folding it into
    /// [`ScanStats`]. Scans run concurrently with updates and do not provide
    /// snapshot isolation (as in the paper): elements moved by a concurrent
    /// rebalance may be observed at their old or new position.
    pub fn scan_all(&self) -> ScanStats {
        'restart: loop {
            let _pin = self.shared.pin();
            // SAFETY: pinned above.
            let inst = unsafe { self.shared.instance_ref() };
            let mut stats = ScanStats::default();
            for g in 0..inst.num_gates() {
                let gate = &inst.gates[g];
                {
                    let mut st = gate.lock();
                    loop {
                        if st.invalidated {
                            Stats::bump(&self.shared.stats.resize_restarts);
                            continue 'restart;
                        }
                        match st.mode {
                            GateMode::Free if st.writers_waiting == 0 => {
                                st.mode = GateMode::Read(1);
                                break;
                            }
                            GateMode::Read(n) if st.writers_waiting == 0 => {
                                st.mode = GateMode::Read(n + 1);
                                break;
                            }
                            _ => gate.wait(&mut st),
                        }
                    }
                }
                // SAFETY: gate `g` is held in shared mode.
                unsafe { gate.chunk() }.scan(&mut stats);
                gate.release_read();
            }
            return stats;
        }
    }

    /// Takes an O(1) point-in-time snapshot with repeatable reads.
    ///
    /// The snapshot clones every gate's reference-counted chunk version under
    /// a shared latch (no payload is copied at freeze time); writers that
    /// later mutate a still-pinned chunk copy it first
    /// ([`gate::Gate::chunk_mut_cow`], counted in `stats().cow_copies`), so
    /// every read against the returned [`FrozenSnapshot`] keeps returning the
    /// state as of the freeze — across concurrent updates, rebalances and
    /// resizes. Like every read, the snapshot sees the *settled* state:
    /// operations still travelling through combining queues are invisible to
    /// it (call [`ConcurrentPma::flush`] first for an exact cut).
    ///
    /// Capture takes the gates one at a time and validates afterwards that
    /// the recorded fences still tile the key space — a concurrent
    /// redistribute that moved fences between two per-gate captures forces a
    /// restart, so the snapshot never mixes pre- and post-redistribute
    /// placements of the same window.
    pub fn frozen(&self) -> FrozenSnapshot {
        let mut span = obs::span(obs::Category::FrozenCapture, 0);
        'restart: loop {
            let _pin = self.shared.pin();
            // SAFETY: pinned above.
            let inst = unsafe { self.shared.instance_ref() };
            let mut pieces = Vec::with_capacity(inst.num_gates());
            for g in 0..inst.num_gates() {
                let gate = &inst.gates[g];
                let (lo, hi) = {
                    let mut st = gate.lock();
                    loop {
                        if st.invalidated {
                            Stats::bump(&self.shared.stats.resize_restarts);
                            continue 'restart;
                        }
                        match st.mode {
                            GateMode::Free if st.writers_waiting == 0 => {
                                st.mode = GateMode::Read(1);
                                break;
                            }
                            GateMode::Read(n) if st.writers_waiting == 0 => {
                                st.mode = GateMode::Read(n + 1);
                                break;
                            }
                            _ => gate.wait(&mut st),
                        }
                    }
                    (st.fence_lo, st.fence_hi)
                };
                // SAFETY: the gate is held in shared mode, which excludes
                // every exclusive chunk accessor while we clone the version.
                let version = unsafe { gate.chunk_version() };
                gate.release_read();
                pieces.push((lo, hi, version));
            }
            if !version::fences_tile_key_space(&pieces) {
                // Fences moved between two per-gate captures: the pieces do
                // not describe any single point in time.
                Stats::bump(&self.shared.stats.resize_restarts);
                continue 'restart;
            }
            let snapshot = FrozenSnapshot::capture(pieces, Arc::clone(&self.shared.cow));
            span.set_payload(snapshot.generation());
            return snapshot;
        }
    }

    /// Operations currently parked in combining queues across all gates — a
    /// point-in-time gauge for the observability sampler (each gate's latch
    /// is taken briefly, one at a time).
    pub fn queued_ops(&self) -> usize {
        let _pin = self.shared.pin();
        // SAFETY: pinned above.
        let inst = unsafe { self.shared.instance_ref() };
        let mut queued = 0;
        for g in 0..inst.num_gates() {
            queued += inst.gates[g].lock().pending.len();
        }
        queued
    }

    /// Visits every element with key in `[lo, hi]` (inclusive) in ascending
    /// key order.
    pub fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        if lo > hi {
            return;
        }
        // If a resize interrupts the scan we restart from just after the last
        // visited key, so no element is visited twice.
        let mut cursor = lo;
        'restart: loop {
            let _pin = self.shared.pin();
            // SAFETY: pinned above.
            let inst = unsafe { self.shared.instance_ref() };
            let Some(mut g) = self.acquire_read(inst, cursor) else {
                Stats::bump(&self.shared.stats.resize_restarts);
                continue 'restart;
            };
            loop {
                let gate = &inst.gates[g];
                // SAFETY: gate `g` is held in shared mode.
                let keep_going = unsafe { gate.chunk() }.range(cursor, hi, &mut |k, v| {
                    visitor(k, v);
                });
                {
                    let st = gate.lock();
                    // Everything up to this gate's upper fence has been
                    // covered (elements can only live inside their fences).
                    cursor = cursor.max(st.fence_hi.saturating_add(1));
                }
                let next_needed = keep_going && cursor <= hi;
                gate.release_read();
                if !next_needed || g + 1 >= inst.num_gates() {
                    return;
                }
                g += 1;
                // Acquire the next gate in shared mode.
                let gate = &inst.gates[g];
                let mut st = gate.lock();
                loop {
                    if st.invalidated {
                        Stats::bump(&self.shared.stats.resize_restarts);
                        continue 'restart;
                    }
                    match st.mode {
                        GateMode::Free if st.writers_waiting == 0 => {
                            st.mode = GateMode::Read(1);
                            break;
                        }
                        GateMode::Read(n) if st.writers_waiting == 0 => {
                            st.mode = GateMode::Read(n + 1);
                            break;
                        }
                        _ => gate.wait(&mut st),
                    }
                }
            }
        }
    }

    /// Scans every element with key in `[lo, hi]` (inclusive) in ascending
    /// key order, folding into [`ScanStats`].
    ///
    /// Drives [`ConcurrentPma::range`], whose walk is routed through the
    /// static index straight to the first gate whose fences cover `lo` and
    /// then proceeds gate by gate, holding one shared latch at a time — it
    /// never touches the gates below `lo` or above `hi`. Like
    /// [`ConcurrentPma::scan_all`] it runs concurrently with updates without
    /// snapshot isolation; a resize restarts the walk just after the last
    /// visited key, so no element is counted twice.
    pub fn scan_range(&self, lo: Key, hi: Key) -> ScanStats {
        let mut stats = ScanStats::default();
        self.range(lo, hi, &mut |k, v| stats.visit(k, v));
        stats
    }

    /// Materialises every element with key in `[lo, hi]` (inclusive) into a
    /// sorted vector — the ordered live-scan a copy-on-write rebuild (the
    /// sharded engine's incremental splits, see [`delta`]) collects its base
    /// copy with while writers keep landing.
    ///
    /// Unlike the trait default, a full-domain collect (`Key::MIN..=MAX`,
    /// what the copy path issues) presizes the output with the current
    /// element count — avoiding the doubling re-allocations matters when
    /// the copy races a write-heavy workload. Narrow ranges fall back to
    /// default growth: `len()` would be a wild over-reservation for them.
    /// Like every scan, it runs without snapshot isolation but the visited
    /// stream is strictly ascending.
    pub fn collect_range(&self, lo: Key, hi: Key) -> Vec<(Key, Value)> {
        if lo > hi {
            return Vec::new();
        }
        let mut out = if lo == Key::MIN && hi == Key::MAX {
            Vec::with_capacity(self.len() + 16)
        } else {
            Vec::new()
        };
        self.range(lo, hi, &mut |k, v| out.push((k, v)));
        out
    }

    /// Collects one ordered block of `[lo, hi]`, cutting at the first gate
    /// boundary once at least `min_len` elements were appended (see
    /// [`ConcurrentMap::collect_block`]). Returns `Some(next_lo)` when cut,
    /// `None` when the range is exhausted.
    ///
    /// Each gate's in-range elements are appended with the bulk run-copy
    /// kernel while the gate is held in shared mode — the refill primitive
    /// of the sharded engine's block-at-a-time cross-shard merge. A resize
    /// restarts the walk from just after the last covered fence, so the
    /// appended stream stays strictly ascending and duplicate-free.
    pub fn collect_block(
        &self,
        lo: Key,
        hi: Key,
        min_len: usize,
        keys: &mut Vec<Key>,
        values: &mut Vec<Value>,
    ) -> Option<Key> {
        if lo > hi {
            return None;
        }
        let base = keys.len();
        let mut cursor = lo;
        'restart: loop {
            let _pin = self.shared.pin();
            // SAFETY: pinned above.
            let inst = unsafe { self.shared.instance_ref() };
            let Some(mut g) = self.acquire_read(inst, cursor) else {
                Stats::bump(&self.shared.stats.resize_restarts);
                continue 'restart;
            };
            loop {
                let gate = &inst.gates[g];
                // SAFETY: gate `g` is held in shared mode.
                let keep_going =
                    unsafe { gate.chunk() }.collect_range_into(cursor, hi, keys, values);
                {
                    let st = gate.lock();
                    // Everything up to this gate's upper fence is covered.
                    cursor = cursor.max(st.fence_hi.saturating_add(1));
                }
                let exhausted = !keep_going || cursor > hi || g + 1 >= inst.num_gates();
                gate.release_read();
                if exhausted {
                    return None;
                }
                if keys.len() - base >= min_len {
                    // Gate boundary reached with a full block: hand the
                    // remainder of the range back to the caller.
                    return Some(cursor);
                }
                g += 1;
                // Acquire the next gate in shared mode.
                let gate = &inst.gates[g];
                let mut st = gate.lock();
                loop {
                    if st.invalidated {
                        Stats::bump(&self.shared.stats.resize_restarts);
                        continue 'restart;
                    }
                    match st.mode {
                        GateMode::Free if st.writers_waiting == 0 => {
                            st.mode = GateMode::Read(1);
                            break;
                        }
                        GateMode::Read(n) if st.writers_waiting == 0 => {
                            st.mode = GateMode::Read(n + 1);
                            break;
                        }
                        _ => gate.wait(&mut st),
                    }
                }
            }
        }
    }

    /// Inserts a batch of pairs (upsert semantics, later duplicates win).
    ///
    /// The batch is sorted and split into per-gate runs: each run is merged
    /// into its gate's chunk with a single latch acquisition and one local
    /// redistribution (the same combining primitive the asynchronous update
    /// queue uses), instead of one routing walk and one rebalance check per
    /// element. A run that exceeds its gate's density threshold is handed to
    /// the rebalancer service whole: the service expands the window over the
    /// covering gate span (resizing with a presized capacity when even the
    /// root window is over threshold) and merges the run during the
    /// redistribution — one rebuild per oversized run instead of a per-key
    /// insert cascade.
    pub fn insert_batch(&self, items: &[(Key, Value)]) {
        // Route like a point insert: honouring delegated combining queues is
        // required for ordering — merging directly while an older same-key
        // entry sits in a gate's queue would let that stale entry overwrite
        // the batch's value when the queue drains.
        let allow_queue = self.shared.params.update_mode != UpdateMode::Synchronous;
        let batch = rebalancer::normalise_batch(items.to_vec());
        let mut i = 0usize;
        while i < batch.len() {
            let (key, value) = batch[i];
            let mut advance = 0usize;
            {
                let _pin = self.shared.pin();
                // SAFETY: pinned above.
                let inst = unsafe { self.shared.instance_ref() };
                match self.acquire_for_write(inst, UpdateOp::Insert(key, value), allow_queue) {
                    WriteAcquire::Queued => {
                        // The gate is delegated or under a service rebalance:
                        // this element joined the FIFO combining queue exactly
                        // like a point insert would.
                        Stats::bump(&self.shared.stats.combined_ops);
                        advance = 1;
                    }
                    WriteAcquire::Restart => {
                        Stats::bump(&self.shared.stats.resize_restarts);
                    }
                    WriteAcquire::Acquired(g) => {
                        let gate = &inst.gates[g];
                        let fence_hi = gate.lock().fence_hi;
                        let run_end = i + batch[i..].partition_point(|&(k, _)| k <= fence_hi);
                        let run = &batch[i..run_end];
                        // SAFETY: the gate is held in `Write` mode.
                        let chunk = unsafe { self.shared.chunk_mut(gate) };
                        let gate_capacity = inst.gate_capacity();
                        let tau_gate = inst.calibrator.upper_threshold(inst.gate_level);
                        let max_total =
                            gate_capacity.min((tau_gate * gate_capacity as f64).floor() as usize);
                        // Cheap check first; when it fails, count only the
                        // keys actually absent from the chunk — a pure-upsert
                        // run (value refresh of resident keys) adds nothing
                        // and must merge in place, not trigger a rebuild.
                        let fits = chunk.cardinality() + run.len() <= max_total || {
                            let new_keys =
                                run.iter().filter(|&&(k, _)| chunk.get(k).is_none()).count();
                            chunk.cardinality() + new_keys <= max_total
                        };
                        if fits {
                            let added = chunk.merge_batch(run);
                            if added > 0 {
                                self.shared.len.fetch_add(added, Ordering::Relaxed);
                                Stats::add(&self.shared.stats.inserts, added as u64);
                            }
                            advance = run_end - i;
                            // Drain anything forwarded to us while we held the
                            // latch, then release (mode-appropriate).
                            self.finish_writer(inst, g);
                        } else {
                            // The run overflows the gate: park it at the
                            // front of the gate's combining queue and hand
                            // the gate over, exactly like `drain_batch` does
                            // for an oversized queue. The service drains the
                            // queue at claim time and merges the run into one
                            // presized rebuild of the covering gate span (or
                            // folds it into a resize); a rebalance that
                            // claims the gate first settles the queue while
                            // it owns the window. Either way the run stays
                            // inside the owned-window machinery — it is never
                            // carried in a channel where it could go stale.
                            let ops = run
                                .iter()
                                .map(|&(k, v)| UpdateOp::Insert(k, v))
                                .collect::<Vec<_>>();
                            self.park_ops_and_hand_over(inst, g, ops);
                            Stats::bump(&self.shared.stats.batch_span_rebuilds);
                            advance = run_end - i;
                            if !allow_queue {
                                // Synchronous mode promises that completed
                                // operations are visible without a flush:
                                // wait until the parked run has left the
                                // queue and the service released the gate (or
                                // a resize folded the run into the published
                                // instance).
                                let gate = &inst.gates[g];
                                let mut st = gate.lock();
                                while !st.invalidated
                                    && (st.service_owned || st.delegated || !st.pending.is_empty())
                                {
                                    gate.wait(&mut st);
                                }
                            }
                        }
                    }
                }
            }
            i += advance;
        }
    }

    /// Waits until every pending asynchronous update (combining queues,
    /// delegated batches, parked rebalances) has been applied. Useful before
    /// validating the contents or shutting down.
    pub fn flush(&self) {
        loop {
            self.rebalancer.flush();
            let mut schedule: Vec<usize> = Vec::new();
            let clean = {
                let _pin = self.shared.pin();
                // SAFETY: pinned above.
                let inst = unsafe { self.shared.instance_ref() };
                let mut clean = true;
                for g in 0..inst.num_gates() {
                    let mut st = inst.gates[g].lock();
                    if st.invalidated {
                        clean = false;
                        break;
                    }
                    if st.delegated || st.queue_open {
                        clean = false;
                        continue;
                    }
                    match st.mode {
                        GateMode::Free | GateMode::Read(_) => {
                            if !st.pending.is_empty() {
                                // A non-empty queue on an idle, undelegated
                                // gate has no scheduled drain (every path
                                // that leaves ops queued marks the gate
                                // delegated): delegate it to the service —
                                // which drains while owning the gate — rather
                                // than replaying the ops from here, after the
                                // fact.
                                st.delegated = true;
                                schedule.push(g);
                                clean = false;
                            }
                        }
                        _ => clean = false,
                    }
                }
                clean
            };
            for g in schedule {
                self.rebalancer.send(Request::DelayedBatch {
                    gate_id: g,
                    due: std::time::Instant::now(),
                });
            }
            if clean {
                debug_assert_eq!(
                    self.shared.stats.late_replays.load(Ordering::Relaxed),
                    0,
                    "an operation was salvaged outside its owned window"
                );
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Uncontended fast path: applies `op` inline while holding the routed
    /// gate's state mutex, when the gate is `Free` with an empty,
    /// undelegated combining queue and its fences cover the key. This saves
    /// the full path's second mutex round-trip and `notify_all` (the
    /// `Write`-mode transition and [`ConcurrentPma::finish_writer`]) — pure
    /// overhead when nobody is contending.
    ///
    /// Returns `Some(result)` when applied; `None` sends the caller to the
    /// full path (gate busy, delegated, mis-routed, invalidated, or the
    /// target segment is full and needs a rebalance).
    fn try_fast_update(&self, inst: &PmaInstance, op: UpdateOp) -> Option<Option<Value>> {
        let key = op.key();
        let g = inst.index.find_gate(key);
        let gate = &inst.gates[g];
        let st = gate.lock();
        if st.invalidated
            || key < st.fence_lo
            || key > st.fence_hi
            || st.delegated
            || st.queue_open
            || !st.pending.is_empty()
            || !matches!(st.mode, GateMode::Free)
        {
            return None;
        }
        // SAFETY: the gate's state mutex is held and the mode is `Free`: no
        // reader, writer or rebalance owns the chunk, and any thread must
        // acquire this mutex (observing our completed writes through it)
        // before it can claim the gate — exclusive chunk access until the
        // guard drops. No mode changed, so there is nothing to notify.
        match op {
            UpdateOp::Delete(key) => {
                let old = unsafe { self.shared.chunk_mut(gate) }.remove(key);
                drop(st);
                if old.is_some() {
                    self.shared.len.fetch_sub(1, Ordering::Relaxed);
                    Stats::bump(&self.shared.stats.deletes);
                    self.maybe_request_downsize(inst);
                }
                Some(old)
            }
            UpdateOp::Insert(key, value) => {
                match unsafe { self.shared.chunk_mut(gate) }.try_insert(key, value) {
                    ChunkInsert::Inserted => {
                        drop(st);
                        self.shared.len.fetch_add(1, Ordering::Relaxed);
                        Stats::bump(&self.shared.stats.inserts);
                        Some(None)
                    }
                    ChunkInsert::Replaced(old) => Some(Some(old)),
                    // The segment needs a rebalance first: the full path
                    // owns that machinery (no chunk mutation happened).
                    ChunkInsert::SegmentFull(_) => None,
                }
            }
        }
    }

    /// Applies an update, possibly enqueueing it to another writer
    /// (`allow_queue`). Returns the previous value when the operation was
    /// applied synchronously.
    fn update(&self, op: UpdateOp, allow_queue: bool) -> Option<Value> {
        {
            let _pin = self.shared.pin();
            // SAFETY: pinned above.
            let inst = unsafe { self.shared.instance_ref() };
            if let Some(old) = self.try_fast_update(inst, op) {
                return old;
            }
        }
        loop {
            let outcome = {
                let _pin = self.shared.pin();
                // SAFETY: pinned above.
                let inst = unsafe { self.shared.instance_ref() };
                match self.acquire_for_write(inst, op, allow_queue) {
                    WriteAcquire::Queued => {
                        Stats::bump(&self.shared.stats.combined_ops);
                        Some(None)
                    }
                    WriteAcquire::Restart => {
                        Stats::bump(&self.shared.stats.resize_restarts);
                        None
                    }
                    WriteAcquire::Acquired(g) => match self.apply_on_gate(inst, g, op) {
                        ApplyResult::Done(old) => {
                            self.finish_writer(inst, g);
                            Some(old)
                        }
                        ApplyResult::NeedsGlobal => {
                            self.hand_over_and_wait(inst, g);
                            None
                        }
                    },
                }
            };
            match outcome {
                Some(old) => return old,
                None => continue,
            }
        }
    }

    /// Routes `op` to the gate covering its key and acquires that gate in
    /// `Write` mode (or enqueues the op / reports a restart).
    fn acquire_for_write(
        &self,
        inst: &PmaInstance,
        op: UpdateOp,
        allow_queue: bool,
    ) -> WriteAcquire {
        let key = op.key();
        let mut g = inst.index.find_gate(key);
        loop {
            let gate = &inst.gates[g];
            let mut st = gate.lock();
            loop {
                if st.invalidated {
                    return WriteAcquire::Restart;
                }
                if key < st.fence_lo && g > 0 {
                    Stats::bump(&self.shared.stats.gate_misses);
                    g -= 1;
                    break;
                }
                if key > st.fence_hi && g + 1 < inst.num_gates() {
                    Stats::bump(&self.shared.stats.gate_misses);
                    g += 1;
                    break;
                }
                // This is the right gate (or the edge of the array).
                if allow_queue && st.delegated && !st.queue_closed {
                    // The combining queue was handed to the rebalancer; keep
                    // appending to it (paper section 3.5).
                    st.pending.push_back(op);
                    return WriteAcquire::Queued;
                }
                match st.mode {
                    GateMode::Free => {
                        st.mode = GateMode::Write;
                        if allow_queue {
                            st.queue_open = true;
                        }
                        return WriteAcquire::Acquired(g);
                    }
                    GateMode::Write if allow_queue && st.queue_open => {
                        st.pending.push_back(op);
                        return WriteAcquire::Queued;
                    }
                    // The gate is being rebalanced by the service: instead of
                    // blocking for the (potentially wide) rebalance, append to
                    // the combining queue and return (paper section 3.5).
                    // Marking the gate `delegated` keeps every later operation
                    // on this gate queueing FIFO behind this one until the
                    // service drains the queue (`process_delegated_batch`) —
                    // without it, a later same-key operation could apply
                    // directly and then be overwritten by this older entry
                    // when the queue finally drains.
                    // (A queue closed by a resize rejects new entries: the
                    // writer waits for the new instance instead, since the
                    // queued operations are being folded into it.)
                    GateMode::Rebalance if allow_queue && st.service_owned && !st.queue_closed => {
                        st.pending.push_back(op);
                        if !st.delegated {
                            st.delegated = true;
                            self.rebalancer.send(Request::DelayedBatch {
                                gate_id: g,
                                due: std::time::Instant::now(),
                            });
                        }
                        return WriteAcquire::Queued;
                    }
                    // Park with writer preference: arriving readers yield
                    // until no exclusive acquirer is waiting, so a stream of
                    // overlapping scanners cannot starve the writer.
                    _ => gate.wait_exclusive(&mut st),
                }
            }
        }
    }

    /// Applies `op` to gate `g`, which the caller holds in `Write` mode.
    fn apply_on_gate(&self, inst: &PmaInstance, g: usize, op: UpdateOp) -> ApplyResult {
        let gate = &inst.gates[g];
        match op {
            UpdateOp::Delete(key) => {
                // SAFETY: the caller holds the gate in `Write` mode.
                let old = unsafe { self.shared.chunk_mut(gate) }.remove(key);
                if old.is_some() {
                    self.shared.len.fetch_sub(1, Ordering::Relaxed);
                    Stats::bump(&self.shared.stats.deletes);
                    self.maybe_request_downsize(inst);
                }
                ApplyResult::Done(old)
            }
            UpdateOp::Insert(key, value) => {
                // SAFETY: the caller holds the gate in `Write` mode.
                let chunk = unsafe { self.shared.chunk_mut(gate) };
                let adaptive = self.shared.params.rebalance_policy == RebalancePolicy::Adaptive;
                loop {
                    match chunk.try_insert(key, value) {
                        ChunkInsert::Inserted => {
                            self.shared.len.fetch_add(1, Ordering::Relaxed);
                            Stats::bump(&self.shared.stats.inserts);
                            return ApplyResult::Done(None);
                        }
                        ChunkInsert::Replaced(old) => return ApplyResult::Done(Some(old)),
                        ChunkInsert::SegmentFull(seg) => {
                            match find_local_window(inst, chunk, seg) {
                                Some((start, count)) => {
                                    chunk.rebalance_local(start, count, adaptive);
                                    Stats::bump(&self.shared.stats.local_rebalances);
                                    // Retry the insertion on the rebalanced chunk.
                                }
                                None => return ApplyResult::NeedsGlobal,
                            }
                        }
                    }
                }
            }
        }
    }

    /// Transitions gate `g` (currently held in `Write` mode by the caller)
    /// into service ownership and returns its `rebalance_epoch`.
    ///
    /// The epoch MUST be read under the same lock that flips the mode: it is
    /// the identity the master's stale-request check compares against, and a
    /// read outside the critical section could observe a later hand-over's
    /// epoch. The Write → Rebalance transition makes the gate claimable by
    /// the rebalancer, so the gate is also notified — without that wakeup the
    /// master can sleep forever on a gate whose writer has just handed it
    /// over (e.g. while expanding another window).
    fn hand_over_gate(&self, inst: &PmaInstance, g: usize) -> u64 {
        let gate = &inst.gates[g];
        let epoch = {
            let mut st = gate.lock();
            st.mode = GateMode::Rebalance;
            st.service_owned = true;
            st.queue_open = false;
            st.rebalance_epoch
        };
        gate.notify_all();
        epoch
    }

    /// Parks `ops` (in order) at the **front** of gate `g`'s combining queue
    /// — they predate anything other writers forwarded while this writer
    /// held the latch — and hands the gate over to the rebalancer. The
    /// service drains the whole queue at claim time, while the gate is
    /// owned, and merges it into the window rebuild (or a resize folds it);
    /// a rebalance that claims the gate first settles the queue in-window.
    /// The operations therefore never leave the owned-window machinery.
    /// Returns the hand-over epoch.
    fn park_ops_and_hand_over(&self, inst: &PmaInstance, g: usize, ops: Vec<UpdateOp>) -> u64 {
        let gate = &inst.gates[g];
        let epoch = {
            let mut st = gate.lock();
            debug_assert_eq!(st.mode, GateMode::Write);
            debug_assert!(!st.queue_closed, "queue closed under an active writer");
            for op in ops.into_iter().rev() {
                st.pending.push_front(op);
            }
            st.mode = GateMode::Rebalance;
            st.service_owned = true;
            st.queue_open = false;
            st.rebalance_epoch
        };
        gate.notify_all();
        self.rebalancer.send(Request::GlobalRebalance {
            gate_id: g,
            origin: (inst as *const PmaInstance as usize, epoch),
            reserve: 0,
        });
        epoch
    }

    /// Hands gate `g` (currently held in `Write` mode) over to the rebalancer
    /// and waits until the global rebalance (or a resize) completes. The
    /// request carries the same `(instance, rebalance_epoch)` origin tag as a
    /// parked-run hand-over, so the master can recognise it as stale when the
    /// gate was meanwhile handled as part of another window or a resize.
    fn hand_over_and_wait(&self, inst: &PmaInstance, g: usize) {
        let epoch_before = self.hand_over_gate(inst, g);
        self.rebalancer.send(Request::GlobalRebalance {
            gate_id: g,
            origin: (inst as *const PmaInstance as usize, epoch_before),
            reserve: 1,
        });
        let gate = &inst.gates[g];
        let mut st = gate.lock();
        while st.rebalance_epoch == epoch_before && st.service_owned && !st.invalidated {
            gate.wait(&mut st);
        }
    }

    /// Requests a downsize check when the array has become under-full.
    fn maybe_request_downsize(&self, inst: &PmaInstance) {
        if inst.num_gates() <= 1 {
            return;
        }
        let len = self.shared.element_count();
        if (len as f64) < self.shared.params.downsize_at * inst.capacity() as f64 {
            self.rebalancer.send(Request::MaybeDownsize);
        }
    }

    /// Drains the gate's combining queue according to the configured update
    /// mode and releases the `Write` latch. Operations that cannot be
    /// completed on the gate are never taken out of the machinery: they are
    /// parked in the queue and the gate is handed to the service, which
    /// resolves them while it owns the window.
    fn finish_writer(&self, inst: &PmaInstance, g: usize) {
        match self.shared.params.update_mode {
            UpdateMode::Synchronous => {
                // Queueing is disabled in this mode, but the queue may hold a
                // run parked by an `insert_batch` hand-over that a stale
                // claim left delegated; it belongs to the service's
                // scheduled drain — leave it untouched.
                let gate = &inst.gates[g];
                {
                    let mut st = gate.lock();
                    st.queue_open = false;
                    st.mode = GateMode::Free;
                }
                gate.notify_all();
            }
            UpdateMode::OneByOne => self.drain_one_by_one(inst, g),
            UpdateMode::Batch { t_delay } => self.drain_batch(inst, g, t_delay),
        }
    }

    /// One-by-one combining (paper section 3.5): process the forwarded
    /// operations in order while holding the gate.
    fn drain_one_by_one(&self, inst: &PmaInstance, g: usize) {
        let gate = &inst.gates[g];
        loop {
            let op = {
                let mut st = gate.lock();
                match st.pending.pop_front() {
                    Some(op) => op,
                    None => {
                        st.queue_open = false;
                        st.mode = GateMode::Free;
                        drop(st);
                        gate.notify_all();
                        return;
                    }
                }
            };
            let (lo, hi) = {
                let st = gate.lock();
                (st.fence_lo, st.fence_hi)
            };
            if op.key() < lo || op.key() > hi {
                // Unreachable: fences cannot move while this writer holds the
                // latch, and every fence move settles the queue in-window
                // before releasing. Hand the op (and the rest of the queue)
                // to the service, whose stranded-drain path folds it into an
                // owned rebuild.
                debug_assert!(false, "queued op {op:?} outside the gate's fences");
                self.park_ops_and_hand_over(inst, g, vec![op]);
                return;
            }
            match self.apply_on_gate(inst, g, op) {
                ApplyResult::Done(_) => {}
                ApplyResult::NeedsGlobal => {
                    // The gate cannot take this insertion even after a local
                    // rebalance: park it back (ahead of the rest of the
                    // queue, preserving FIFO) and hand the gate over — the
                    // service drains the queue at claim time and merges it
                    // into the window rebuild, so nothing is replayed after
                    // a release.
                    self.park_ops_and_hand_over(inst, g, vec![op]);
                    return;
                }
            }
        }
    }

    /// Batch combining (paper section 3.5): deletions first, then all
    /// insertions merged in one rebalance; oversized batches go to the
    /// rebalancer, throttled by `t_delay`.
    fn drain_batch(&self, inst: &PmaInstance, g: usize, t_delay: Duration) {
        let gate = &inst.gates[g];
        loop {
            let ops: Vec<UpdateOp> = {
                let mut st = gate.lock();
                if st.pending.is_empty() {
                    st.queue_open = false;
                    st.mode = GateMode::Free;
                    drop(st);
                    gate.notify_all();
                    return;
                }
                st.pending.drain(..).collect()
            };
            // The deletions-first processing below would reorder same-key
            // operations, so first reduce the FIFO queue to the last
            // operation per key (earlier ones are superseded upserts).
            let ops = dedup_last_op_per_key(ops);
            Stats::bump(&self.shared.stats.batches_processed);
            let (lo, hi) = {
                let st = gate.lock();
                (st.fence_lo, st.fence_hi)
            };
            if ops.iter().any(|op| op.key() < lo || op.key() > hi) {
                // Unreachable (see `drain_one_by_one`): park everything and
                // let the service's stranded-drain path fold it.
                debug_assert!(false, "queued ops outside the gate's fences");
                self.park_ops_and_hand_over(inst, g, ops);
                return;
            }
            // First pass: deletions (they always make room); collect the
            // insertions for the second pass.
            let mut inserts: Vec<(Key, Value)> = Vec::new();
            let mut removed = 0usize;
            // SAFETY: the gate is held in `Write` mode by this writer.
            let chunk = unsafe { self.shared.chunk_mut(gate) };
            for op in ops {
                match op {
                    UpdateOp::Delete(k) => {
                        if chunk.remove(k).is_some() {
                            removed += 1;
                            Stats::bump(&self.shared.stats.deletes);
                        }
                    }
                    UpdateOp::Insert(k, v) => inserts.push((k, v)),
                }
            }
            if removed > 0 {
                self.shared.len.fetch_sub(removed, Ordering::Relaxed);
            }
            if inserts.is_empty() {
                continue;
            }
            // Stable sort: the queue may contain several upserts of the same
            // key, and `merge_batch` keeps the last equal-key entry — which
            // must be the one appended last, not an arbitrary one.
            inserts.sort_by_key(|&(k, _)| k);

            // Second pass: find the smallest window that fits all insertions.
            // If the whole gate fits them, merge locally; otherwise the batch
            // must go through the rebalancer, subject to `t_delay`.
            let gate_capacity = inst.gate_capacity();
            let tau_gate = inst.calibrator.upper_threshold(inst.gate_level);
            let fits_locally = chunk.cardinality() + inserts.len() <= gate_capacity
                && (chunk.cardinality() + inserts.len()) as f64 <= tau_gate * gate_capacity as f64;
            if fits_locally {
                let added = chunk.merge_batch(&inserts);
                if added > 0 {
                    self.shared.len.fetch_add(added, Ordering::Relaxed);
                    Stats::add(&self.shared.stats.inserts, added as u64);
                }
                Stats::bump(&self.shared.stats.local_rebalances);
                continue;
            }

            let batch_ops = inserts
                .into_iter()
                .map(|(k, v)| UpdateOp::Insert(k, v))
                .collect::<Vec<_>>();
            let mut st = gate.lock();
            let elapsed = st.last_global_rebalance.elapsed();
            if elapsed >= t_delay {
                // Park the batch at the front of the queue and hand the gate
                // over; we do not wait (asynchronous processing).
                drop(st);
                self.park_ops_and_hand_over(inst, g, batch_ops);
                return;
            }
            // `t_delay` has not elapsed: park the batch back in the queue and
            // delegate it. It goes to the *front*: operations appended while
            // this drain ran are newer than the drained batch, and the
            // last-op-per-key reduction at the next drain must see them in
            // that order (pushing to the back would resurrect a superseded
            // upsert over a fresher one).
            for op in batch_ops.into_iter().rev() {
                st.pending.push_front(op);
            }
            st.delegated = true;
            st.queue_open = false;
            st.mode = GateMode::Free;
            let due = st.last_global_rebalance + t_delay;
            drop(st);
            gate.notify_all();
            self.rebalancer
                .send(Request::DelayedBatch { gate_id: g, due });
            return;
        }
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Routes `key` to the gate covering it and acquires that gate in shared
    /// mode. Returns `None` when the instance was invalidated by a resize.
    fn acquire_read(&self, inst: &PmaInstance, key: Key) -> Option<usize> {
        let mut g = inst.index.find_gate(key);
        loop {
            let gate = &inst.gates[g];
            let mut st = gate.lock();
            loop {
                if st.invalidated {
                    return None;
                }
                if key < st.fence_lo && g > 0 {
                    Stats::bump(&self.shared.stats.gate_misses);
                    g -= 1;
                    break;
                }
                if key > st.fence_hi && g + 1 < inst.num_gates() {
                    Stats::bump(&self.shared.stats.gate_misses);
                    g += 1;
                    break;
                }
                match st.mode {
                    GateMode::Free if st.writers_waiting == 0 => {
                        st.mode = GateMode::Read(1);
                        return Some(g);
                    }
                    GateMode::Read(n) if st.writers_waiting == 0 => {
                        st.mode = GateMode::Read(n + 1);
                        return Some(g);
                    }
                    _ => gate.wait(&mut st),
                }
            }
        }
    }
}

/// Reduces a FIFO run of queued operations to the last operation per key
/// (upsert semantics: an earlier same-key operation is superseded by a later
/// one), preserving the relative order of the surviving entries. Batch drains
/// apply deletions before insertions, which is only order-safe once every key
/// occurs at most once.
pub(crate) fn dedup_last_op_per_key(ops: Vec<UpdateOp>) -> Vec<UpdateOp> {
    let mut seen: std::collections::HashSet<Key> =
        std::collections::HashSet::with_capacity(ops.len());
    let mut kept: Vec<UpdateOp> = Vec::with_capacity(ops.len());
    for op in ops.into_iter().rev() {
        if seen.insert(op.key()) {
            kept.push(op);
        }
    }
    kept.reverse();
    kept
}

/// Finds the smallest calibrator window *inside* the gate whose density —
/// counting one more element — is within its threshold. Returns the local
/// segment range, or `None` when the rebalance must span multiple gates.
fn find_local_window(
    inst: &PmaInstance,
    chunk: &chunk::ChunkData,
    seg_local: usize,
) -> Option<(usize, usize)> {
    let spg = inst.segments_per_gate;
    let seg_cap = chunk.segment_capacity();
    for level in 2..=inst.gate_level {
        let size = 1usize << (level - 1);
        if size > spg {
            break;
        }
        let start = (seg_local / size) * size;
        let cardinality = chunk.window_cardinality(start, size);
        let tau = inst.calibrator.upper_threshold(level);
        // Besides the density threshold, the window must be able to leave at
        // least one gap in every segment: the redistribution leaves a gap per
        // segment whenever possible, which guarantees the retried insertion
        // finds room wherever its key routes (no rebalance/retry livelock).
        if (cardinality + 1) as f64 <= tau * (size * seg_cap) as f64
            && cardinality < size * (seg_cap - 1)
        {
            return Some((start, size));
        }
    }
    None
}

impl Drop for ConcurrentPma {
    fn drop(&mut self) {
        self.rebalancer.shutdown();
        debug_assert_eq!(
            self.shared.stats.late_replays.load(Ordering::Relaxed),
            0,
            "an operation was salvaged outside its owned window"
        );
    }
}

impl Default for ConcurrentPma {
    /// Equivalent to [`ConcurrentPma::with_defaults`].
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl ConcurrentMap for ConcurrentPma {
    fn insert(&self, key: Key, value: Value) {
        ConcurrentPma::insert(self, key, value)
    }

    fn remove(&self, key: Key) -> Option<Value> {
        ConcurrentPma::remove(self, key)
    }

    fn get(&self, key: Key) -> Option<Value> {
        ConcurrentPma::get(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentPma::len(self)
    }

    fn scan_all(&self) -> ScanStats {
        ConcurrentPma::scan_all(self)
    }

    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        ConcurrentPma::range(self, lo, hi, visitor)
    }

    fn scan_range(&self, lo: Key, hi: Key) -> ScanStats {
        ConcurrentPma::scan_range(self, lo, hi)
    }

    fn collect_range(&self, lo: Key, hi: Key) -> Vec<(Key, Value)> {
        ConcurrentPma::collect_range(self, lo, hi)
    }

    fn collect_block(
        &self,
        lo: Key,
        hi: Key,
        min_len: usize,
        keys: &mut Vec<Key>,
        values: &mut Vec<Value>,
    ) -> Option<Key> {
        ConcurrentPma::collect_block(self, lo, hi, min_len, keys, values)
    }

    fn insert_batch(&self, items: &[(Key, Value)]) {
        ConcurrentPma::insert_batch(self, items)
    }

    fn from_sorted(items: &[(Key, Value)]) -> Result<Self, PmaError>
    where
        Self: Sized + Default,
    {
        ConcurrentPma::from_sorted(PmaParams::default(), items)
    }

    fn flush(&self) {
        ConcurrentPma::flush(self)
    }

    fn combining_stats(&self) -> Option<CombiningStats> {
        let snapshot = self.shared.stats.snapshot();
        Some(CombiningStats {
            owned_applies: snapshot.owned_applies,
            late_replays: snapshot.late_replays,
        })
    }

    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        let snapshot = self.shared.stats.snapshot();
        let registry = &self.shared.registry;
        Some(MaintenanceStats {
            splits: 0,
            merges: 0,
            stall_ns: 0,
            thrash_averted: 0,
            cow_copies: snapshot.cow_copies,
            pinned_generations: self.shared.cow.pinned_generations(),
            snapshot_lag: self.shared.cow.lag(),
            chase_rounds: 0,
            delta_backpressure_waits: 0,
            epoch_lag: registry
                .current_epoch()
                .saturating_sub(registry.min_active_epoch()),
        })
    }

    fn frozen(&self) -> Option<Box<dyn FrozenView>> {
        Some(Box::new(ConcurrentPma::frozen(self)))
    }

    fn observe_metrics(&self, out: &mut dyn pma_common::obs::Observe) {
        use pma_common::obs::metrics::MetricSource;
        self.shared.stats.snapshot().observe(out);
        out.gauge(
            "pinned_generations",
            self.shared.cow.pinned_generations() as f64,
        );
        out.gauge("snapshot_lag", self.shared.cow.lag() as f64);
        let registry = &self.shared.registry;
        out.gauge(
            "epoch_lag",
            registry
                .current_epoch()
                .saturating_sub(registry.min_active_epoch()) as f64,
        );
        out.gauge("queue_depth", self.queued_ops() as f64);
        out.gauge("garbage_pending", self.shared.garbage.len() as f64);
    }

    fn name(&self) -> &'static str {
        match self.shared.params.update_mode {
            UpdateMode::Synchronous => "PMA (sync)",
            UpdateMode::OneByOne => "PMA (1by1)",
            UpdateMode::Batch { .. } => "PMA (batch)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pma(mode: UpdateMode) -> ConcurrentPma {
        let params = PmaParams {
            update_mode: mode,
            ..PmaParams::small()
        };
        ConcurrentPma::new(params).unwrap()
    }

    #[test]
    fn empty_pma_basics() {
        let p = pma(UpdateMode::Synchronous);
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.get(5), None);
        assert_eq!(p.remove(5), None);
        assert_eq!(p.scan_all().count, 0);
        assert_eq!(p.num_gates(), 1);
    }

    #[test]
    fn insert_get_remove_synchronous() {
        let p = pma(UpdateMode::Synchronous);
        for k in 0..2000i64 {
            p.insert(k, k * 3);
        }
        assert_eq!(p.len(), 2000);
        for k in 0..2000i64 {
            assert_eq!(p.get(k), Some(k * 3), "key {k}");
        }
        assert_eq!(p.get(5000), None);
        for k in (0..2000i64).step_by(2) {
            assert_eq!(p.remove(k), Some(k * 3));
        }
        assert_eq!(p.len(), 1000);
        let stats = p.scan_all();
        assert_eq!(stats.count, 1000);
        assert!(
            p.stats().total_rebalances() > 0,
            "growth requires rebalances/resizes"
        );
    }

    #[test]
    fn reverse_and_random_insert_order() {
        let p = pma(UpdateMode::Synchronous);
        for k in (0..1500i64).rev() {
            p.insert(k, -k);
        }
        // Interleave a second pass of overwrites.
        for k in 0..1500i64 {
            p.insert(k, k);
        }
        assert_eq!(p.len(), 1500);
        let stats = p.scan_all();
        assert_eq!(stats.count, 1500);
        assert_eq!(stats.key_sum, (0..1500i64).sum::<i64>() as i128);
        assert_eq!(stats.value_sum, (0..1500i64).sum::<i64>() as i128);
    }

    #[test]
    fn range_scan_inclusive() {
        let p = pma(UpdateMode::Synchronous);
        for k in 0..3000i64 {
            p.insert(k * 2, k);
        }
        let mut seen = Vec::new();
        p.range(100, 120, &mut |k, _| seen.push(k));
        assert_eq!(seen, (100..=120).filter(|k| k % 2 == 0).collect::<Vec<_>>());
        let mut count = 0u64;
        p.range(i64::MIN, i64::MAX, &mut |_, _| count += 1);
        assert_eq!(count, 3000);
    }

    #[test]
    fn one_by_one_mode_single_thread() {
        let p = pma(UpdateMode::OneByOne);
        for k in 0..3000i64 {
            p.insert(k, k);
        }
        p.flush();
        assert_eq!(p.len(), 3000);
        assert_eq!(p.scan_all().count, 3000);
        for k in (0..3000i64).step_by(3) {
            p.remove(k);
        }
        p.flush();
        assert_eq!(p.len(), 2000);
    }

    #[test]
    fn batch_mode_single_thread() {
        let p = pma(UpdateMode::Batch {
            t_delay: Duration::from_millis(1),
        });
        for k in 0..3000i64 {
            p.insert(k, k);
        }
        p.flush();
        assert_eq!(p.len(), 3000);
        for k in 0..3000i64 {
            assert_eq!(p.get(k), Some(k), "key {k}");
        }
    }

    #[test]
    fn resize_restarts_are_transparent() {
        let p = pma(UpdateMode::Synchronous);
        // Small gates force several resizes while we keep reading.
        for k in 0..5000i64 {
            p.insert(k, k);
            if k % 97 == 0 {
                assert_eq!(p.get(k / 2), Some(k / 2));
            }
        }
        assert!(p.stats().resizes > 0);
        assert!(p.num_gates() > 1);
        assert_eq!(p.len(), 5000);
    }

    #[test]
    fn scan_range_matches_range_visits() {
        let p = pma(UpdateMode::Synchronous);
        for k in 0..4000i64 {
            p.insert(k * 3, k);
        }
        for (lo, hi) in [
            (0, 11_999),
            (100, 101),
            (5_000, 5_000),
            (300, 299),
            (-50, 40),
        ] {
            let mut expected = ScanStats::default();
            p.range(lo, hi, &mut |k, v| expected.visit(k, v));
            assert_eq!(p.scan_range(lo, hi), expected, "range [{lo}, {hi}]");
        }
        assert_eq!(p.scan_range(i64::MIN, i64::MAX).count, 4000);
    }

    #[test]
    fn insert_batch_equivalent_to_single_inserts() {
        for mode in [
            UpdateMode::Synchronous,
            UpdateMode::OneByOne,
            UpdateMode::Batch {
                t_delay: Duration::from_millis(1),
            },
        ] {
            let batched = pma(mode);
            let single = pma(UpdateMode::Synchronous);
            // Unsorted input with duplicate keys: the last duplicate must win.
            let items: Vec<(i64, i64)> = (0..5000i64).map(|i| ((i * 37) % 2500, i)).collect();
            batched.insert_batch(&items);
            for &(k, v) in &items {
                single.insert(k, v);
            }
            batched.flush();
            single.flush();
            assert_eq!(batched.len(), single.len());
            assert_eq!(batched.scan_all(), single.scan_all());
            assert_eq!(batched.get(0), single.get(0));
        }
    }

    #[test]
    fn from_sorted_loads_without_rebalances() {
        let items: Vec<(i64, i64)> = (0..50_000i64).map(|k| (k * 3, -k)).collect();
        let p = ConcurrentPma::from_sorted(PmaParams::small(), &items).unwrap();
        let stats = p.stats();
        assert_eq!(
            stats.total_rebalances(),
            0,
            "bulk load must not rebalance: {stats:?}"
        );
        assert_eq!(stats.bulk_loaded_keys, 50_000);
        assert_eq!(p.len(), 50_000);
        assert!(p.num_gates() > 1);
        assert!(p.num_gates().is_power_of_two());
        // Density within the calibrated root bound.
        assert!(p.len() <= p.capacity() * 3 / 4 + 1, "over tau_root");
        let scan = p.scan_all();
        assert_eq!(scan.count, 50_000);
        assert_eq!(scan.key_sum, (0..50_000i64).map(|k| k as i128 * 3).sum());
        for k in (0..50_000i64).step_by(997) {
            assert_eq!(p.get(k * 3), Some(-k));
            assert_eq!(p.get(k * 3 + 1), None);
        }
        // The loaded structure accepts ordinary updates afterwards.
        p.insert(1, 1);
        assert_eq!(p.remove(0), Some(0));
        p.flush();
        assert_eq!(p.len(), 50_000);
        assert_eq!(p.get(1), Some(1));
    }

    #[test]
    fn from_sorted_accepts_duplicates_and_rejects_unsorted() {
        let p =
            ConcurrentPma::from_sorted(PmaParams::small(), &[(1, 10), (1, 11), (2, 20)]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(1), Some(11), "later duplicates must win");
        assert!(ConcurrentPma::from_sorted(PmaParams::small(), &[(2, 0), (1, 0)]).is_err());
        let empty = ConcurrentPma::from_sorted(PmaParams::small(), &[]).unwrap();
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.num_gates(), 1);
        empty.insert(5, 5);
        assert_eq!(empty.get(5), Some(5));
    }

    #[test]
    fn from_sorted_matches_point_insert_construction() {
        let items: Vec<(i64, i64)> = (0..10_000i64).map(|k| (k * 7 % 30_011, k)).collect();
        let mut sorted = items.clone();
        sorted.sort_by_key(|&(k, _)| k);
        let loaded = ConcurrentPma::from_sorted(PmaParams::small(), &sorted).unwrap();
        let pointwise = pma(UpdateMode::Synchronous);
        for &(k, v) in &sorted {
            pointwise.insert(k, v);
        }
        pointwise.flush();
        assert_eq!(loaded.len(), pointwise.len());
        assert_eq!(loaded.scan_all(), pointwise.scan_all());
        assert_eq!(
            loaded.scan_range(100, 20_000),
            pointwise.scan_range(100, 20_000)
        );
    }

    #[test]
    fn oversized_batch_run_triggers_span_rebuild_not_per_key_inserts() {
        for mode in [
            UpdateMode::Synchronous,
            UpdateMode::Batch {
                t_delay: Duration::from_millis(1),
            },
        ] {
            let p = pma(mode);
            // One gate covers everything at first; a batch far larger than a
            // gate must be handed to the rebalancer as a whole run.
            let items: Vec<(i64, i64)> = (0..10_000i64).map(|k| (k, k)).collect();
            p.insert_batch(&items);
            p.flush();
            assert_eq!(p.len(), 10_000, "{mode:?}");
            assert_eq!(p.scan_all().count, 10_000, "{mode:?}");
            let stats = p.stats();
            assert!(
                stats.batch_span_rebuilds > 0,
                "{mode:?}: overflow runs must go through the span rebuild: {stats:?}"
            );
        }
    }

    #[test]
    fn synchronous_insert_batch_is_visible_without_flush() {
        let p = pma(UpdateMode::Synchronous);
        let items: Vec<(i64, i64)> = (0..10_000i64).map(|k| (k, -k)).collect();
        p.insert_batch(&items);
        // No flush: synchronous mode promises read-your-writes, including for
        // runs that overflowed a gate and went through the span rebuild.
        assert_eq!(p.len(), 10_000);
        assert_eq!(p.scan_all().count, 10_000);
        assert_eq!(p.get(9_999), Some(-9_999));
    }

    #[test]
    fn upsert_only_batch_merges_in_place_without_span_rebuild() {
        let p = pma(UpdateMode::Synchronous);
        let items: Vec<(i64, i64)> = (0..5_000i64).map(|k| (k, k)).collect();
        p.insert_batch(&items);
        p.flush();
        let rebuilds_before = p.stats().batch_span_rebuilds;
        // Re-batching the same keys adds nothing: even on gates whose naive
        // cardinality + run-length check overflows, the refresh must merge in
        // place instead of triggering gate-span rebuilds.
        let refreshed: Vec<(i64, i64)> = (0..5_000i64).map(|k| (k, -k)).collect();
        p.insert_batch(&refreshed);
        p.flush();
        assert_eq!(p.len(), 5_000);
        assert_eq!(p.get(4_321), Some(-4_321));
        assert_eq!(
            p.stats().batch_span_rebuilds,
            rebuilds_before,
            "value-refresh batches must not rebuild gate spans"
        );
    }

    #[test]
    fn insert_batch_grows_past_many_gates() {
        let p = pma(UpdateMode::Synchronous);
        let items: Vec<(i64, i64)> = (0..20_000i64).map(|k| (k, -k)).collect();
        p.insert_batch(&items);
        p.flush();
        assert_eq!(p.len(), 20_000);
        assert!(p.num_gates() > 1, "growth must have split the array");
        let stats = p.scan_range(10_000, 10_009);
        assert_eq!(stats.count, 10);
        assert_eq!(stats.key_sum, (10_000i64..10_010).sum::<i64>() as i128);
    }

    #[test]
    fn trait_object_usage() {
        let p: Box<dyn ConcurrentMap> = Box::new(pma(UpdateMode::Synchronous));
        p.insert(1, 10);
        assert_eq!(p.get(1), Some(10));
        assert_eq!(p.name(), "PMA (sync)");
    }
}
