//! The rebalancer service (paper section 3.3).
//!
//! Rebalances that span a single gate are executed by the writer that
//! triggered them. Everything larger is delegated to this service: a single
//! *master* thread receives requests, computes the window to rebalance by
//! walking the calibrator tree over gates (acquiring their latches along the
//! way), splits the window into per-gate partitions and hands them to a pool
//! of *worker* threads. Each worker rebuilds one gate's chunk into a staging
//! buffer; the master then installs the staged chunks ("memory rewiring" — a
//! pointer swap per chunk), updates fence keys and the static index, and
//! wakes the waiting clients.
//!
//! The master also owns resizes (section 3.4), the `t_delay` parking of
//! delegated batches (section 3.5), downsize checks and epoch-based garbage
//! collection.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use pma_common::obs;
use pma_common::{Key, Value};

use crate::stats::Stats;

use super::chunk::{ChunkData, ChunkInsert};
use super::gate::{GateMode, UpdateOp};
use super::instance::{compute_window_fences, PmaInstance};
use super::shared::Shared;

/// Requests accepted by the rebalancer master.
#[derive(Debug)]
pub(crate) enum Request {
    /// A writer handed over `gate_id` (latch in `Rebalance` mode,
    /// `service_owned` set) because the work exceeds the gate: either a
    /// single insertion that needs a multi-gate window (`reserve` = 1, the
    /// writer retries it after the rebalance), or an oversized batch run
    /// **parked at the front of the gate's combining queue** (`reserve` = 0;
    /// the master drains the queue at claim time and merges the run into the
    /// window rebuild). Requests never carry element payloads: a payload in
    /// the channel can go stale across a resize while the operations it
    /// carries become unreachable to the ordering protocol — parking them in
    /// the queue keeps them inside the machinery that resizes freeze
    /// (`queue_closed`) and fold, and that rebalances settle in-window.
    GlobalRebalance {
        /// The handed-over gate.
        gate_id: usize,
        /// Identity of the hand-over: the address of the instance the sender
        /// observed and the gate's `rebalance_epoch` at hand-over time. The
        /// master verifies both before treating the gate as "ours"; a
        /// mismatch means the gate was meanwhile recycled (claimed into
        /// another window, or invalidated by a resize) and whichever path
        /// recycled it already resolved the queued operations while it owned
        /// the gate.
        origin: (usize, u64),
        /// Number of elements the hand-over writer retries itself after the
        /// rebalance (room is reserved for them in the window sizing).
        reserve: usize,
    },
    /// A combining queue delegated to the service because `t_delay` has not
    /// elapsed yet (the gate is *not* handed over; its `delegated` flag is
    /// set and other writers keep appending to its pending queue).
    DelayedBatch { gate_id: usize, due: Instant },
    /// Re-check whether the array should shrink.
    MaybeDownsize,
    /// Process all parked work immediately and acknowledge.
    Flush(Sender<()>),
    /// Terminate the service.
    Shutdown,
}

/// A staging job for one worker: rebuild one gate's chunk from its partition
/// of the window's merged element stream.
struct BuildJob {
    /// The window's merged elements, materialised once by the master; each
    /// job covers the disjoint slice `[elem_start, elem_start + sum(targets))`.
    elements: Arc<Vec<(Key, Value)>>,
    /// Segment capacity of the chunk being built.
    segment_capacity: usize,
    /// Rank (within the merged stream) of the first element of this chunk.
    elem_start: usize,
    /// Per-segment element counts for the chunk being built.
    targets: Vec<usize>,
    /// Window-relative index of the output gate.
    out_idx: usize,
    reply: Sender<(usize, ChunkData)>,
}

enum WorkerMsg {
    Build(BuildJob),
    Shutdown,
}

/// Outcome of draining a service-owned gate's combining queue
/// ([`Master::settle_gate_ops`]).
enum QueueDrain {
    /// Deletions were applied in place; the sorted insertions remain for the
    /// caller to merge.
    Inserts(Vec<(Key, Value)>),
    /// At least one operation no longer lay within the gate's fences (a
    /// broken invariant, counted as `late_replays`): the whole drain is
    /// handed back untouched for a full resize fold.
    Stranded(Vec<UpdateOp>),
}

/// Merges the chunks of a window with a sorted, deduplicated batch of
/// insertions into one ascending element stream (upsert semantics: the batch
/// value wins on key collisions).
///
/// The master materialises the merged window exactly once before fanning the
/// per-gate build jobs out to the workers — each job then slices its disjoint
/// partition in O(1). (An earlier design handed the workers a lazily merged
/// iterator with a `skip(rank)` per job, which made wide redistributes
/// quadratic in the window size and effectively stalled root-window
/// rebalances.)
pub(crate) fn merge_window(chunks: &[&ChunkData], batch: Vec<(Key, Value)>) -> Vec<(Key, Value)> {
    debug_assert!(batch.windows(2).all(|w| w[0].0 < w[1].0));
    let cardinality: usize = chunks.iter().map(|c| c.cardinality()).sum();
    let mut merged = Vec::with_capacity(cardinality + batch.len());
    merged.extend(MergeIter {
        a: chunks.iter().flat_map(|c| c.iter()).peekable(),
        b: batch.into_iter().peekable(),
    });
    merged
}

/// Merge of two ascending streams with upsert semantics (`b` wins ties).
struct MergeIter<A, B>
where
    A: Iterator<Item = (Key, Value)>,
    B: Iterator<Item = (Key, Value)>,
{
    a: std::iter::Peekable<A>,
    b: std::iter::Peekable<B>,
}

impl<A, B> Iterator for MergeIter<A, B>
where
    A: Iterator<Item = (Key, Value)>,
    B: Iterator<Item = (Key, Value)>,
{
    type Item = (Key, Value);

    fn next(&mut self) -> Option<(Key, Value)> {
        match (self.a.peek().copied(), self.b.peek().copied()) {
            (None, None) => None,
            (Some(_), None) => self.a.next(),
            (None, Some(_)) => self.b.next(),
            (Some((ka, _)), Some((kb, _))) => {
                if ka < kb {
                    self.a.next()
                } else if kb < ka {
                    self.b.next()
                } else {
                    // Same key: the batch element replaces the stored one.
                    self.a.next();
                    self.b.next()
                }
            }
        }
    }
}

/// Handle owned by [`super::ConcurrentPma`] to reach the service.
pub(crate) struct RebalancerHandle {
    tx: Sender<Request>,
    master: Option<JoinHandle<()>>,
}

impl RebalancerHandle {
    /// Starts the master thread (which in turn starts the worker pool).
    pub fn start(shared: Arc<Shared>) -> Self {
        let (tx, rx) = unbounded();
        let req_tx = tx.clone();
        let master = std::thread::Builder::new()
            .name("pma-rebalancer-master".to_string())
            .spawn(move || Master::new(shared, rx, req_tx).run())
            .expect("failed to spawn the rebalancer master thread");
        Self {
            tx,
            master: Some(master),
        }
    }

    /// Sends a request to the master (never blocks).
    pub fn send(&self, request: Request) {
        // The only way the channel can be disconnected is during shutdown, in
        // which case dropping the request is fine.
        let _ = self.tx.send(request);
    }

    /// Asks the master to process all parked work and waits for completion.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = unbounded();
        if self.tx.send(Request::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Stops the master and the workers.
    pub fn shutdown(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(handle) = self.master.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RebalancerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RebalancerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RebalancerHandle").finish()
    }
}

/// The master thread state.
struct Master {
    shared: Arc<Shared>,
    rx: Receiver<Request>,
    /// Loop-back sender used to re-enqueue follow-up work for the master
    /// itself (the post-release combining-queue drain).
    req_tx: Sender<Request>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Sender<WorkerMsg>,
    /// Delegated batches waiting for their `t_delay` to elapse.
    parked: Vec<(Instant, usize)>,
}

impl Master {
    fn new(shared: Arc<Shared>, rx: Receiver<Request>, req_tx: Sender<Request>) -> Self {
        let (job_tx, job_rx) = unbounded::<WorkerMsg>();
        let workers = (0..shared.params.rebalancer_workers)
            .map(|i| {
                let job_rx = job_rx.clone();
                std::thread::Builder::new()
                    .name(format!("pma-rebalancer-worker-{i}"))
                    .spawn(move || worker_loop(job_rx))
                    .expect("failed to spawn a rebalancer worker")
            })
            .collect();
        Self {
            shared,
            rx,
            req_tx,
            workers,
            job_tx,
            parked: Vec::new(),
        }
    }

    fn run(mut self) {
        loop {
            let timeout = self
                .parked
                .iter()
                .map(|(due, _)| due.saturating_duration_since(Instant::now()))
                .min()
                .unwrap_or(Duration::from_millis(50));
            let request = match self.rx.recv_timeout(timeout.max(Duration::from_millis(1))) {
                Ok(r) => Some(r),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            };
            match request {
                Some(Request::Shutdown) => break,
                Some(Request::GlobalRebalance {
                    gate_id,
                    origin,
                    reserve,
                }) => {
                    self.handle_handed_over_gate(gate_id, reserve, origin);
                }
                Some(Request::DelayedBatch { gate_id, due }) => {
                    self.parked.push((due, gate_id));
                    Stats::bump(&self.shared.stats.batches_delayed);
                }
                Some(Request::MaybeDownsize) => self.maybe_downsize(),
                Some(Request::Flush(ack)) => {
                    let parked = std::mem::take(&mut self.parked);
                    for (_, gate_id) in parked {
                        self.process_delegated_batch(gate_id);
                    }
                    self.shared.garbage.collect(&self.shared.registry);
                    let _ = ack.send(());
                }
                None => {}
            }
            // Process parked batches that have become due.
            let now = Instant::now();
            let due: Vec<usize> = {
                let (ready, waiting): (Vec<_>, Vec<_>) = std::mem::take(&mut self.parked)
                    .into_iter()
                    .partition(|(d, _)| *d <= now);
                self.parked = waiting;
                ready.into_iter().map(|(_, g)| g).collect()
            };
            for gate_id in due {
                self.process_delegated_batch(gate_id);
            }
            let reclaimed = self.shared.garbage.collect(&self.shared.registry);
            if reclaimed > 0 {
                obs::trace::instant(obs::Category::EpochReclaim, reclaimed as u64);
            }
        }
        // Drain leftover parked work before terminating so no update is lost.
        let parked = std::mem::take(&mut self.parked);
        for (_, gate_id) in parked {
            self.process_delegated_batch(gate_id);
        }
        for _ in &self.workers {
            let _ = self.job_tx.send(WorkerMsg::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Waits for gate `g` to become acquirable by the service and claims it.
    /// Gates already handed over (`Rebalance` + `service_owned`) are claimed
    /// immediately: the stale hand-over request will notice and skip.
    fn acquire_gate(&self, inst: &PmaInstance, g: usize) {
        let gate = &inst.gates[g];
        let mut st = gate.lock();
        loop {
            match st.mode {
                GateMode::Free => {
                    st.mode = GateMode::Rebalance;
                    st.service_owned = true;
                    return;
                }
                GateMode::Rebalance if st.service_owned => return,
                // Park with writer preference (see `Gate::wait_exclusive`):
                // a continuous stream of overlapping scanners must not
                // starve the service out of its window.
                _ => gate.wait_exclusive(&mut st),
            }
        }
    }

    /// Releases the service-owned gates `[g_lo, g_hi)`, bumping their
    /// rebalance epoch, reopening any queue a settle froze and waking every
    /// waiter.
    ///
    /// Operations still sitting in a released gate's combining queue are
    /// guaranteed to be *covered* by the gate's fences (the settle that ran
    /// before this release applied every moved operation in-window), so
    /// leaving them queued is order-safe: later same-key operations either
    /// append behind them (the gate is marked delegated below) or apply
    /// after the scheduled drain. The gate is marked delegated and a
    /// due-immediately `DelayedBatch` loops back to the master, so the queue
    /// is drained by the service itself right after the rebalance instead of
    /// waiting for the next writer.
    fn release_gates(&self, inst: &PmaInstance, g_lo: usize, g_hi: usize) {
        let _span = obs::span(obs::Category::RebalanceRelease, (g_hi - g_lo) as u64);
        let now = Instant::now();
        for g in g_lo..g_hi {
            let gate = &inst.gates[g];
            let drain = {
                let mut st = gate.lock();
                st.mode = GateMode::Free;
                st.service_owned = false;
                st.queue_closed = false;
                st.rebalance_epoch += 1;
                st.last_global_rebalance = now;
                let drain = !st.pending.is_empty() && !st.delegated && !st.invalidated;
                if drain {
                    // Keep later writers appending FIFO behind the queued
                    // operations until the drain runs (same protocol as the
                    // `t_delay` parking in `drain_batch`).
                    st.delegated = true;
                }
                drain
            };
            gate.notify_all();
            if drain {
                let _ = self.req_tx.send(Request::DelayedBatch {
                    gate_id: g,
                    due: now,
                });
            }
        }
    }

    /// Entry point for `GlobalRebalance`: the gate was handed over by a
    /// writer, possibly with an oversized run parked at the front of its
    /// combining queue. `origin` is the `(instance address, rebalance_epoch)`
    /// pair recorded at hand-over time; a mismatch means the gate under this
    /// index is no longer *that* hand-over (it was claimed into another
    /// window, released, invalidated by a resize, or belongs to a brand-new
    /// instance), so the request is stale. Stale requests are simply dropped:
    /// the parked operations travelled with the *gate*, not the request, and
    /// whichever path recycled the gate resolved its queue while owning it —
    /// a resize froze and folded it before publishing, another window's
    /// rebalance settled it in-window and scheduled the drain of what stayed
    /// covered. Nothing is ever replayed after the fact.
    fn handle_handed_over_gate(&self, gate_id: usize, reserve: usize, origin: (usize, u64)) {
        let _pin = self.shared.pin();
        // SAFETY: pinned above.
        let inst = unsafe { self.shared.instance_ref() };
        let stale = gate_id >= inst.num_gates() || {
            let st = inst.gates[gate_id].lock();
            let (inst_addr, epoch) = origin;
            st.invalidated
                || !(st.mode == GateMode::Rebalance && st.service_owned)
                || inst_addr != inst as *const PmaInstance as usize
                || epoch != st.rebalance_epoch
        };
        if stale {
            return;
        }
        // The hand-over is ours: drain the combining queue — the parked run,
        // if any, plus everything forwarded since — while the gate is owned,
        // apply the deletions in place and merge the insertions into the
        // window rebuild.
        let gate = &inst.gates[gate_id];
        let ops = {
            let mut st = gate.lock();
            st.delegated = false;
            st.pending.drain(..).collect::<Vec<_>>()
        };
        let ops = super::dedup_last_op_per_key(ops);
        match self.settle_gate_ops(inst, gate_id, ops) {
            QueueDrain::Inserts(inserts) => self.rebalance_from(inst, gate_id, reserve, inserts),
            QueueDrain::Stranded(ops) => {
                self.resize(inst, gate_id, gate_id + 1, Vec::new(), ops, false)
            }
        }
    }

    /// Reduces an already-deduplicated queue drain of a service-owned gate to
    /// the work left to do: deletions are applied to the gate's chunk right
    /// here (the gate is owned, deletions always succeed) and the sorted
    /// insertions are returned for the caller to merge.
    ///
    /// Every operation must lie within the gate's fences — queue appends are
    /// fence-checked, and every fence movement settles the queue in-window
    /// before the gates are released — so an out-of-fence operation means the
    /// invariant broke. That case is counted (`late_replays`), asserted
    /// against in debug builds, and handed back as [`QueueDrain::Stranded`]
    /// so the caller salvages the whole drain through a resize fold (the one
    /// path that applies arbitrary keys without ever releasing first).
    fn settle_gate_ops(
        &self,
        inst: &PmaInstance,
        gate_id: usize,
        ops: Vec<UpdateOp>,
    ) -> QueueDrain {
        let gate = &inst.gates[gate_id];
        let (fence_lo, fence_hi) = {
            let st = gate.lock();
            (st.fence_lo, st.fence_hi)
        };
        let outside = ops
            .iter()
            .filter(|op| op.key() < fence_lo || op.key() > fence_hi)
            .count();
        if outside > 0 {
            Stats::add(&self.shared.stats.late_replays, outside as u64);
            debug_assert!(
                false,
                "combining queue of gate {gate_id} held {outside} ops outside its fences"
            );
            return QueueDrain::Stranded(ops);
        }
        Stats::add(&self.shared.stats.owned_applies, ops.len() as u64);
        let mut inserts: Vec<(Key, Value)> = Vec::new();
        let mut removed = 0usize;
        for op in ops {
            match op {
                UpdateOp::Delete(k) => {
                    // SAFETY: gate is service-owned.
                    if unsafe { self.shared.chunk_mut(gate) }.remove(k).is_some() {
                        removed += 1;
                        Stats::bump(&self.shared.stats.deletes);
                    }
                }
                UpdateOp::Insert(k, v) => inserts.push((k, v)),
            }
        }
        if removed > 0 {
            self.shared.len.fetch_sub(removed, Ordering::Relaxed);
        }
        // Stable sort so duplicate-key upserts resolve to the entry appended
        // last (the dedup above already guarantees unique keys, but keep the
        // ordering contract explicit for `merge_batch`/`merge_window`).
        inserts.sort_by_key(|&(k, _)| k);
        QueueDrain::Inserts(inserts)
    }

    /// Core global-rebalance routine. `gate_id` must already be owned by the
    /// service and its queue drained (`batch` holds the drained insertions).
    /// Expands the window gate by gate until the density fits, redistributes
    /// (merging `batch`), **settles the window's combining queues while the
    /// window is still owned**, and only then releases; resizes when even the
    /// root window is over threshold. `reserve` elements of extra room are
    /// kept for operations the hand-over writer retries itself.
    fn rebalance_from(
        &self,
        inst: &PmaInstance,
        gate_id: usize,
        reserve: usize,
        batch: Vec<(Key, Value)>,
    ) {
        let spg = inst.segments_per_gate;
        let seg_cap = inst.segment_capacity;
        let seg0 = inst.first_segment_of_gate(gate_id);
        let extra = reserve + batch.len();
        // Gates currently owned by the service for this operation.
        let mut owned_lo = gate_id;
        let mut owned_hi = gate_id + 1;
        let mut window = None;
        let mut claim_span = obs::span(obs::Category::RebalanceClaim, 0);
        for level in (inst.gate_level + 1)..=inst.calibrator.height() {
            let w = inst.calibrator.window_at(seg0, level);
            let g_lo = w.start_segment / spg;
            let g_hi = w.end_segment().div_ceil(spg).max(g_lo + 1);
            for g in (g_lo..owned_lo).chain(owned_hi..g_hi) {
                self.acquire_gate(inst, g);
            }
            owned_lo = owned_lo.min(g_lo);
            owned_hi = owned_hi.max(g_hi);
            let cardinality: usize = (g_lo..g_hi)
                // SAFETY: all gates in [g_lo, g_hi) are service-owned.
                .map(|g| unsafe { inst.gates[g].chunk() }.cardinality())
                .sum();
            let capacity = w.num_segments * seg_cap;
            let density = (cardinality + extra) as f64 / capacity as f64;
            // The window is acceptable when it is within its density threshold
            // *and* large enough to keep one gap per segment after merging the
            // pending insertions; the gap guarantees that writers retrying
            // after this rebalance make progress instead of immediately
            // handing the gate back (livelock).
            if density <= inst.calibrator.upper_threshold(level)
                && cardinality + extra <= w.num_segments * (seg_cap - 1)
            {
                window = Some((g_lo, g_hi, cardinality));
                break;
            }
        }
        claim_span.set_payload((owned_hi - owned_lo) as u64);
        drop(claim_span);
        match window {
            Some((g_lo, g_hi, cardinality)) => {
                self.redistribute(inst, g_lo, g_hi, cardinality, batch);
                // Owned-window settle: the redistribute froze the window's
                // queues and moved its fences; apply every queued operation
                // whose key now belongs to a *sibling* gate before anything
                // is released. Covered operations stay queued (release marks
                // those gates delegated and schedules their drain).
                let lo = g_lo.min(owned_lo);
                let hi = g_hi.max(owned_hi);
                let leftover = self.settle_window_queues(inst, g_lo, g_hi);
                if leftover.is_empty() {
                    self.release_gates(inst, lo, hi);
                    Stats::bump(&self.shared.stats.global_rebalances);
                } else {
                    // A gate filled past its local-rebalance headroom while
                    // the service held the window, so a settled insertion
                    // found no room. Rebuild the whole array with the
                    // leftovers folded in — still without releasing, so the
                    // operations are applied before any client can observe
                    // the gates again.
                    self.resize(inst, lo, hi, Vec::new(), leftover, false);
                }
            }
            None => {
                self.resize(inst, owned_lo, owned_hi, batch, Vec::new(), false);
            }
        }
    }

    /// Partitions the pending queue of every gate in the (service-owned,
    /// queue-frozen) window `[g_lo, g_hi)` against the *new* fences: covered
    /// operations stay queued in FIFO order, moved operations are reduced to
    /// the last per key and applied directly to the sibling chunk that now
    /// covers them — all while the whole window is still exclusively owned,
    /// which is what makes the application linearizable (nothing can slip in
    /// between the fence movement and the apply). Returns the operations
    /// that could not be placed (an insert into a gate that is full even
    /// after a local rebalance); the caller folds those into a resize.
    fn settle_window_queues(&self, inst: &PmaInstance, g_lo: usize, g_hi: usize) -> Vec<UpdateOp> {
        let mut span = obs::span(obs::Category::RebalanceSettle, 0);
        // Fences are stable while the gates are owned; snapshot them once.
        let fences: Vec<(Key, Key)> = (g_lo..g_hi)
            .map(|g| {
                let st = inst.gates[g].lock();
                (st.fence_lo, st.fence_hi)
            })
            .collect();
        let mut moved: Vec<UpdateOp> = Vec::new();
        for g in g_lo..g_hi {
            let gate = &inst.gates[g];
            let mut st = gate.lock();
            if st.pending.is_empty() {
                continue;
            }
            let (lo, hi) = fences[g - g_lo];
            let mut kept = std::collections::VecDeque::with_capacity(st.pending.len());
            for op in st.pending.drain(..) {
                if op.key() >= lo && op.key() <= hi {
                    kept.push_back(op);
                } else {
                    moved.push(op);
                }
            }
            st.pending = kept;
        }
        if moved.is_empty() {
            return Vec::new();
        }
        // Keys are disjoint across the old queues (an operation is appended
        // only while its gate's fences cover it, and the queues were frozen
        // before the fences moved), so a global last-op-per-key reduction
        // preserves every per-key FIFO.
        let moved = super::dedup_last_op_per_key(moved);
        span.set_payload(moved.len() as u64);
        Stats::add(&self.shared.stats.owned_applies, moved.len() as u64);
        self.apply_ops_in_window(inst, g_lo, &fences, moved)
    }

    /// Applies operations to the owned window `[g_lo, g_lo + fences.len())`,
    /// routing each by the given (post-redistribute) fences. Deletions always
    /// succeed; an insertion that finds its segment full gets one whole-chunk
    /// local rebalance and is otherwise returned as unplaceable. An operation
    /// covered by none of the fences cannot exist (queued keys lie within
    /// their gate's old fences, whose union the window's outer fences bound);
    /// it is counted as a late replay and returned for the resize fold.
    fn apply_ops_in_window(
        &self,
        inst: &PmaInstance,
        g_lo: usize,
        fences: &[(Key, Key)],
        ops: Vec<UpdateOp>,
    ) -> Vec<UpdateOp> {
        let mut unplaced: Vec<UpdateOp> = Vec::new();
        for op in ops {
            let key = op.key();
            let Some(rel) = fences.iter().position(|&(lo, hi)| key >= lo && key <= hi) else {
                Stats::bump(&self.shared.stats.late_replays);
                debug_assert!(false, "settled op {op:?} outside its window");
                unplaced.push(op);
                continue;
            };
            let gate = &inst.gates[g_lo + rel];
            match op {
                UpdateOp::Delete(k) => {
                    // SAFETY: gate is service-owned.
                    if unsafe { self.shared.chunk_mut(gate) }.remove(k).is_some() {
                        self.shared.len.fetch_sub(1, Ordering::Relaxed);
                        Stats::bump(&self.shared.stats.deletes);
                    }
                }
                UpdateOp::Insert(k, v) => {
                    // SAFETY: gate is service-owned.
                    let chunk = unsafe { self.shared.chunk_mut(gate) };
                    let mut result = chunk.try_insert(k, v);
                    if matches!(result, ChunkInsert::SegmentFull(_))
                        && chunk.cardinality() < chunk.capacity()
                    {
                        chunk.rebalance_local(0, chunk.num_segments(), false);
                        Stats::bump(&self.shared.stats.local_rebalances);
                        result = chunk.try_insert(k, v);
                    }
                    match result {
                        ChunkInsert::Inserted => {
                            self.shared.len.fetch_add(1, Ordering::Relaxed);
                            Stats::bump(&self.shared.stats.inserts);
                        }
                        ChunkInsert::Replaced(_) => {}
                        ChunkInsert::SegmentFull(_) => unplaced.push(op),
                    }
                }
            }
        }
        unplaced
    }

    /// Redistributes the elements of gates `[g_lo, g_hi)` evenly over their
    /// segments, merging `batch`, using the worker pool. The caller owns all
    /// the gates and releases them afterwards.
    fn redistribute(
        &self,
        inst: &PmaInstance,
        g_lo: usize,
        g_hi: usize,
        cardinality: usize,
        batch: Vec<(Key, Value)>,
    ) {
        let _span = obs::span(obs::Category::Redistribute, (g_hi - g_lo) as u64);
        let spg = inst.segments_per_gate;
        let seg_cap = inst.segment_capacity;
        let num_gates = g_hi - g_lo;
        let num_segments = num_gates * spg;

        let batch = normalise_batch(batch);
        // Materialise the merged window once; the workers slice it. The merge
        // dedupes colliding keys, so the number of *new* keys (for the element
        // counter) falls out of the length difference.
        let chunks: Vec<&ChunkData> = (g_lo..g_hi)
            // SAFETY: gates are service-owned by the caller.
            .map(|g| unsafe { inst.gates[g].chunk() })
            .collect();
        let elements = Arc::new(merge_window(&chunks, batch));
        drop(chunks);
        let total = elements.len();
        let new_keys = total - cardinality;
        debug_assert!(total <= num_segments * seg_cap);
        let targets = crate::sequential::even_targets(total, num_segments, seg_cap);

        let (reply_tx, reply_rx) = unbounded();
        let mut elem_start = 0usize;
        for out_idx in 0..num_gates {
            let gate_targets = targets[out_idx * spg..(out_idx + 1) * spg].to_vec();
            let gate_total: usize = gate_targets.iter().sum();
            let job = BuildJob {
                elements: Arc::clone(&elements),
                segment_capacity: seg_cap,
                elem_start,
                targets: gate_targets,
                out_idx,
                reply: reply_tx.clone(),
            };
            elem_start += gate_total;
            let _ = self.job_tx.send(WorkerMsg::Build(job));
        }
        drop(reply_tx);
        debug_assert_eq!(elem_start, total);

        let mut staged: Vec<Option<ChunkData>> = (0..num_gates).map(|_| None).collect();
        for _ in 0..num_gates {
            let (idx, chunk) = reply_rx
                .recv()
                .expect("a rebalancer worker died while building a partition");
            staged[idx] = Some(chunk);
        }

        // Freeze the window's combining queues before any fence moves. While
        // two adjacent gates are mid-update a key can transiently be covered
        // by both the stale and the fresh fences, so a queue append in that
        // window could land *behind* an older same-key entry in a different
        // gate's queue — an ordering the post-redistribute settle could not
        // reconstruct. With `queue_closed` set, would-be queueing writers
        // block on the gate's condvar until `release_gates` reopens the
        // queues, by which point the fences are final. The freeze only spans
        // the pointer swaps, fence updates and the settle — the expensive
        // merge/build above ran with the queues open.
        let _install_span = obs::span(obs::Category::RebalanceInstall, num_gates as u64);
        for g in g_lo..g_hi {
            inst.gates[g].lock().queue_closed = true;
        }

        // Install the staged chunks ("rewiring": a swap per gate), then update
        // fences and separators.
        let outer_lo = inst.gates[g_lo].lock().fence_lo;
        let outer_hi = inst.gates[g_hi - 1].lock().fence_hi;
        let mut mins = Vec::with_capacity(num_gates);
        // The pointer swaps install a new placement of the window's elements:
        // advance the write generation and stamp every installed chunk with
        // it. Old versions pinned by a frozen snapshot survive through the
        // snapshot's Arc clones; unpinned ones are freed here.
        let install_gen = self.shared.cow.advance();
        for (i, staged_chunk) in staged.into_iter().enumerate() {
            let chunk = staged_chunk.expect("every partition must be staged");
            mins.push(chunk.min_key());
            // SAFETY: gate is service-owned.
            let _old = unsafe { inst.gates[g_lo + i].install_chunk(chunk, install_gen) };
        }
        let fences = compute_window_fences(outer_lo, outer_hi, &mins);
        for (i, &(lo, hi)) in fences.iter().enumerate() {
            let g = g_lo + i;
            {
                let mut st = inst.gates[g].lock();
                st.fence_lo = lo;
                st.fence_hi = hi;
            }
            inst.index.update_separator(g, lo);
        }
        if new_keys > 0 {
            self.shared.len.fetch_add(new_keys, Ordering::Relaxed);
        }
    }

    /// Rebuilds the whole array with a capacity fitted to the current element
    /// count (paper sections 3.4). `owned_lo..owned_hi` are gates already
    /// owned by the service; the remaining gates are acquired here. `batch`
    /// is merged into the new instance. `pre_ops` are operations the caller
    /// already drained from combining queues but could not place (a stranded
    /// drain, or a settled insert whose gate was full): they are folded into
    /// the rebuild ahead of the queue drains — for any key they share with a
    /// still-queued operation, the queued one is newer, so the
    /// last-op-per-key reduction keeps the right entry. When `shrink_check`
    /// is set the resize is abandoned if the array is no longer under-full.
    ///
    /// Operations sitting in combining queues are **folded into the new
    /// instance before it is published**, and the queues are closed
    /// (`queue_closed`) for the duration of the rebuild so no operation can
    /// be queued onto the dying instance. An earlier design re-applied
    /// stranded queue entries *after* publication, which was a linearizability
    /// hole: a client could apply a newer operation on the new instance
    /// first, only to have it overwritten by the master's late replay of an
    /// older queued operation for the same key.
    fn resize(
        &self,
        inst: &PmaInstance,
        owned_lo: usize,
        owned_hi: usize,
        batch: Vec<(Key, Value)>,
        pre_ops: Vec<UpdateOp>,
        shrink_check: bool,
    ) {
        let mut resize_span = obs::span(obs::Category::Resize, 0);
        // Acquire every gate of the instance.
        {
            let _claim = obs::span(
                obs::Category::RebalanceClaim,
                (inst.num_gates() - (owned_hi - owned_lo)) as u64,
            );
            for g in (0..owned_lo).chain(owned_hi..inst.num_gates()) {
                self.acquire_gate(inst, g);
            }
        }

        // Collect all elements.
        let mut keys: Vec<Key> = Vec::new();
        let mut values: Vec<Value> = Vec::new();
        for g in 0..inst.num_gates() {
            // SAFETY: every gate is now service-owned.
            unsafe { inst.gates[g].chunk() }.collect_into(&mut keys, &mut values);
        }

        if shrink_check {
            debug_assert!(batch.is_empty() && pre_ops.is_empty());
            let capacity = inst.capacity();
            let still_underfull =
                (keys.len() as f64) < self.shared.params.downsize_at * capacity as f64;
            if !still_underfull || inst.num_gates() == 1 {
                // Abort: the combining queues are left untouched —
                // `release_gates` schedules a drain for any gate holding
                // queued operations, preserving their FIFO position.
                self.release_gates(inst, 0, inst.num_gates());
                return;
            }
        }

        // Freeze the combining queues: with `queue_closed` set (and
        // `delegated` cleared) every would-be queueing writer blocks on the
        // gate's condvar instead, so the queues cannot grow behind our back.
        // Everything queued so far is drained and folded into the rebuild,
        // behind the caller's `pre_ops` (which predate any still-queued
        // same-key operation).
        let mut pending_ops: Vec<UpdateOp> = pre_ops;
        let folded_from_queues = {
            let before = pending_ops.len();
            for gate in inst.gates.iter() {
                let mut st = gate.lock();
                st.queue_closed = true;
                st.delegated = false;
                pending_ops.extend(st.pending.drain(..));
            }
            // `pre_ops` were already accounted for by whichever settle
            // produced them; only the queue drains are new owned resolutions.
            (pending_ops.len() - before) as u64
        };
        Stats::add(&self.shared.stats.owned_applies, folded_from_queues);

        // Fold everything into one sorted stream: first the hand-over batch
        // (it predates every queued operation), then the queued operations
        // reduced to the last one per key and applied as one upsert-merge
        // plus one delete-filter pass.
        let batch = normalise_batch(batch);
        let (merged_keys, merged_values) = merge_sorted(&keys, &values, &batch);
        let ops = super::dedup_last_op_per_key(pending_ops);
        let mut deletes: Vec<Key> = Vec::new();
        let mut inserts: Vec<(Key, Value)> = Vec::new();
        for op in ops {
            match op {
                UpdateOp::Delete(k) => deletes.push(k),
                UpdateOp::Insert(k, v) => inserts.push((k, v)),
            }
        }
        inserts.sort_by_key(|&(k, _)| k);
        deletes.sort_unstable();
        let (merged_keys, merged_values) = merge_sorted(&merged_keys, &merged_values, &inserts);
        let (final_keys, final_values) = filter_deleted(merged_keys, merged_values, &deletes);
        let new_len = final_keys.len();

        // Paper: C' = 2 N / (rho_h + tau_h), rounded up to a power-of-two
        // number of gates — the same capacity-planning rule the bulk-load
        // constructor uses.
        let num_gates = self.shared.params.presized_gates(new_len);
        resize_span.set_payload(num_gates as u64);

        // A resize is a whole-array reinstall: stamp the new instance's
        // chunks with a freshly advanced write generation. Snapshots pinning
        // the old instance's chunk versions keep them alive through their own
        // Arc clones, independent of the epoch retirement below.
        let new_instance = Box::new(PmaInstance::from_sorted_gen(
            &final_keys,
            &final_values,
            num_gates,
            &self.shared.params,
            self.shared.cow.advance(),
        ));
        // Covers publication plus the invalidate/retire epilogue below.
        let _publish_span = obs::span(obs::Category::ResizePublish, num_gates as u64);
        let old = self.shared.publish_instance(new_instance);
        // Adjust the element counter by the delta the batch and the folded
        // queue operations produced, NOT with a `store(new_len)`: the instant
        // the new instance is published, clients can pin it and apply updates
        // — an absolute store would overwrite their concurrent
        // `fetch_add`/`fetch_sub`, leaving the counter permanently off by the
        // lost updates. From the moment every old gate was service-owned
        // until publication the counter could not move, so it equalled
        // `keys.len()` and a relative adjustment is race-free.
        match new_len.cmp(&keys.len()) {
            std::cmp::Ordering::Greater => {
                self.shared
                    .len
                    .fetch_add(new_len - keys.len(), Ordering::Relaxed);
            }
            std::cmp::Ordering::Less => {
                self.shared
                    .len
                    .fetch_sub(keys.len() - new_len, Ordering::Relaxed);
            }
            std::cmp::Ordering::Equal => {}
        }

        // Invalidate the old gates and wake everyone blocked on them (both
        // ordinary waiters and the writers parked by `queue_closed`), then
        // retire the old instance. Every queued operation was folded into
        // the published instance above, so nothing is stranded.
        for gate in old.gates.iter() {
            {
                let mut st = gate.lock();
                st.invalidated = true;
                st.service_owned = false;
                st.queue_closed = false;
                st.mode = GateMode::Free;
                st.rebalance_epoch += 1;
                debug_assert!(st.pending.is_empty(), "queue grew while closed");
            }
            gate.notify_all();
        }
        self.shared.garbage.retire(&self.shared.registry, old);
        Stats::bump(&self.shared.stats.resizes);
    }

    /// Handles a delegated combining queue once its `t_delay` has elapsed:
    /// acquires the gate, drains the queue, applies deletions directly and
    /// merges insertions — locally if they fit, through a global rebalance
    /// otherwise. Every step happens while the gate (or the window the
    /// rebalance grows into) is owned; nothing is ever applied after a
    /// release.
    fn process_delegated_batch(&self, gate_id: usize) {
        let _pin = self.shared.pin();
        // SAFETY: pinned above.
        let inst = unsafe { self.shared.instance_ref() };
        if gate_id >= inst.num_gates() {
            return;
        }
        self.acquire_gate(inst, gate_id);
        let gate = &inst.gates[gate_id];
        let (ops, invalid) = {
            let mut st = gate.lock();
            let invalid = st.invalidated;
            st.delegated = false;
            (st.pending.drain(..).collect::<Vec<_>>(), invalid)
        };
        if invalid {
            // Unreachable: the master is the only thread that publishes
            // resizes, so the instance it just loaded cannot have been
            // invalidated under it — and writers never queue onto an
            // invalidated gate in the first place.
            debug_assert!(ops.is_empty(), "ops queued on an invalidated gate");
            self.release_gates(inst, gate_id, gate_id + 1);
            if !ops.is_empty() {
                Stats::add(&self.shared.stats.late_replays, ops.len() as u64);
                self.fold_into_current(ops);
            }
            return;
        }
        // Deletions are applied before insertions; reduce the FIFO queue to
        // the last operation per key first so that split cannot reorder
        // same-key operations.
        let ops = super::dedup_last_op_per_key(ops);
        if ops.is_empty() {
            self.release_gates(inst, gate_id, gate_id + 1);
            return;
        }
        Stats::bump(&self.shared.stats.batches_processed);
        match self.settle_gate_ops(inst, gate_id, ops) {
            QueueDrain::Stranded(ops) => {
                self.resize(inst, gate_id, gate_id + 1, Vec::new(), ops, false);
            }
            QueueDrain::Inserts(inserts) => {
                if inserts.is_empty() {
                    self.release_gates(inst, gate_id, gate_id + 1);
                    return;
                }
                // SAFETY: gate is service-owned.
                let chunk = unsafe { self.shared.chunk_mut(gate) };
                let gate_capacity = inst.gate_capacity();
                let fits_locally = {
                    let level = inst.gate_level;
                    let tau = inst.calibrator.upper_threshold(level);
                    (chunk.cardinality() + inserts.len()) as f64 <= tau * gate_capacity as f64
                        && chunk.cardinality() + inserts.len() <= gate_capacity
                };
                if fits_locally {
                    let added = chunk.merge_batch(&inserts);
                    if added > 0 {
                        self.shared.len.fetch_add(added, Ordering::Relaxed);
                    }
                    Stats::add(&self.shared.stats.inserts, added as u64);
                    self.release_gates(inst, gate_id, gate_id + 1);
                } else {
                    Stats::add(&self.shared.stats.inserts, inserts.len() as u64);
                    self.rebalance_from(inst, gate_id, 0, inserts);
                }
            }
        }
    }

    /// Checks whether the array has become under-full and shrinks it if so.
    fn maybe_downsize(&self) {
        let _pin = self.shared.pin();
        // SAFETY: pinned above.
        let inst = unsafe { self.shared.instance_ref() };
        if inst.num_gates() == 1 {
            return;
        }
        let len = self.shared.element_count();
        if (len as f64) >= self.shared.params.downsize_at * inst.capacity() as f64 {
            return;
        }
        // Own a gate as the starting point, then resize with a re-check.
        self.acquire_gate(inst, 0);
        self.resize(inst, 0, 1, Vec::new(), Vec::new(), true);
    }

    /// Folds operations whose home instance died under them into the
    /// *current* instance through a full owned rebuild — the only way to
    /// apply arbitrary keys without releasing ownership first. Unreachable
    /// in practice (the invariant asserted by its callers makes the input
    /// impossible); it exists so the impossible branch stays safe in release
    /// builds instead of replaying operations after the fact.
    fn fold_into_current(&self, ops: Vec<UpdateOp>) {
        let _pin = self.shared.pin();
        // SAFETY: pinned above.
        let inst = unsafe { self.shared.instance_ref() };
        self.acquire_gate(inst, 0);
        self.resize(inst, 0, 1, Vec::new(), ops, false);
    }
}

/// Sorts a batch by key and keeps only the last occurrence of each key.
pub(crate) fn normalise_batch(mut batch: Vec<(Key, Value)>) -> Vec<(Key, Value)> {
    if batch.is_empty() {
        return batch;
    }
    batch.sort_by_key(|&(k, _)| k);
    // Keep the *last* entry for every key: iterate backwards.
    let mut out: Vec<(Key, Value)> = Vec::with_capacity(batch.len());
    for &(k, v) in batch.iter().rev() {
        if out.last().map(|&(lk, _)| lk) != Some(k) {
            out.push((k, v));
        }
    }
    out.reverse();
    out
}

/// Drops every entry whose key appears in the sorted `deletes` list (the
/// delete half of the queued operations a resize folds into the rebuild).
fn filter_deleted(keys: Vec<Key>, values: Vec<Value>, deletes: &[Key]) -> (Vec<Key>, Vec<Value>) {
    if deletes.is_empty() {
        return (keys, values);
    }
    let mut out_k = Vec::with_capacity(keys.len());
    let mut out_v = Vec::with_capacity(values.len());
    let mut d = 0usize;
    for (k, v) in keys.into_iter().zip(values) {
        while d < deletes.len() && deletes[d] < k {
            d += 1;
        }
        if d < deletes.len() && deletes[d] == k {
            continue;
        }
        out_k.push(k);
        out_v.push(v);
    }
    (out_k, out_v)
}

/// Merges sorted `(keys, values)` with a sorted, deduplicated batch; batch
/// entries win on key collisions.
fn merge_sorted(keys: &[Key], values: &[Value], batch: &[(Key, Value)]) -> (Vec<Key>, Vec<Value>) {
    let mut out_k = Vec::with_capacity(keys.len() + batch.len());
    let mut out_v = Vec::with_capacity(keys.len() + batch.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < keys.len() || j < batch.len() {
        if j >= batch.len() || (i < keys.len() && keys[i] < batch[j].0) {
            out_k.push(keys[i]);
            out_v.push(values[i]);
            i += 1;
        } else if i >= keys.len() || keys[i] > batch[j].0 {
            out_k.push(batch[j].0);
            out_v.push(batch[j].1);
            j += 1;
        } else {
            out_k.push(batch[j].0);
            out_v.push(batch[j].1);
            i += 1;
            j += 1;
        }
    }
    (out_k, out_v)
}

fn worker_loop(rx: Receiver<WorkerMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Shutdown => break,
            WorkerMsg::Build(job) => {
                let gate_total: usize = job.targets.iter().sum();
                let mut stream = job.elements[job.elem_start..job.elem_start + gate_total]
                    .iter()
                    .copied();
                let chunk = ChunkData::from_stream(
                    job.targets.len(),
                    job.segment_capacity,
                    &job.targets,
                    &mut stream,
                );
                let _ = job.reply.send((job.out_idx, chunk));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalise_batch_sorts_and_dedupes_keeping_last() {
        let b = normalise_batch(vec![(5, 50), (1, 10), (5, 55), (3, 30), (1, 11)]);
        assert_eq!(b, vec![(1, 11), (3, 30), (5, 55)]);
        assert!(normalise_batch(vec![]).is_empty());
    }

    #[test]
    fn merge_sorted_upserts() {
        let (k, v) = merge_sorted(&[1, 3, 5], &[10, 30, 50], &[(2, 20), (3, 33), (9, 90)]);
        assert_eq!(k, vec![1, 2, 3, 5, 9]);
        assert_eq!(v, vec![10, 20, 33, 50, 90]);
    }

    #[test]
    fn merge_sorted_with_empty_sides() {
        let (k, v) = merge_sorted(&[], &[], &[(1, 1)]);
        assert_eq!(k, vec![1]);
        assert_eq!(v, vec![1]);
        let (k, v) = merge_sorted(&[1, 2], &[10, 20], &[]);
        assert_eq!(k, vec![1, 2]);
        assert_eq!(v, vec![10, 20]);
    }

    #[test]
    fn merge_window_merges_chunks_and_batch() {
        let mut c1 = ChunkData::new(2, 4);
        for k in [1i64, 3, 5] {
            c1.try_insert(k, k * 10);
        }
        let mut c2 = ChunkData::new(2, 4);
        for k in [7i64, 9] {
            c2.try_insert(k, k * 10);
        }
        let merged = merge_window(&[&c1, &c2], vec![(4, 400), (7, 777)]);
        assert_eq!(
            merged,
            vec![(1, 10), (3, 30), (4, 400), (5, 50), (7, 777), (9, 90)]
        );
        assert_eq!(merge_window(&[&c1], vec![]).len(), 3);
    }
}
