//! State shared between the client-facing [`super::ConcurrentPma`] handle and
//! the rebalancer service threads.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::params::PmaParams;
use crate::stats::Stats;

use super::chunk::ChunkData;
use super::epoch::{EpochGuard, EpochRegistry, GarbageBin};
use super::gate::Gate;
use super::instance::PmaInstance;
use super::version::CowGen;

/// Everything the clients, the rebalancer master and the workers share.
pub(crate) struct Shared {
    /// Immutable configuration.
    pub params: PmaParams,
    /// The single entry pointer to the current instance (paper section 3.4).
    pub instance: AtomicPtr<PmaInstance>,
    /// Number of elements currently stored (maintained by whoever applies an
    /// update).
    pub len: AtomicUsize,
    /// Operation counters.
    pub stats: Stats,
    /// Epoch registry protecting retired instances.
    pub registry: EpochRegistry,
    /// Retired instances awaiting reclamation.
    pub garbage: GarbageBin<Box<PmaInstance>>,
    /// Write-generation counter and snapshot pin set for chunk-level
    /// copy-on-write versioning. `Arc` so [`super::version::FrozenSnapshot`]s
    /// can outlive the map handle.
    pub cow: Arc<CowGen>,
}

impl Shared {
    /// Creates the shared state with an empty single-gate instance.
    pub fn new(params: PmaParams) -> Self {
        let instance = Box::new(PmaInstance::empty(&params));
        Self::with_instance(params, instance, 0)
    }

    /// Creates the shared state around a pre-built instance holding `len`
    /// elements (the bulk-load construction path).
    pub fn with_instance(params: PmaParams, instance: Box<PmaInstance>, len: usize) -> Self {
        Self {
            params,
            instance: AtomicPtr::new(Box::into_raw(instance)),
            len: AtomicUsize::new(len),
            stats: Stats::new(),
            registry: EpochRegistry::new(),
            garbage: GarbageBin::new(),
            cow: Arc::new(CowGen::new()),
        }
    }

    /// Exclusive access to a gate's chunk for in-place mutation, copying the
    /// payload first if a frozen snapshot still holds the current version
    /// (and counting the copy in `stats.cow_copies`).
    ///
    /// # Safety
    /// Same contract as [`Gate::chunk_mut_cow`]: the caller must hold the
    /// gate's latch in an exclusive mode (`Write`/`Rebalance`) or otherwise
    /// own the gate (service-owned during a window claim).
    #[inline]
    #[allow(clippy::mut_from_ref)] // exclusivity comes from the gate latch, not the borrow
    pub unsafe fn chunk_mut<'a>(&self, gate: &'a Gate) -> &'a mut ChunkData {
        let (chunk, copied) = gate.chunk_mut_cow(self.cow.current());
        if copied {
            Stats::bump(&self.stats.cow_copies);
        }
        chunk
    }

    /// Enters an epoch-protected critical section.
    #[inline]
    pub fn pin(&self) -> EpochGuard<'_> {
        self.registry.pin()
    }

    /// Dereferences the current instance pointer.
    ///
    /// # Safety
    /// The caller must hold an [`EpochGuard`] obtained from [`Shared::pin`]
    /// *before* loading, and must not use the returned reference after
    /// dropping that guard: the instance may be retired and freed as soon as
    /// no pre-retirement pin remains.
    #[inline]
    pub unsafe fn instance_ref(&self) -> &PmaInstance {
        &*self.instance.load(Ordering::Acquire)
    }

    /// Publishes `new` as the current instance and returns the previous one
    /// for retirement. Only the rebalancer master calls this (resizes are
    /// serialised through it).
    pub fn publish_instance(&self, new: Box<PmaInstance>) -> Box<PmaInstance> {
        let old = self.instance.swap(Box::into_raw(new), Ordering::AcqRel);
        // SAFETY: `old` was produced by `Box::into_raw` in `new()` or a
        // previous `publish_instance` call and has not been freed: retirement
        // goes through the garbage bin, and this method returns before the
        // caller retires it.
        unsafe { Box::from_raw(old) }
    }

    /// Number of stored elements.
    #[inline]
    pub fn element_count(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        // No client can be active once the last Arc<Shared> is dropped.
        let ptr = self.instance.load(Ordering::Acquire);
        if !ptr.is_null() {
            // SAFETY: the pointer was created by Box::into_raw and ownership
            // was never transferred elsewhere.
            unsafe { drop(Box::from_raw(ptr)) };
        }
        self.garbage.clear();
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("len", &self.element_count())
            .field("params", &self.params)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_shared_has_empty_single_gate_instance() {
        let shared = Shared::new(PmaParams::small());
        let _pin = shared.pin();
        // SAFETY: pinned above.
        let inst = unsafe { shared.instance_ref() };
        assert_eq!(inst.num_gates(), 1);
        assert_eq!(shared.element_count(), 0);
    }

    #[test]
    fn publish_instance_swaps_and_returns_old() {
        let shared = Shared::new(PmaParams::small());
        let new_inst = Box::new(PmaInstance::from_sorted(
            &[1, 2, 3],
            &[10, 20, 30],
            1,
            &PmaParams::small(),
        ));
        let old = shared.publish_instance(new_inst);
        assert_eq!(old.num_gates(), 1);
        let _pin = shared.pin();
        let inst = unsafe { shared.instance_ref() };
        // SAFETY (test): single-threaded access to the gate's chunk.
        let chunk = unsafe { inst.gates[0].chunk() };
        assert_eq!(chunk.cardinality(), 3);
        // Old instance can be retired through the garbage bin.
        shared.garbage.retire(&shared.registry, old);
        assert_eq!(shared.garbage.len(), 1);
    }
}
