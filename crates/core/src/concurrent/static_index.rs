//! The static index over the gates (paper section 3.2).
//!
//! A small static B+-tree whose indexed elements are the gates, with each
//! gate's *minimum fence key* acting as its separator key. The number of
//! separators only changes when the whole sparse array is resized (the index
//! is then rebuilt from scratch), but the separator *values* change during
//! rebalances.
//!
//! The tree is stored without pointers: every level is a dense,
//! cache-line-aligned array ([`simd::AlignedAtomicKeys`]) and a node's
//! children are located by pure arithmetic. A node's span is searched with
//! the vectorised counting kernel: entries are snapshotted with relaxed
//! loads into a stack buffer and counted branchlessly (see
//! [`simd::count_le_atomic`]). Updating the separator of a gate touches the
//! leaf entry and, only when the gate is the first child of its ancestors,
//! the corresponding ancestor entries — an `O(1)` operation in the common
//! case.
//!
//! Traversals are deliberately unsynchronised: a reader may observe a stale
//! separator and land on the wrong gate. That is fine — the caller validates
//! the gate's fence keys after acquiring its latch and walks to a neighbour
//! if the check fails, exactly as described in the paper.

use std::sync::atomic::Ordering;

use pma_common::{simd, Key};

/// Pointer-free static B+-tree over the gates' separator keys.
pub struct StaticIndex {
    fanout: usize,
    num_gates: usize,
    /// `levels[0]` holds one separator per gate; `levels[l][i]` summarises the
    /// children `levels[l-1][i * fanout ..]` by their first (minimum) entry.
    /// The last level always has at most `fanout` entries.
    levels: Vec<simd::AlignedAtomicKeys>,
}

impl std::fmt::Debug for StaticIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticIndex")
            .field("fanout", &self.fanout)
            .field("num_gates", &self.num_gates)
            .field("height", &self.levels.len())
            .finish()
    }
}

impl StaticIndex {
    /// Builds the index from the separator key (minimum fence key) of every
    /// gate, in gate order.
    pub fn new(fanout: usize, separators: &[Key]) -> Self {
        assert!(fanout >= 2, "index fanout must be at least 2");
        assert!(!separators.is_empty(), "at least one gate is required");
        let mut levels: Vec<simd::AlignedAtomicKeys> = Vec::new();
        levels.push(simd::AlignedAtomicKeys::from_slice(separators));
        while levels.last().unwrap().len() > fanout {
            let child = levels.last().unwrap();
            let parent: Vec<Key> = child
                .as_slice()
                .chunks(fanout)
                .map(|group| group[0].load(Ordering::Relaxed))
                .collect();
            levels.push(simd::AlignedAtomicKeys::from_slice(&parent));
        }
        Self {
            fanout,
            num_gates: separators.len(),
            levels,
        }
    }

    /// Number of indexed gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// Number of levels of the tree (1 = a single leaf level).
    #[inline]
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Within `[start, end)` of `level`, index of the last entry `<= key`,
    /// or `start` when every entry is greater.
    #[inline]
    fn scan(&self, level: usize, start: usize, end: usize, key: Key) -> usize {
        let span = &self.levels[level].as_slice()[start..end];
        start + simd::count_le_atomic(span, key).saturating_sub(1)
    }

    /// Returns the gate that *probably* covers `key`. The result must be
    /// validated against the gate's fence keys: concurrent separator updates
    /// may make it stale by a few gates.
    pub fn find_gate(&self, key: Key) -> usize {
        let top = self.levels.len() - 1;
        let mut idx = self.scan(top, 0, self.levels[top].len(), key);
        for level in (0..top).rev() {
            let start = idx * self.fanout;
            // Hint the child node's cache line in before scanning it.
            simd::prefetch_read(self.levels[level].as_slice()[start].as_ptr());
            let end = (start + self.fanout).min(self.levels[level].len());
            idx = self.scan(level, start, end, key);
        }
        idx
    }

    /// Updates the separator key of `gate`. Requires the caller to hold the
    /// gate's latch exclusively (paper section 3.2); readers racing with this
    /// update simply observe one of the two values.
    pub fn update_separator(&self, gate: usize, key: Key) {
        debug_assert!(gate < self.num_gates);
        self.levels[0].as_slice()[gate].store(key, Ordering::Release);
        let mut idx = gate;
        let mut level = 0;
        while level + 1 < self.levels.len() && idx.is_multiple_of(self.fanout) {
            idx /= self.fanout;
            level += 1;
            self.levels[level].as_slice()[idx].store(key, Ordering::Release);
        }
    }

    /// Current separator of `gate` (test hook).
    pub fn separator(&self, gate: usize) -> Key {
        self.levels[0].as_slice()[gate].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seps(n: usize, stride: i64) -> Vec<Key> {
        (0..n as i64).map(|i| i * stride).collect()
    }

    #[test]
    fn single_gate_index() {
        let idx = StaticIndex::new(8, &[i64::MIN]);
        assert_eq!(idx.height(), 1);
        assert_eq!(idx.find_gate(-100), 0);
        assert_eq!(idx.find_gate(0), 0);
        assert_eq!(idx.find_gate(i64::MAX), 0);
    }

    #[test]
    fn flat_index_routes_by_separator() {
        // Gates covering [0,10), [10,20), [20,30), [30,..).
        let idx = StaticIndex::new(8, &seps(4, 10));
        assert_eq!(idx.find_gate(-5), 0, "keys below the first separator");
        assert_eq!(idx.find_gate(0), 0);
        assert_eq!(idx.find_gate(9), 0);
        assert_eq!(idx.find_gate(10), 1);
        assert_eq!(idx.find_gate(29), 2);
        assert_eq!(idx.find_gate(30), 3);
        assert_eq!(idx.find_gate(1_000_000), 3);
    }

    #[test]
    fn multi_level_index_matches_linear_search() {
        let separators = seps(1000, 7);
        let idx = StaticIndex::new(8, &separators);
        assert!(idx.height() > 2);
        for probe in [-1i64, 0, 1, 6, 7, 35, 333, 3500, 6993, 7000, 100_000] {
            let expected = match separators.binary_search(&probe) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            assert_eq!(idx.find_gate(probe), expected, "probe {probe}");
        }
    }

    #[test]
    fn exhaustive_small_index() {
        let separators = seps(37, 3);
        let idx = StaticIndex::new(4, &separators);
        for probe in -3..120i64 {
            let expected = match separators.binary_search(&probe) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            assert_eq!(idx.find_gate(probe), expected, "probe {probe}");
        }
    }

    #[test]
    fn update_separator_changes_routing() {
        let idx = StaticIndex::new(4, &seps(8, 10));
        assert_eq!(idx.find_gate(15), 1);
        // Gate 2 now starts at 14 instead of 20.
        idx.update_separator(2, 14);
        assert_eq!(idx.separator(2), 14);
        assert_eq!(idx.find_gate(15), 2);
        assert_eq!(idx.find_gate(13), 1);
    }

    #[test]
    fn update_separator_of_first_child_propagates() {
        // 16 gates with fanout 4: updating gate 4 (first child of its parent)
        // must update the parent so upper-level routing stays consistent.
        let idx = StaticIndex::new(4, &seps(16, 10));
        idx.update_separator(4, 35);
        assert_eq!(idx.find_gate(34), 3);
        assert_eq!(idx.find_gate(35), 4);
        assert_eq!(idx.find_gate(39), 4);
        assert_eq!(idx.find_gate(40), 4, "old separator no longer routes to 4");
        assert_eq!(idx.find_gate(50), 5);
    }

    #[test]
    fn keys_below_every_separator_route_to_gate_zero() {
        let idx = StaticIndex::new(4, &seps(16, 10));
        assert_eq!(idx.find_gate(i64::MIN), 0);
    }

    #[test]
    #[should_panic(expected = "at least one gate")]
    fn empty_separator_list_panics() {
        let _ = StaticIndex::new(4, &[]);
    }
}
