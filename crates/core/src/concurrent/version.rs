//! Chunk-generation bookkeeping and the [`FrozenSnapshot`] read view.
//!
//! A [`CowGen`] tracks the global *write generation* of one PMA: every
//! structural install (a redistribute's pointer swaps, a resize's fresh
//! instance) advances it, and every chunk version carries the generation that
//! installed it ([`super::gate::ChunkVersion::gen`]). Snapshots *pin* the
//! generation current at freeze time; the pin set drives the
//! `pinned_generations` / `snapshot_lag` gauges.
//!
//! The generation stamps are observability metadata. Snapshot *correctness*
//! is carried by `Arc` reference counting alone: a snapshot clones each
//! gate's `Arc<ChunkVersion>` under a shared latch, and every exclusive
//! mutation goes through [`super::gate::Gate::chunk_mut_cow`], which copies
//! the payload when the version is shared. A snapshot's captured versions are
//! therefore immutable for as long as it holds them — including across
//! resizes, whose retired instances drop their gate `Arc`s while the
//! snapshot's clones keep the payloads alive.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use pma_common::{FrozenView, Key, ScanStats, Value, KEY_MAX, KEY_MIN};

use super::gate::ChunkVersion;

/// The global write-generation counter of one PMA, plus the set of
/// generations pinned by live [`FrozenSnapshot`]s.
#[derive(Debug, Default)]
pub struct CowGen {
    /// Monotonic generation, advanced by every structural install.
    write_gen: AtomicU64,
    /// `generation -> live snapshot count` for every pinned generation.
    pinned: Mutex<BTreeMap<u64, usize>>,
}

impl CowGen {
    /// Creates a tracker at generation 0 with nothing pinned.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current write generation.
    #[inline]
    pub fn current(&self) -> u64 {
        self.write_gen.load(Ordering::Relaxed)
    }

    /// Advances the write generation (a structural install happened) and
    /// returns the new value, used to stamp the freshly installed chunks.
    #[inline]
    pub fn advance(&self) -> u64 {
        self.write_gen.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Pins the current generation for a new snapshot and returns it.
    pub fn pin(&self) -> u64 {
        let gen = self.current();
        *self.pinned.lock().entry(gen).or_insert(0) += 1;
        gen
    }

    /// Releases one snapshot's pin on `gen`.
    pub fn unpin(&self, gen: u64) {
        let mut pinned = self.pinned.lock();
        match pinned.get_mut(&gen) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                pinned.remove(&gen);
            }
            None => debug_assert!(false, "unpin of generation {gen} that was never pinned"),
        }
    }

    /// Number of distinct generations currently pinned by live snapshots.
    pub fn pinned_generations(&self) -> u64 {
        self.pinned.lock().len() as u64
    }

    /// How far the oldest pinned generation lags behind the current write
    /// generation (0 when nothing is pinned).
    pub fn lag(&self) -> u64 {
        let oldest = self.pinned.lock().keys().next().copied();
        match oldest {
            Some(gen) => self.current().saturating_sub(gen),
            None => 0,
        }
    }
}

/// Checks that the captured `(fence_lo, fence_hi)` pieces tile the whole key
/// space `[KEY_MIN, KEY_MAX]` exactly: non-degenerate pieces must be
/// contiguous in order, and degenerate pieces (`lo > hi`, the marker
/// [`super::instance::compute_window_fences`] gives empty gates) must hold
/// empty chunks. A failure means fences moved between two per-gate captures
/// (a concurrent redistribute), so the capture does not describe any single
/// point in time and must be retried.
pub(crate) fn fences_tile_key_space(pieces: &[(Key, Key, Arc<ChunkVersion>)]) -> bool {
    let mut expect = KEY_MIN as i128;
    for (lo, hi, version) in pieces {
        if lo > hi {
            if version.data.cardinality() != 0 {
                return false;
            }
            continue;
        }
        if (*lo as i128) != expect {
            return false;
        }
        expect = *hi as i128 + 1;
    }
    expect == KEY_MAX as i128 + 1
}

/// An O(1) point-in-time snapshot of one [`super::ConcurrentPma`]: the chunk
/// versions of every gate, captured under shared latches, plus the fences
/// routing keys to them.
///
/// Reads are repeatable: the captured versions are immutable (writers copy
/// before mutating any version a snapshot still holds), so every `get`/scan
/// against the same snapshot returns the same answer regardless of concurrent
/// updates, rebalances or resizes. The snapshot reflects the map's *settled*
/// state at freeze time — operations still travelling through combining
/// queues are invisible to it, exactly as they are to live `get`/`len`.
pub struct FrozenSnapshot {
    /// Non-degenerate captured pieces, ascending and disjoint by fences.
    /// Every key of a piece's chunk lies within its fences.
    pieces: Vec<(Key, Key, Arc<ChunkVersion>)>,
    /// Total cardinality across the pieces.
    len: usize,
    /// The write generation pinned by this snapshot.
    gen: u64,
    /// The owning PMA's generation tracker, for `Drop`-time unpinning. An
    /// `Arc` so the snapshot may outlive the `ConcurrentPma` handle.
    cow: Arc<CowGen>,
}

impl FrozenSnapshot {
    /// Builds a snapshot from validated captured pieces, pinning the current
    /// write generation. Degenerate pieces (empty gates) are dropped — they
    /// cover no key.
    pub(crate) fn capture(pieces: Vec<(Key, Key, Arc<ChunkVersion>)>, cow: Arc<CowGen>) -> Self {
        debug_assert!(fences_tile_key_space(&pieces));
        let pieces: Vec<_> = pieces.into_iter().filter(|&(lo, hi, _)| lo <= hi).collect();
        let len = pieces.iter().map(|(_, _, v)| v.data.cardinality()).sum();
        let gen = cow.pin();
        Self {
            pieces,
            len,
            gen,
            cow,
        }
    }

    /// The write generation this snapshot pinned at freeze time.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Looks up `key` in the frozen state.
    pub fn get(&self, key: Key) -> Option<Value> {
        let idx = self
            .pieces
            .binary_search_by(|&(lo, hi, _)| {
                if hi < key {
                    std::cmp::Ordering::Less
                } else if lo > key {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()?;
        self.pieces[idx].2.data.get(key)
    }

    /// Number of elements in the frozen state.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the frozen state is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Visits every frozen element with key in `[lo, hi]` (inclusive) in
    /// ascending key order.
    pub fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        if lo > hi {
            return;
        }
        let start = self
            .pieces
            .partition_point(|&(_, piece_hi, _)| piece_hi < lo);
        for (piece_lo, _, version) in &self.pieces[start..] {
            if *piece_lo > hi {
                break;
            }
            if !version.data.range(lo, hi, visitor) {
                break;
            }
        }
    }

    /// Scans the whole frozen state, folding into [`ScanStats`] with the
    /// chunk-at-a-time kernel (cheaper than driving `range` per element).
    pub fn scan_all(&self) -> ScanStats {
        let mut stats = ScanStats::default();
        for (_, _, version) in &self.pieces {
            version.data.scan(&mut stats);
        }
        stats
    }
}

impl FrozenView for FrozenSnapshot {
    fn get(&self, key: Key) -> Option<Value> {
        FrozenSnapshot::get(self, key)
    }

    fn len(&self) -> usize {
        FrozenSnapshot::len(self)
    }

    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        FrozenSnapshot::range(self, lo, hi, visitor)
    }

    fn scan_all(&self) -> ScanStats {
        FrozenSnapshot::scan_all(self)
    }
}

impl Drop for FrozenSnapshot {
    fn drop(&mut self) {
        self.cow.unpin(self.gen);
    }
}

impl std::fmt::Debug for FrozenSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenSnapshot")
            .field("len", &self.len)
            .field("gen", &self.gen)
            .field("pieces", &self.pieces.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::chunk::ChunkData;
    use super::*;

    fn version_of(items: &[(Key, Value)], gen: u64) -> Arc<ChunkVersion> {
        let mut chunk = ChunkData::new(2, 8);
        for &(k, v) in items {
            chunk.try_insert(k, v);
        }
        Arc::new(ChunkVersion { gen, data: chunk })
    }

    #[test]
    fn cowgen_pin_unpin_and_lag() {
        let cow = CowGen::new();
        assert_eq!(cow.current(), 0);
        assert_eq!(cow.lag(), 0);
        assert_eq!(cow.pinned_generations(), 0);

        let g0 = cow.pin();
        assert_eq!(g0, 0);
        assert_eq!(cow.pinned_generations(), 1);
        assert_eq!(cow.lag(), 0);

        assert_eq!(cow.advance(), 1);
        assert_eq!(cow.advance(), 2);
        assert_eq!(cow.lag(), 2, "oldest pin is 2 generations behind");

        let g2 = cow.pin();
        assert_eq!(g2, 2);
        assert_eq!(cow.pinned_generations(), 2);

        // Two pins of the same generation collapse to one entry.
        let g2b = cow.pin();
        assert_eq!(g2b, 2);
        assert_eq!(cow.pinned_generations(), 2);

        cow.unpin(g0);
        assert_eq!(cow.lag(), 0, "oldest remaining pin is current");
        cow.unpin(g2);
        assert_eq!(cow.pinned_generations(), 1, "one pin of gen 2 remains");
        cow.unpin(g2b);
        assert_eq!(cow.pinned_generations(), 0);
        assert_eq!(cow.lag(), 0);
    }

    #[test]
    fn fence_tiling_validation() {
        let full = version_of(&[(5, 50)], 0);
        let empty = version_of(&[], 0);

        // Exact tiling, with a degenerate empty piece in the middle.
        assert!(fences_tile_key_space(&[
            (KEY_MIN, 9, Arc::clone(&full)),
            (10, 5, Arc::clone(&empty)),
            (10, KEY_MAX, Arc::clone(&full)),
        ]));
        // A gap between pieces fails.
        assert!(!fences_tile_key_space(&[
            (KEY_MIN, 9, Arc::clone(&full)),
            (11, KEY_MAX, Arc::clone(&full)),
        ]));
        // An overlap fails.
        assert!(!fences_tile_key_space(&[
            (KEY_MIN, 9, Arc::clone(&full)),
            (9, KEY_MAX, Arc::clone(&full)),
        ]));
        // Not reaching KEY_MAX fails.
        assert!(!fences_tile_key_space(&[(KEY_MIN, 9, Arc::clone(&full))]));
        // A degenerate piece with a non-empty chunk fails.
        assert!(!fences_tile_key_space(&[
            (KEY_MIN, KEY_MAX, Arc::clone(&empty)),
            (10, 5, full),
        ]));
    }

    #[test]
    fn frozen_snapshot_reads_and_pins() {
        let cow = Arc::new(CowGen::new());
        cow.advance();
        let pieces = vec![
            (KEY_MIN, 9, version_of(&[(1, 10), (3, 30)], 1)),
            (10, 5, version_of(&[], 0)),
            (10, KEY_MAX, version_of(&[(10, 100), (20, 200)], 1)),
        ];
        let snap = FrozenSnapshot::capture(pieces, Arc::clone(&cow));
        assert_eq!(snap.generation(), 1);
        assert_eq!(cow.pinned_generations(), 1);
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());

        assert_eq!(snap.get(1), Some(10));
        assert_eq!(snap.get(10), Some(100));
        assert_eq!(snap.get(2), None);
        assert_eq!(snap.get(KEY_MAX), None);

        let mut seen = Vec::new();
        snap.range(2, 10, &mut |k, v| seen.push((k, v)));
        assert_eq!(seen, vec![(3, 30), (10, 100)]);

        let stats = snap.scan_all();
        assert_eq!(stats.count, 4);
        assert_eq!(stats.key_sum, 1 + 3 + 10 + 20);

        // The trait default collect goes through `range`.
        let view: &dyn FrozenView = &snap;
        assert_eq!(view.collect_range(3, 10), vec![(3, 30), (10, 100)]);
        assert_eq!(view.scan_range(Key::MIN, Key::MAX).count, 4);

        drop(snap);
        assert_eq!(cow.pinned_generations(), 0, "drop unpins");
    }

    #[test]
    fn frozen_snapshot_is_immune_to_source_chunk_cow() {
        // Mimic the writer protocol: build a gate, freeze its version, then
        // mutate through the CoW accessor and verify the frozen piece.
        let gate = super::super::gate::Gate::new(0, 1, 8);
        {
            let mut st = gate.lock();
            st.mode = super::super::gate::GateMode::Write;
        }
        // SAFETY: exclusive latch held as above; single-threaded test.
        unsafe {
            gate.chunk_mut_cow(0).0.try_insert(1, 10);
        }
        let cow = Arc::new(CowGen::new());
        // SAFETY: latch still held.
        let version = unsafe { gate.chunk_version() };
        let snap = FrozenSnapshot::capture(vec![(KEY_MIN, KEY_MAX, version)], Arc::clone(&cow));
        // SAFETY: latch still held.
        unsafe {
            let (chunk, copied) = gate.chunk_mut_cow(1);
            assert!(copied);
            chunk.try_insert(2, 20);
        }
        gate.release_write();
        assert_eq!(snap.get(2), None, "snapshot must not see the later write");
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.get(1), Some(10));
    }
}
