//! # Packed Memory Arrays — sequential and concurrent
//!
//! This crate implements the data structures of the paper *Fast Concurrent
//! Reads and Updates with PMAs* (Dean De Leo and Peter Boncz, GRADES-NDA
//! 2019):
//!
//! * [`sequential::PackedMemoryArray`] — the classic single-threaded PMA
//!   (paper section 2): a sorted array with gaps, a calibrator tree with
//!   interpolated density thresholds, traditional and adaptive rebalancing,
//!   and resizing.
//! * [`concurrent::ConcurrentPma`] — the paper's contribution (section 3): the
//!   PMA is split into chunks protected by *gates*, point operations hold at
//!   most one gate latch, a *static index* routes lookups to gates in
//!   `O(log_B N)`, a master/worker *rebalancer service* executes rebalances
//!   that span multiple gates, resizes are published through a single entry
//!   pointer and reclaimed with epoch-based garbage collection, and contended
//!   writers combine their updates asynchronously (one-by-one or batched with
//!   a `t_delay` throttle).
//!
//! Both PMAs additionally ship a bulk-load constructor (`from_sorted`) that
//! presizes the array from the calibrated density bounds
//! ([`params::PmaParams::presized_segments`]) and lays the sorted input out
//! in one pass with zero rebalances — see `docs/ARCHITECTURE.md` for the full
//! map from paper sections to modules.
//!
//! ## Quick start
//!
//! ```
//! use pma_core::concurrent::ConcurrentPma;
//! use pma_core::params::PmaParams;
//! use pma_common::ConcurrentMap;
//!
//! let pma = ConcurrentPma::new(PmaParams::small()).unwrap();
//! pma.insert(10, 100);
//! pma.insert(20, 200);
//! assert_eq!(pma.get(10), Some(100));
//! let stats = pma.scan_all();
//! assert_eq!(stats.count, 2);
//! ```

#![warn(missing_docs)]

pub mod backends;
pub mod bytepma;
pub mod calibrator;
pub mod concurrent;
pub mod params;
pub mod sequential;
pub mod stats;

pub use backends::{register_backends, register_byte_backends};
pub use bytepma::{BytePma, BytePmaConfig};
pub use concurrent::delta::{DeltaLog, DeltaOp};
pub use concurrent::ConcurrentPma;
pub use params::{DensityThresholds, PmaParams, RebalancePolicy, UpdateMode};
pub use sequential::PackedMemoryArray;
pub use stats::{Stats, StatsSnapshot};
