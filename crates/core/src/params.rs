//! Configuration parameters of the Packed Memory Array.
//!
//! The defaults follow the configuration used in the paper's evaluation
//! (section 4): segments of 128 elements, gates of 8 segments, density
//! thresholds `rho_1 = 0 (relaxed), tau_1 = 1, rho_h = tau_h = 0.75`,
//! 8 rebalancer workers and batch processing with `t_delay = 100 ms`.

use std::time::Duration;

use pma_common::PmaError;

/// How updates that contend on the same gate are processed (paper section 3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Every writer waits for exclusive access to the gate; no combining.
    /// This is the "baseline" of Figure 4.
    Synchronous,
    /// A single writer is active per gate; contending writers append their
    /// operations to the active writer's queue, which drains them one by one,
    /// preserving order (so adaptive rebalancing stays effective).
    OneByOne,
    /// As `OneByOne`, but the queue owner merges the queued operations into a
    /// batch: deletions first, then one rebalance of the smallest window that
    /// fits all insertions. Windows larger than a gate are handed to the
    /// rebalancer, throttled so that at least `t_delay` elapses between
    /// consecutive global rebalances of the same gate.
    Batch {
        /// Minimum time between global rebalances of the same gate.
        t_delay: Duration,
    },
}

impl Default for UpdateMode {
    fn default() -> Self {
        // The paper's plots refer to the asynchronous PMA with batch
        // processing and t_delay = 100 ms.
        UpdateMode::Batch {
            t_delay: Duration::from_millis(100),
        }
    }
}

/// Which rebalancing policy distributes elements over a window (section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RebalancePolicy {
    /// All segments of the window receive the same number of elements.
    #[default]
    Traditional,
    /// Segments that recently absorbed many insertions receive fewer elements
    /// (more gaps), in anticipation of further skewed insertions (APMA,
    /// Bender & Hu 2007).
    Adaptive,
}

/// Density thresholds of the calibrator tree (section 2).
///
/// `rho_leaf`/`tau_leaf` apply at height 1 (single segments) and
/// `rho_root`/`tau_root` at the root; intermediate heights are linearly
/// interpolated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityThresholds {
    /// Lower density threshold for a single segment (`rho_1`).
    pub rho_leaf: f64,
    /// Upper density threshold for a single segment (`tau_1`).
    pub tau_leaf: f64,
    /// Lower density threshold for the whole array (`rho_h`).
    pub rho_root: f64,
    /// Upper density threshold for the whole array (`tau_h`).
    pub tau_root: f64,
}

impl Default for DensityThresholds {
    fn default() -> Self {
        // Paper section 4: rho_1 relaxed to 0, tau_1 = 1, rho_h = tau_h = 0.75.
        Self {
            rho_leaf: 0.0,
            tau_leaf: 1.0,
            rho_root: 0.75,
            tau_root: 0.75,
        }
    }
}

impl DensityThresholds {
    /// The strict textbook thresholds (`rho_1 = 0.5`) described in section 2,
    /// used by the sequential PMA tests to exercise lower-threshold
    /// rebalancing.
    pub fn strict() -> Self {
        Self {
            rho_leaf: 0.5,
            tau_leaf: 1.0,
            rho_root: 0.75,
            tau_root: 0.75,
        }
    }

    /// Validates the ordering constraint `0 <= rho_1 < rho_h <= tau_h < tau_1 <= 1`
    /// (with equality tolerated where the paper's own configuration uses it).
    pub fn validate(&self) -> Result<(), PmaError> {
        let ok = self.rho_leaf >= 0.0
            && self.rho_leaf <= self.rho_root
            && self.rho_root <= self.tau_root
            && self.tau_root <= self.tau_leaf
            && self.tau_leaf <= 1.0
            && self.tau_root > 0.0;
        if ok {
            Ok(())
        } else {
            Err(PmaError::invalid(
                "density_thresholds",
                format!(
                    "requires 0 <= rho_leaf <= rho_root <= tau_root <= tau_leaf <= 1, got {self:?}"
                ),
            ))
        }
    }
}

/// Full configuration of a (sequential or concurrent) PMA.
#[derive(Debug, Clone, PartialEq)]
pub struct PmaParams {
    /// Number of element slots per segment. Must be a power of two >= 4.
    /// Paper default: 128.
    pub segment_capacity: usize,
    /// Number of segments covered by one gate (one latch). Must be a power of
    /// two >= 1. Paper default: 8.
    pub segments_per_gate: usize,
    /// Density thresholds of the calibrator tree.
    pub thresholds: DensityThresholds,
    /// Number of worker threads in the rebalancer service. Paper default: 8.
    pub rebalancer_workers: usize,
    /// How contended updates are processed.
    pub update_mode: UpdateMode,
    /// Element-distribution policy used by rebalances.
    pub rebalance_policy: RebalancePolicy,
    /// Downsize the array when fewer than this fraction of slots are used.
    /// Paper default: 0.5.
    pub downsize_at: f64,
    /// Fanout of the static index nodes (separator keys per node).
    pub index_node_fanout: usize,
}

impl Default for PmaParams {
    fn default() -> Self {
        Self {
            segment_capacity: 128,
            segments_per_gate: 8,
            thresholds: DensityThresholds::default(),
            rebalancer_workers: 8,
            update_mode: UpdateMode::default(),
            rebalance_policy: RebalancePolicy::Traditional,
            downsize_at: 0.5,
            index_node_fanout: 8,
        }
    }
}

impl PmaParams {
    /// Parameters suitable for small unit tests: tiny segments and gates so
    /// that rebalances, global rebalances and resizes all trigger quickly.
    pub fn small() -> Self {
        Self {
            segment_capacity: 8,
            segments_per_gate: 2,
            rebalancer_workers: 2,
            ..Self::default()
        }
    }

    /// Synchronous-update variant of `self` (Figure 4 "Baseline").
    pub fn synchronous(mut self) -> Self {
        self.update_mode = UpdateMode::Synchronous;
        self
    }

    /// One-by-one asynchronous variant of `self` (Figure 4 "1by1").
    pub fn one_by_one(mut self) -> Self {
        self.update_mode = UpdateMode::OneByOne;
        self.rebalance_policy = RebalancePolicy::Adaptive;
        self
    }

    /// Batch asynchronous variant of `self` with the given delay (Figure 4
    /// "Batch ...ms").
    pub fn batched(mut self, t_delay: Duration) -> Self {
        self.update_mode = UpdateMode::Batch { t_delay };
        self
    }

    /// Number of element slots per gate chunk.
    #[inline]
    pub fn gate_capacity(&self) -> usize {
        self.segment_capacity * self.segments_per_gate
    }

    /// Number of segments (a power of two) a freshly built array should have
    /// to hold `n` elements at the calibrated target density.
    ///
    /// This is the capacity-planning rule shared by resizes (paper section
    /// 3.4) and the bulk-load constructors: the new capacity is
    /// `C' = 2 N / (rho_h + tau_h)`, i.e. the array lands halfway between its
    /// root density bounds, leaving equal headroom for growth and shrinkage
    /// before the next reconstruction. The result additionally guarantees
    ///
    /// * the root density does not exceed `tau_h` (no rebalance is pending
    ///   right after construction), and
    /// * every segment can keep at least one gap (`n <= segments * (B - 1)`),
    ///   so the first point insertion into any segment finds room.
    pub fn presized_segments(&self, n: usize) -> usize {
        let t = &self.thresholds;
        // Guard against degenerate threshold configurations, mirroring the
        // rebalancer's historical `.max(0.1)` on `rho_h + tau_h`.
        let target_density = ((t.rho_root + t.tau_root) / 2.0).max(0.05);
        let needed_slots = ((n as f64) / target_density).ceil() as usize;
        let mut segments = needed_slots
            .div_ceil(self.segment_capacity)
            .max(1)
            .next_power_of_two();
        while n > segments * (self.segment_capacity - 1)
            || n as f64 > t.tau_root * (segments * self.segment_capacity) as f64
        {
            segments *= 2;
        }
        segments
    }

    /// Number of gates (a power of two) a freshly built concurrent array
    /// should have to hold `n` elements — [`PmaParams::presized_segments`]
    /// rounded up to whole gates.
    pub fn presized_gates(&self, n: usize) -> usize {
        self.presized_segments(n)
            .div_ceil(self.segments_per_gate)
            .max(1)
            .next_power_of_two()
    }

    /// Validates every parameter, returning a descriptive error for the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), PmaError> {
        if !self.segment_capacity.is_power_of_two() || self.segment_capacity < 4 {
            return Err(PmaError::invalid(
                "segment_capacity",
                format!("must be a power of two >= 4, got {}", self.segment_capacity),
            ));
        }
        if !self.segments_per_gate.is_power_of_two() {
            return Err(PmaError::invalid(
                "segments_per_gate",
                format!("must be a power of two, got {}", self.segments_per_gate),
            ));
        }
        if self.rebalancer_workers == 0 {
            return Err(PmaError::invalid(
                "rebalancer_workers",
                "must be at least 1".to_string(),
            ));
        }
        if !(0.0..1.0).contains(&self.downsize_at) {
            return Err(PmaError::invalid(
                "downsize_at",
                format!("must be in [0, 1), got {}", self.downsize_at),
            ));
        }
        if self.index_node_fanout < 2 {
            return Err(PmaError::invalid(
                "index_node_fanout",
                format!("must be at least 2, got {}", self.index_node_fanout),
            ));
        }
        self.thresholds.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper_configuration() {
        let p = PmaParams::default();
        assert_eq!(p.segment_capacity, 128);
        assert_eq!(p.segments_per_gate, 8);
        assert_eq!(p.gate_capacity(), 1024);
        assert_eq!(p.rebalancer_workers, 8);
        assert_eq!(
            p.update_mode,
            UpdateMode::Batch {
                t_delay: Duration::from_millis(100)
            }
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn default_thresholds_match_paper() {
        let t = DensityThresholds::default();
        assert_eq!(t.rho_leaf, 0.0);
        assert_eq!(t.tau_leaf, 1.0);
        assert_eq!(t.rho_root, 0.75);
        assert_eq!(t.tau_root, 0.75);
        assert!(t.validate().is_ok());
        assert!(DensityThresholds::strict().validate().is_ok());
    }

    #[test]
    fn invalid_segment_capacity_is_rejected() {
        let p = PmaParams {
            segment_capacity: 100,
            ..PmaParams::default()
        };
        assert!(p.validate().is_err());
        let p = PmaParams {
            segment_capacity: 2,
            ..PmaParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn invalid_thresholds_are_rejected() {
        let t = DensityThresholds {
            rho_leaf: 0.9,
            tau_leaf: 1.0,
            rho_root: 0.5,
            tau_root: 0.75,
        };
        assert!(t.validate().is_err());
        let t = DensityThresholds {
            rho_leaf: 0.0,
            tau_leaf: 1.5,
            rho_root: 0.5,
            tau_root: 0.75,
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn invalid_workers_and_fanout_rejected() {
        let p = PmaParams {
            rebalancer_workers: 0,
            ..PmaParams::default()
        };
        assert!(p.validate().is_err());
        let p = PmaParams {
            index_node_fanout: 1,
            ..PmaParams::default()
        };
        assert!(p.validate().is_err());
        let p = PmaParams {
            downsize_at: 1.0,
            ..PmaParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn presized_segments_hit_the_target_density_band() {
        let p = PmaParams::default(); // rho_h = tau_h = 0.75, B = 128
        assert_eq!(p.presized_segments(0), 1);
        assert_eq!(p.presized_gates(0), 1);
        for n in [1usize, 100, 1_000, 100_000, 1_000_000] {
            let segments = p.presized_segments(n);
            assert!(segments.is_power_of_two());
            let capacity = segments * p.segment_capacity;
            let density = n as f64 / capacity as f64;
            assert!(
                density <= p.thresholds.tau_root,
                "n={n}: density {density} exceeds tau_root"
            );
            assert!(n <= segments * (p.segment_capacity - 1), "n={n}: no gaps");
            let gates = p.presized_gates(n);
            assert!(gates.is_power_of_two());
            assert!(gates * p.segments_per_gate >= segments);
        }
    }

    #[test]
    fn presized_gates_leave_headroom_but_not_too_much() {
        let p = PmaParams::small();
        // Minimality: half as many gates must violate a constraint (except at
        // the single-gate floor).
        for n in [10usize, 50, 500, 5_000] {
            let gates = p.presized_gates(n);
            if gates > 1 {
                let half_capacity = (gates / 2) * p.gate_capacity();
                let density = n as f64 / half_capacity as f64;
                let target = (p.thresholds.rho_root + p.thresholds.tau_root) / 2.0;
                assert!(
                    density > target
                        || n > (gates / 2) * p.segments_per_gate * (p.segment_capacity - 1),
                    "n={n}: {gates} gates is not minimal"
                );
            }
        }
    }

    #[test]
    fn mode_builders() {
        let p = PmaParams::small().synchronous();
        assert_eq!(p.update_mode, UpdateMode::Synchronous);
        let p = PmaParams::small().one_by_one();
        assert_eq!(p.update_mode, UpdateMode::OneByOne);
        assert_eq!(p.rebalance_policy, RebalancePolicy::Adaptive);
        let p = PmaParams::small().batched(Duration::from_millis(5));
        assert_eq!(
            p.update_mode,
            UpdateMode::Batch {
                t_delay: Duration::from_millis(5)
            }
        );
    }
}
