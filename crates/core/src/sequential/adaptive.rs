//! Adaptive rebalancing predictor (paper section 2, "Adaptive rebalancing";
//! Bender & Hu 2007).
//!
//! The predictor observes where insertions land. During a rebalance it skews
//! the redistribution so that segments which recently absorbed many
//! insertions are left with more gaps (fewer elements), anticipating that the
//! skewed insertion pattern will continue. Deletions symmetrically leave more
//! elements where deletions are expected.

/// Exponentially-decayed per-segment activity counters.
#[derive(Debug, Clone)]
pub struct AdaptivePredictor {
    /// Net recent activity per segment: positive = insertions, negative =
    /// deletions. Decayed on every rebalance so old history fades.
    activity: Vec<f64>,
    /// Decay factor applied to the counters of a window when it is rebalanced.
    decay: f64,
}

impl AdaptivePredictor {
    /// Creates a predictor for `num_segments` segments.
    pub fn new(num_segments: usize) -> Self {
        Self {
            activity: vec![0.0; num_segments],
            decay: 0.5,
        }
    }

    /// Number of segments currently tracked.
    pub fn num_segments(&self) -> usize {
        self.activity.len()
    }

    /// Resets the predictor for a new segment count (after a resize).
    pub fn reset(&mut self, num_segments: usize) {
        self.activity.clear();
        self.activity.resize(num_segments, 0.0);
    }

    /// Records an insertion into `segment`.
    #[inline]
    pub fn record_insert(&mut self, segment: usize) {
        if let Some(a) = self.activity.get_mut(segment) {
            *a += 1.0;
        }
    }

    /// Records a deletion from `segment`.
    #[inline]
    pub fn record_delete(&mut self, segment: usize) {
        if let Some(a) = self.activity.get_mut(segment) {
            *a -= 1.0;
        }
    }

    /// Raw activity of a segment (test hook).
    pub fn activity(&self, segment: usize) -> f64 {
        self.activity.get(segment).copied().unwrap_or(0.0)
    }

    /// Computes how many of `total` elements each segment of the window
    /// `[start, start + count)` should receive, given per-segment capacity
    /// `capacity`. The sum of the returned targets equals `total` and no
    /// target exceeds `capacity`.
    ///
    /// Segments with higher insertion activity receive fewer elements (more
    /// gaps); segments with higher deletion activity receive more. With no
    /// recorded activity this degenerates to the traditional even split.
    pub fn targets(
        &mut self,
        start: usize,
        count: usize,
        total: usize,
        capacity: usize,
    ) -> Vec<usize> {
        assert!(count > 0);
        assert!(total <= count * capacity, "window cannot hold the elements");
        let window = &self.activity[start..start + count];
        // Weight of a segment = how many elements it *wants*: hot insertion
        // segments want few elements. Map activity a to weight 1 / (1 + max(a, 0))
        // + max(-a, 0) so deletions increase the weight.
        let weights: Vec<f64> = window
            .iter()
            .map(|&a| {
                let insert_pressure = a.max(0.0);
                let delete_pressure = (-a).max(0.0);
                1.0 / (1.0 + insert_pressure) + delete_pressure
            })
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        // Largest-remainder apportionment of `total` by weight, capped at the
        // segment capacity.
        let mut targets = vec![0usize; count];
        let mut fractional: Vec<(usize, f64)> = Vec::with_capacity(count);
        let mut assigned = 0usize;
        for (i, w) in weights.iter().enumerate() {
            let share = total as f64 * w / weight_sum;
            let base = (share.floor() as usize).min(capacity);
            targets[i] = base;
            assigned += base;
            fractional.push((i, share - base as f64));
        }
        // Distribute the remainder to the segments with the largest fractional
        // parts that still have room.
        fractional.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut remaining = total - assigned;
        while remaining > 0 {
            let mut progressed = false;
            for &(i, _) in &fractional {
                if remaining == 0 {
                    break;
                }
                if targets[i] < capacity {
                    targets[i] += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            assert!(progressed, "window cannot hold the elements");
        }
        // Decay the history of the rebalanced window: the prediction was
        // consumed.
        for a in &mut self.activity[start..start + count] {
            *a *= self.decay;
        }
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_activity_gives_even_split() {
        let mut p = AdaptivePredictor::new(4);
        let t = p.targets(0, 4, 8, 4);
        assert_eq!(t.iter().sum::<usize>(), 8);
        assert_eq!(t, vec![2, 2, 2, 2]);
    }

    #[test]
    fn hot_insert_segment_receives_fewer_elements() {
        let mut p = AdaptivePredictor::new(4);
        for _ in 0..20 {
            p.record_insert(1);
        }
        let t = p.targets(0, 4, 8, 4);
        assert_eq!(t.iter().sum::<usize>(), 8);
        let min = *t.iter().min().unwrap();
        assert_eq!(t[1], min, "the hot segment must get the fewest elements");
        assert!(t[1] < t[0]);
    }

    #[test]
    fn hot_delete_segment_receives_more_elements() {
        let mut p = AdaptivePredictor::new(4);
        for _ in 0..10 {
            p.record_delete(2);
        }
        let t = p.targets(0, 4, 8, 4);
        assert_eq!(t.iter().sum::<usize>(), 8);
        let max = *t.iter().max().unwrap();
        assert_eq!(t[2], max, "the deletion-heavy segment must get the most");
    }

    #[test]
    fn targets_never_exceed_capacity() {
        let mut p = AdaptivePredictor::new(4);
        for _ in 0..100 {
            p.record_insert(0);
            p.record_insert(1);
        }
        // Nearly full window: 15 elements over 4 segments of capacity 4.
        let t = p.targets(0, 4, 15, 4);
        assert_eq!(t.iter().sum::<usize>(), 15);
        assert!(t.iter().all(|&x| x <= 4));
    }

    #[test]
    fn activity_decays_after_rebalance() {
        let mut p = AdaptivePredictor::new(2);
        for _ in 0..8 {
            p.record_insert(0);
        }
        assert_eq!(p.activity(0), 8.0);
        let _ = p.targets(0, 2, 2, 4);
        assert!(p.activity(0) < 8.0);
    }

    #[test]
    fn reset_changes_segment_count() {
        let mut p = AdaptivePredictor::new(2);
        p.record_insert(1);
        p.reset(8);
        assert_eq!(p.num_segments(), 8);
        assert_eq!(p.activity(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn overfull_window_panics() {
        let mut p = AdaptivePredictor::new(2);
        let _ = p.targets(0, 2, 9, 4);
    }
}
