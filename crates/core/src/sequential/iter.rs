//! Ordered iterators over the sequential PMA.
//!
//! Scans are the PMA's strength: elements are visited by walking the slot
//! array segment by segment, skipping the gaps at each segment's tail, so the
//! memory access pattern is sequential.

use super::PackedMemoryArray;

/// Iterator over all elements of a [`PackedMemoryArray`] in ascending key
/// order. Yields copies of the stored pairs.
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    pma: &'a PackedMemoryArray<K, V>,
    segment: usize,
    offset: usize,
}

impl<'a, K, V> Iter<'a, K, V>
where
    K: Ord + Copy + Default + pma_common::simd::RunSearch,
    V: Copy + Default,
{
    pub(crate) fn new(pma: &'a PackedMemoryArray<K, V>) -> Self {
        Self {
            pma,
            segment: 0,
            offset: 0,
        }
    }
}

impl<K, V> Iterator for Iter<'_, K, V>
where
    K: Ord + Copy + Default + pma_common::simd::RunSearch,
    V: Copy + Default,
{
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        while self.segment < self.pma.num_segments() {
            if self.offset < self.pma.cards[self.segment] {
                let idx = self.segment * self.pma.params().segment_capacity + self.offset;
                self.offset += 1;
                return Some((self.pma.keys[idx], self.pma.values[idx]));
            }
            self.segment += 1;
            self.offset = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Cheap bounds: at most the whole PMA.
        (0, Some(self.pma.len()))
    }
}

/// Iterator over the elements of a [`PackedMemoryArray`] with keys in
/// `[lo, hi]`, in ascending key order.
#[derive(Debug)]
pub struct RangeIter<'a, K, V> {
    pma: &'a PackedMemoryArray<K, V>,
    segment: usize,
    offset: usize,
    hi: K,
    done: bool,
}

impl<'a, K, V> RangeIter<'a, K, V>
where
    K: Ord + Copy + Default + pma_common::simd::RunSearch,
    V: Copy + Default,
{
    pub(crate) fn new(pma: &'a PackedMemoryArray<K, V>, lo: K, hi: K) -> Self {
        if pma.is_empty() || lo > hi {
            return Self {
                pma,
                segment: 0,
                offset: 0,
                hi,
                done: true,
            };
        }
        // Position on the first element >= lo.
        let segment = pma.find_segment(&lo);
        let offset = match pma.seg_keys(segment).binary_search(&lo) {
            Ok(p) | Err(p) => p,
        };
        Self {
            pma,
            segment,
            offset,
            hi,
            done: false,
        }
    }
}

impl<K, V> Iterator for RangeIter<'_, K, V>
where
    K: Ord + Copy + Default + pma_common::simd::RunSearch,
    V: Copy + Default,
{
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        if self.done {
            return None;
        }
        while self.segment < self.pma.num_segments() {
            if self.offset < self.pma.cards[self.segment] {
                let idx = self.segment * self.pma.params().segment_capacity + self.offset;
                let key = self.pma.keys[idx];
                if key > self.hi {
                    self.done = true;
                    return None;
                }
                self.offset += 1;
                return Some((key, self.pma.values[idx]));
            }
            self.segment += 1;
            self.offset = 0;
        }
        self.done = true;
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::params::PmaParams;
    use crate::sequential::PackedMemoryArray;

    fn filled(n: i64) -> PackedMemoryArray<i64, i64> {
        let mut pma = PackedMemoryArray::new(PmaParams::small()).unwrap();
        for k in 0..n {
            pma.insert(k * 2, k);
        }
        pma
    }

    #[test]
    fn iter_visits_everything_in_order() {
        let pma = filled(500);
        let v: Vec<_> = pma.iter().collect();
        assert_eq!(v.len(), 500);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(v[0], (0, 0));
        assert_eq!(v[499], (998, 499));
    }

    #[test]
    fn iter_on_empty_pma() {
        let pma = PackedMemoryArray::<i64, i64>::new(PmaParams::small()).unwrap();
        assert_eq!(pma.iter().count(), 0);
    }

    #[test]
    fn range_inclusive_bounds() {
        let pma = filled(100); // keys 0, 2, 4, ..., 198
        let v: Vec<_> = pma.range(10, 20).map(|(k, _)| k).collect();
        assert_eq!(v, vec![10, 12, 14, 16, 18, 20]);
    }

    #[test]
    fn range_with_bounds_not_present() {
        let pma = filled(100);
        let v: Vec<_> = pma.range(9, 21).map(|(k, _)| k).collect();
        assert_eq!(v, vec![10, 12, 14, 16, 18, 20]);
    }

    #[test]
    fn range_outside_key_space() {
        let pma = filled(100);
        assert_eq!(pma.range(1000, 2000).count(), 0);
        assert_eq!(pma.range(-50, -1).count(), 0);
        let all: Vec<_> = pma.range(i64::MIN, i64::MAX).collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn range_empty_when_lo_greater_than_hi() {
        let pma = filled(100);
        assert_eq!(pma.range(20, 10).count(), 0);
    }

    #[test]
    fn range_single_element() {
        let pma = filled(100);
        let v: Vec<_> = pma.range(42, 42).collect();
        assert_eq!(v, vec![(42, 21)]);
    }

    #[test]
    fn range_spans_many_segments() {
        let pma = filled(5000);
        let v: Vec<_> = pma.range(100, 7000).map(|(k, _)| k).collect();
        assert_eq!(v.len(), (7000 - 100) / 2 + 1);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}
