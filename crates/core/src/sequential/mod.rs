//! The sequential Packed Memory Array (paper section 2).
//!
//! A PMA stores sorted elements in an array that is logically divided into
//! fixed-size *segments*; every segment keeps some empty slots (gaps) so that
//! insertions only have to shift elements within one segment. When a segment
//! overflows (or underflows), the *calibrator tree* is walked bottom-up to
//! find the smallest enclosing window whose density is within its thresholds,
//! and the elements of that window are redistributed. When no window
//! qualifies, the whole array is resized.
//!
//! This implementation is generic over the key and value types and is the
//! reference used by the property-based tests; the concurrent PMA in
//! [`crate::concurrent`] specialises the layout for shared-memory access.

pub mod adaptive;
mod iter;

pub use iter::{Iter, RangeIter};

use crate::calibrator::{CalibratorTree, Window};
use crate::params::{PmaParams, RebalancePolicy};
use crate::stats::{Stats, StatsSnapshot};
use adaptive::AdaptivePredictor;
use pma_common::PmaError;

/// A sequential Packed Memory Array mapping keys to values.
///
/// Keys are kept globally sorted; point operations cost `O(log^2 N / B)`
/// amortised and ordered scans are sequential over the underlying array.
///
/// # Examples
/// ```
/// use pma_core::sequential::PackedMemoryArray;
/// use pma_core::params::PmaParams;
///
/// let mut pma = PackedMemoryArray::new(PmaParams::small()).unwrap();
/// for k in 0..100i64 {
///     pma.insert(k, k * 10);
/// }
/// assert_eq!(pma.get(&42), Some(420));
/// assert_eq!(pma.len(), 100);
/// let keys: Vec<i64> = pma.iter().map(|(k, _)| k).collect();
/// assert!(keys.windows(2).all(|w| w[0] < w[1]));
/// ```
#[derive(Debug)]
pub struct PackedMemoryArray<K, V> {
    params: PmaParams,
    calibrator: CalibratorTree,
    /// Flat slot array: segment `s` owns slots `[s * B, (s + 1) * B)`.
    keys: Vec<K>,
    values: Vec<V>,
    /// Number of live elements per segment; live elements are packed at the
    /// start of the segment's slot range and sorted.
    cards: Vec<usize>,
    len: usize,
    predictor: AdaptivePredictor,
    stats: Stats,
    /// Reusable staging buffers for rebalances and resizes.
    scratch_keys: Vec<K>,
    scratch_values: Vec<V>,
}

impl<K, V> PackedMemoryArray<K, V>
where
    K: Ord + Copy + Default + pma_common::simd::RunSearch,
    V: Copy + Default,
{
    /// Creates an empty PMA with the given parameters (initially one gate's
    /// worth of segments).
    pub fn new(params: PmaParams) -> Result<Self, PmaError> {
        params.validate()?;
        let num_segments = 1usize;
        let calibrator =
            CalibratorTree::new(num_segments, params.segment_capacity, params.thresholds);
        let slots = num_segments * params.segment_capacity;
        Ok(Self {
            predictor: AdaptivePredictor::new(num_segments),
            calibrator,
            keys: vec![K::default(); slots],
            values: vec![V::default(); slots],
            cards: vec![0; num_segments],
            len: 0,
            stats: Stats::new(),
            scratch_keys: Vec::new(),
            scratch_values: Vec::new(),
            params,
        })
    }

    /// Creates a PMA with the paper's default parameters.
    pub fn with_defaults() -> Self {
        Self::new(PmaParams::default()).expect("default parameters are valid")
    }

    /// Builds a PMA pre-populated with `items`, which must be sorted by key
    /// in non-decreasing order (the last entry wins on duplicate keys).
    ///
    /// The segment count is presized from the calibrated density bounds
    /// ([`PmaParams::presized_segments`]) and the elements are written out in
    /// one pass with a uniform gap distribution — no rebalance or resize
    /// happens during the load, making this O(N) versus the point-insert
    /// path's rebalance cascades.
    ///
    /// # Errors
    /// Returns [`PmaError::InvalidParameter`] when `params` is invalid or the
    /// keys are not in ascending order.
    pub fn from_sorted(params: PmaParams, items: &[(K, V)]) -> Result<Self, PmaError> {
        params.validate()?;
        if let Some(pos) = items.windows(2).position(|w| w[0].0 > w[1].0) {
            return Err(PmaError::invalid(
                "sorted_items",
                format!("keys must be sorted ascending; violation at position {pos}"),
            ));
        }
        // Deduplicate equal keys, keeping the last entry (upsert semantics).
        let mut deduped: Vec<(K, V)> = Vec::with_capacity(items.len());
        for &(k, v) in items {
            match deduped.last_mut() {
                Some(last) if last.0 == k => last.1 = v,
                _ => deduped.push((k, v)),
            }
        }
        let n = deduped.len();
        let num_segments = params.presized_segments(n);
        let seg_cap = params.segment_capacity;
        let calibrator = CalibratorTree::new(num_segments, seg_cap, params.thresholds);
        let mut keys = vec![K::default(); num_segments * seg_cap];
        let mut values = vec![V::default(); num_segments * seg_cap];
        let targets = even_targets(n, num_segments, seg_cap);
        let mut cursor = 0usize;
        for (s, &t) in targets.iter().enumerate() {
            let start = s * seg_cap;
            for i in 0..t {
                let (k, v) = deduped[cursor + i];
                keys[start + i] = k;
                values[start + i] = v;
            }
            cursor += t;
        }
        debug_assert_eq!(cursor, n);
        let stats = Stats::new();
        Stats::add(&stats.bulk_loaded_keys, n as u64);
        Ok(Self {
            predictor: AdaptivePredictor::new(num_segments),
            calibrator,
            keys,
            values,
            cards: targets,
            len: n,
            stats,
            scratch_keys: Vec::new(),
            scratch_values: Vec::new(),
            params,
        })
    }

    /// Number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the PMA is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of element slots (including gaps).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Number of segments.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.cards.len()
    }

    /// Overall fill factor of the array.
    pub fn density(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.len as f64 / self.capacity() as f64
        }
    }

    /// Configuration of this PMA.
    pub fn params(&self) -> &PmaParams {
        &self.params
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Number of live elements in segment `s` (test hook).
    pub fn segment_cardinality(&self, s: usize) -> usize {
        self.cards[s]
    }

    #[inline]
    fn seg_cap(&self) -> usize {
        self.params.segment_capacity
    }

    #[inline]
    fn seg_start(&self, s: usize) -> usize {
        s * self.seg_cap()
    }

    #[inline]
    fn seg_keys(&self, s: usize) -> &[K] {
        let start = self.seg_start(s);
        &self.keys[start..start + self.cards[s]]
    }

    #[inline]
    fn seg_first_key(&self, s: usize) -> K {
        debug_assert!(self.cards[s] > 0);
        self.keys[self.seg_start(s)]
    }

    fn first_non_empty_segment(&self) -> Option<usize> {
        (0..self.num_segments()).find(|&s| self.cards[s] > 0)
    }

    /// Returns the segment that should contain `key`: the last non-empty
    /// segment whose minimum key is `<= key`, or the first non-empty segment
    /// when `key` precedes every stored key.
    fn find_segment(&self, key: &K) -> usize {
        debug_assert!(self.len > 0);
        let n = self.num_segments();
        let mut lo = 0usize;
        let mut hi = n;
        let mut best: Option<usize> = None;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            // Walk left to the nearest non-empty segment within [lo, mid].
            let mut m = mid;
            while self.cards[m] == 0 && m > lo {
                m -= 1;
            }
            if self.cards[m] == 0 {
                // [lo, mid] is entirely empty: any candidate is to the right.
                lo = mid + 1;
                continue;
            }
            if self.seg_first_key(m) <= *key {
                best = Some(m);
                lo = mid + 1;
            } else {
                hi = m;
            }
        }
        best.or_else(|| self.first_non_empty_segment()).unwrap_or(0)
    }

    /// Inserts `key` with `value`. Returns the previous value if the key was
    /// already present (upsert semantics).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        loop {
            if self.len == 0 {
                let start = self.seg_start(0);
                self.keys[start] = key;
                self.values[start] = value;
                self.cards[0] = 1;
                self.len = 1;
                Stats::bump(&self.stats.inserts);
                return None;
            }
            let s = self.find_segment(&key);
            let start = self.seg_start(s);
            match K::search_run(self.seg_keys(s), &key) {
                Ok(pos) => {
                    let old = self.values[start + pos];
                    self.values[start + pos] = value;
                    return Some(old);
                }
                Err(pos) => {
                    if self.cards[s] == self.seg_cap() {
                        self.make_room(s);
                        // Elements moved; re-route the key.
                        continue;
                    }
                    // Shift the tail of the segment one slot to the right.
                    let card = self.cards[s];
                    self.keys
                        .copy_within(start + pos..start + card, start + pos + 1);
                    self.values
                        .copy_within(start + pos..start + card, start + pos + 1);
                    self.keys[start + pos] = key;
                    self.values[start + pos] = value;
                    self.cards[s] += 1;
                    self.len += 1;
                    if self.params.rebalance_policy == RebalancePolicy::Adaptive {
                        self.predictor.record_insert(s);
                    }
                    Stats::bump(&self.stats.inserts);
                    return None;
                }
            }
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        if self.len == 0 {
            return None;
        }
        let s = self.find_segment(key);
        let start = self.seg_start(s);
        let pos = match K::search_run(self.seg_keys(s), key) {
            Ok(pos) => pos,
            Err(_) => return None,
        };
        let old = self.values[start + pos];
        let card = self.cards[s];
        self.keys
            .copy_within(start + pos + 1..start + card, start + pos);
        self.values
            .copy_within(start + pos + 1..start + card, start + pos);
        self.cards[s] -= 1;
        self.len -= 1;
        if self.params.rebalance_policy == RebalancePolicy::Adaptive {
            self.predictor.record_delete(s);
        }
        Stats::bump(&self.stats.deletes);
        self.after_delete(s);
        Some(old)
    }

    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        if self.len == 0 {
            return None;
        }
        Stats::bump(&self.stats.lookups);
        let s = self.find_segment(key);
        let start = self.seg_start(s);
        K::search_run(self.seg_keys(s), key)
            .ok()
            .map(|pos| self.values[start + pos])
    }

    /// Whether `key` is stored.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Smallest stored key/value pair.
    pub fn first(&self) -> Option<(K, V)> {
        let s = self.first_non_empty_segment()?;
        let start = self.seg_start(s);
        Some((self.keys[start], self.values[start]))
    }

    /// Largest stored key/value pair.
    pub fn last(&self) -> Option<(K, V)> {
        let s = (0..self.num_segments())
            .rev()
            .find(|&s| self.cards[s] > 0)?;
        let idx = self.seg_start(s) + self.cards[s] - 1;
        Some((self.keys[idx], self.values[idx]))
    }

    /// Iterates over all elements in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::new(self)
    }

    /// Iterates over all elements with keys in `[lo, hi]` in ascending order.
    pub fn range(&self, lo: K, hi: K) -> RangeIter<'_, K, V> {
        RangeIter::new(self, lo, hi)
    }

    /// Copies every element into a vector (mainly a test convenience).
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.iter().collect()
    }

    /// Makes room for an insertion into the (full) segment `s`, either by
    /// rebalancing the smallest in-threshold window or by resizing the array.
    fn make_room(&mut self, s: usize) {
        let cards = &self.cards;
        let window = self.calibrator.find_window_for_insert(s, 1, |i| cards[i]);
        match window {
            Some(w) if w.level > 1 => self.rebalance_window(&w),
            Some(_) => {
                // The segment itself is within threshold — nothing to do (can
                // only happen if the caller raced its own bookkeeping, which
                // the sequential PMA never does).
                debug_assert!(self.cards[s] < self.seg_cap());
            }
            None => self.resize_to_fit(self.len + 1),
        }
    }

    /// Handles threshold violations after a deletion from segment `s`.
    fn after_delete(&mut self, s: usize) {
        if self.len == 0 {
            if self.num_segments() > 1 {
                self.resize_to_fit(0);
            }
            return;
        }
        let rho_leaf = self.params.thresholds.rho_leaf;
        let seg_density = self.cards[s] as f64 / self.seg_cap() as f64;
        if seg_density < rho_leaf {
            let cards = &self.cards;
            match self.calibrator.find_window_for_delete(s, |i| cards[i]) {
                Some(w) if w.level > 1 => self.rebalance_window(&w),
                Some(_) => {}
                None => {
                    self.resize_to_fit(self.len);
                    return;
                }
            }
        }
        // Paper section 4: downsize when fewer than `downsize_at` of the
        // slots are in use.
        if self.num_segments() > 1
            && (self.len as f64) < self.params.downsize_at * self.capacity() as f64
        {
            self.resize_to_fit(self.len);
        }
    }

    /// Redistributes the elements of `window` over its segments according to
    /// the configured rebalance policy.
    fn rebalance_window(&mut self, window: &Window) {
        Stats::bump(&self.stats.local_rebalances);
        let total = self.collect_window(window);
        let targets = self.distribution_targets(window, total);
        self.scatter_window(window, &targets);
    }

    /// Copies the live elements of `window` (in order) into the scratch
    /// buffers and returns how many there are.
    fn collect_window(&mut self, window: &Window) -> usize {
        self.scratch_keys.clear();
        self.scratch_values.clear();
        for s in window.start_segment..window.end_segment() {
            let start = self.seg_start(s);
            let card = self.cards[s];
            self.scratch_keys
                .extend_from_slice(&self.keys[start..start + card]);
            self.scratch_values
                .extend_from_slice(&self.values[start..start + card]);
        }
        self.scratch_keys.len()
    }

    /// Computes how many elements each segment of `window` should receive.
    fn distribution_targets(&mut self, window: &Window, total: usize) -> Vec<usize> {
        match self.params.rebalance_policy {
            RebalancePolicy::Traditional => {
                even_targets(total, window.num_segments, self.seg_cap())
            }
            RebalancePolicy::Adaptive => {
                // Leave at least one gap per segment whenever possible so the
                // triggering insertion is guaranteed to find room (see
                // `even_targets`).
                let capacity = if total <= window.num_segments * (self.seg_cap() - 1) {
                    self.seg_cap() - 1
                } else {
                    self.seg_cap()
                };
                self.predictor
                    .targets(window.start_segment, window.num_segments, total, capacity)
            }
        }
    }

    /// Writes the scratch buffers back into `window` with the given
    /// per-segment element counts.
    fn scatter_window(&mut self, window: &Window, targets: &[usize]) {
        debug_assert_eq!(targets.len(), window.num_segments);
        debug_assert_eq!(targets.iter().sum::<usize>(), self.scratch_keys.len());
        let mut cursor = 0usize;
        for (i, &target) in targets.iter().enumerate() {
            let s = window.start_segment + i;
            let start = self.seg_start(s);
            self.keys[start..start + target]
                .copy_from_slice(&self.scratch_keys[cursor..cursor + target]);
            self.values[start..start + target]
                .copy_from_slice(&self.scratch_values[cursor..cursor + target]);
            self.cards[s] = target;
            cursor += target;
        }
    }

    /// Rebuilds the array with a capacity suitable for `target_len` elements
    /// (paper: `C' = 2 N / (rho_h + tau_h)`), redistributing evenly.
    fn resize_to_fit(&mut self, target_len: usize) {
        Stats::bump(&self.stats.resizes);
        let t = &self.params.thresholds;
        let target_density = (t.rho_root + t.tau_root).max(0.1);
        let needed_slots = ((2.0 * target_len as f64) / target_density).ceil() as usize;
        let needed_segments = needed_slots.div_ceil(self.seg_cap()).max(1);
        let mut new_num_segments = needed_segments.next_power_of_two();
        // Guarantee progress when growing: never shrink below what the
        // elements need, and never "resize" to the same size while full.
        while new_num_segments * self.seg_cap() < target_len + 1 {
            new_num_segments *= 2;
        }
        // Gather all live elements.
        let whole = Window {
            start_segment: 0,
            num_segments: self.num_segments(),
            level: self.calibrator.height(),
        };
        let total = self.collect_window(&whole);
        debug_assert_eq!(total, self.len);

        let slots = new_num_segments * self.seg_cap();
        self.keys.clear();
        self.keys.resize(slots, K::default());
        self.values.clear();
        self.values.resize(slots, V::default());
        self.cards.clear();
        self.cards.resize(new_num_segments, 0);
        self.calibrator =
            CalibratorTree::new(new_num_segments, self.seg_cap(), self.params.thresholds);
        self.predictor.reset(new_num_segments);

        let targets = even_targets(total, new_num_segments, self.seg_cap());
        let new_window = Window {
            start_segment: 0,
            num_segments: new_num_segments,
            level: self.calibrator.height(),
        };
        self.scatter_window(&new_window, &targets);
    }

    /// Validates the structural invariants; used by tests and property tests.
    ///
    /// # Panics
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        assert_eq!(
            self.keys.len(),
            self.num_segments() * self.seg_cap(),
            "slot array size mismatch"
        );
        assert_eq!(self.keys.len(), self.values.len());
        let total: usize = self.cards.iter().sum();
        assert_eq!(total, self.len, "len does not match sum of cardinalities");
        let mut prev: Option<K> = None;
        for s in 0..self.num_segments() {
            assert!(self.cards[s] <= self.seg_cap(), "segment {s} over capacity");
            for &k in self.seg_keys(s) {
                if let Some(p) = prev {
                    assert!(p < k, "keys are not strictly increasing");
                }
                prev = Some(k);
            }
        }
    }
}

impl<K, V> Default for PackedMemoryArray<K, V>
where
    K: Ord + Copy + Default + pma_common::simd::RunSearch,
    V: Copy + Default,
{
    fn default() -> Self {
        Self::with_defaults()
    }
}

/// Even (traditional) distribution of `total` elements over `count` segments
/// of the given capacity: every segment receives `total / count` elements and
/// the first `total % count` segments one more.
///
/// Whenever the elements fit with at least one gap per segment, the
/// distribution leaves that gap (no segment is filled to capacity). This
/// guarantees that the insertion which triggered the rebalance finds room in
/// whichever segment its key routes to, so rebalance/retry loops always make
/// progress.
pub(crate) fn even_targets(total: usize, count: usize, capacity: usize) -> Vec<usize> {
    debug_assert!(total <= count * capacity);
    let effective_capacity = if total <= count * (capacity - 1) {
        capacity - 1
    } else {
        capacity
    };
    let base = total / count;
    let extra = total % count;
    let mut targets: Vec<usize> = (0..count)
        .map(|i| (base + usize::from(i < extra)).min(effective_capacity))
        .collect();
    // Redistribute anything clipped by the capacity cap.
    let mut assigned: usize = targets.iter().sum();
    let mut i = 0;
    while assigned < total {
        if targets[i] < effective_capacity {
            targets[i] += 1;
            assigned += 1;
        }
        i = (i + 1) % count;
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DensityThresholds;

    fn small_pma() -> PackedMemoryArray<i64, i64> {
        PackedMemoryArray::new(PmaParams::small()).unwrap()
    }

    #[test]
    fn from_sorted_bulk_load_matches_point_inserts() {
        let items: Vec<(i64, i64)> = (0..5_000i64).map(|k| (k * 2, -k)).collect();
        let loaded = PackedMemoryArray::from_sorted(PmaParams::small(), &items).unwrap();
        assert_eq!(loaded.len(), 5_000);
        assert_eq!(loaded.stats().total_rebalances(), 0, "bulk load rebalanced");
        assert_eq!(loaded.stats().bulk_loaded_keys, 5_000);
        loaded.check_invariants();
        assert!(loaded.density() <= loaded.params().thresholds.tau_root + 1e-9);
        let mut pointwise = small_pma();
        for &(k, v) in &items {
            pointwise.insert(k, v);
        }
        assert_eq!(loaded.to_vec(), pointwise.to_vec());
        // Duplicates keep the last entry; unsorted input is rejected.
        let dup = PackedMemoryArray::from_sorted(PmaParams::small(), &[(1, 1), (1, 2)]).unwrap();
        assert_eq!(dup.get(&1), Some(2));
        assert!(
            PackedMemoryArray::<i64, i64>::from_sorted(PmaParams::small(), &[(2, 0), (1, 0)])
                .is_err()
        );
        let empty = PackedMemoryArray::<i64, i64>::from_sorted(PmaParams::small(), &[]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_pma() {
        let pma = small_pma();
        assert_eq!(pma.len(), 0);
        assert!(pma.is_empty());
        assert_eq!(pma.get(&1), None);
        assert_eq!(pma.first(), None);
        assert_eq!(pma.last(), None);
        assert_eq!(pma.to_vec(), vec![]);
        pma.check_invariants();
    }

    #[test]
    fn insert_and_get_sequential_keys() {
        let mut pma = small_pma();
        for k in 0..1000i64 {
            assert_eq!(pma.insert(k, k * 2), None);
        }
        assert_eq!(pma.len(), 1000);
        for k in 0..1000i64 {
            assert_eq!(pma.get(&k), Some(k * 2), "key {k}");
        }
        assert_eq!(pma.get(&1000), None);
        assert_eq!(pma.get(&-1), None);
        pma.check_invariants();
    }

    #[test]
    fn insert_reverse_and_interleaved_order() {
        let mut pma = small_pma();
        for k in (0..500i64).rev() {
            pma.insert(k, -k);
        }
        for k in (500..1000i64).step_by(2) {
            pma.insert(k, -k);
        }
        for k in (501..1000i64).step_by(2) {
            pma.insert(k, -k);
        }
        assert_eq!(pma.len(), 1000);
        let v = pma.to_vec();
        assert_eq!(v.len(), 1000);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        pma.check_invariants();
    }

    #[test]
    fn upsert_replaces_value() {
        let mut pma = small_pma();
        assert_eq!(pma.insert(7, 1), None);
        assert_eq!(pma.insert(7, 2), Some(1));
        assert_eq!(pma.get(&7), Some(2));
        assert_eq!(pma.len(), 1);
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut pma = small_pma();
        for k in 0..200i64 {
            pma.insert(k, k);
        }
        assert_eq!(pma.remove(&100), Some(100));
        assert_eq!(pma.remove(&100), None);
        assert_eq!(pma.remove(&1000), None);
        assert_eq!(pma.len(), 199);
        assert_eq!(pma.get(&100), None);
        assert_eq!(pma.get(&99), Some(99));
        pma.check_invariants();
    }

    #[test]
    fn remove_everything_shrinks_array() {
        let mut pma = small_pma();
        for k in 0..2000i64 {
            pma.insert(k, k);
        }
        let grown_capacity = pma.capacity();
        assert!(grown_capacity > PmaParams::small().segment_capacity);
        for k in 0..2000i64 {
            assert_eq!(pma.remove(&k), Some(k));
        }
        assert_eq!(pma.len(), 0);
        assert!(pma.capacity() < grown_capacity, "array should downsize");
        assert!(pma.stats().resizes > 1);
        pma.check_invariants();
    }

    #[test]
    fn first_and_last() {
        let mut pma = small_pma();
        for k in [5i64, -3, 100, 42] {
            pma.insert(k, k);
        }
        assert_eq!(pma.first(), Some((-3, -3)));
        assert_eq!(pma.last(), Some((100, 100)));
    }

    #[test]
    fn duplicate_heavy_workload() {
        let mut pma = small_pma();
        for round in 0..10i64 {
            for k in 0..100i64 {
                pma.insert(k, round);
            }
        }
        assert_eq!(pma.len(), 100);
        for k in 0..100i64 {
            assert_eq!(pma.get(&k), Some(9));
        }
        pma.check_invariants();
    }

    #[test]
    fn strict_thresholds_trigger_delete_rebalances() {
        let params = PmaParams {
            thresholds: DensityThresholds::strict(),
            ..PmaParams::small()
        };
        let mut pma = PackedMemoryArray::new(params).unwrap();
        for k in 0..1024i64 {
            pma.insert(k, k);
        }
        // Delete a contiguous run to force lower-threshold violations.
        for k in 0..900i64 {
            pma.remove(&k);
        }
        assert_eq!(pma.len(), 124);
        let stats = pma.stats();
        assert!(stats.total_rebalances() > 0);
        pma.check_invariants();
        for k in 900..1024i64 {
            assert_eq!(pma.get(&k), Some(k));
        }
    }

    #[test]
    fn adaptive_policy_produces_valid_structure_under_skew() {
        let params = PmaParams {
            rebalance_policy: RebalancePolicy::Adaptive,
            ..PmaParams::small()
        };
        let mut pma = PackedMemoryArray::new(params).unwrap();
        // Append-only (maximally skewed) workload.
        for k in 0..5000i64 {
            pma.insert(k, k);
        }
        assert_eq!(pma.len(), 5000);
        pma.check_invariants();
        let traditional = {
            let mut p = PackedMemoryArray::new(PmaParams::small()).unwrap();
            for k in 0..5000i64 {
                p.insert(k, k);
            }
            p.stats().total_rebalances()
        };
        // The adaptive policy should not need *more* rebalances than the
        // traditional one on an append-only pattern (it usually needs fewer).
        assert!(pma.stats().total_rebalances() <= traditional + traditional / 4 + 1);
    }

    #[test]
    fn density_stays_reasonable() {
        let mut pma = small_pma();
        for k in 0..10_000i64 {
            pma.insert(k, k);
        }
        let d = pma.density();
        assert!(d > 0.3 && d <= 1.0, "density {d} out of expected range");
    }

    #[test]
    fn even_targets_distribution() {
        assert_eq!(even_targets(10, 4, 8), vec![3, 3, 2, 2]);
        assert_eq!(even_targets(0, 3, 8), vec![0, 0, 0]);
        assert_eq!(even_targets(8, 2, 4), vec![4, 4]);
    }

    #[test]
    fn negative_and_extreme_keys() {
        let mut pma = small_pma();
        pma.insert(i64::MIN + 1, 1);
        pma.insert(i64::MAX - 1, 2);
        pma.insert(0, 3);
        assert_eq!(pma.get(&(i64::MIN + 1)), Some(1));
        assert_eq!(pma.get(&(i64::MAX - 1)), Some(2));
        assert_eq!(pma.get(&0), Some(3));
        assert_eq!(pma.first().unwrap().0, i64::MIN + 1);
        assert_eq!(pma.last().unwrap().0, i64::MAX - 1);
    }

    #[test]
    fn generic_over_key_type() {
        let mut pma: PackedMemoryArray<u32, u64> =
            PackedMemoryArray::new(PmaParams::small()).unwrap();
        for k in 0..300u32 {
            pma.insert(k, u64::from(k) * 3);
        }
        assert_eq!(pma.get(&123), Some(369));
        assert_eq!(pma.len(), 300);
        pma.check_invariants();
    }

    #[test]
    fn stats_count_operations() {
        let mut pma = small_pma();
        for k in 0..100i64 {
            pma.insert(k, k);
        }
        pma.get(&5);
        pma.remove(&5);
        let s = pma.stats();
        assert_eq!(s.inserts, 100);
        assert_eq!(s.deletes, 1);
        assert!(s.lookups >= 1);
    }
}
