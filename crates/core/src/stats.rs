//! Operation counters exposed by the PMA implementations.
//!
//! The counters are used by the experiment harness (e.g. to report how many
//! global rebalances or resizes a workload triggered) and by tests that assert
//! a specific code path was exercised.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters. All increments use relaxed ordering: the counters
/// are diagnostics, not synchronisation.
#[derive(Debug, Default)]
pub struct Stats {
    /// Successful insertions applied to the array.
    pub inserts: AtomicU64,
    /// Successful deletions applied to the array.
    pub deletes: AtomicU64,
    /// Point lookups served.
    pub lookups: AtomicU64,
    /// Rebalances fully contained in one gate, executed by the writer itself.
    pub local_rebalances: AtomicU64,
    /// Rebalances spanning multiple gates, executed by the rebalancer service.
    pub global_rebalances: AtomicU64,
    /// Full reconstructions of the array (capacity changes).
    pub resizes: AtomicU64,
    /// Operations appended to another writer's combining queue.
    pub combined_ops: AtomicU64,
    /// Batches processed by the batch update mode.
    pub batches_processed: AtomicU64,
    /// Batches whose global rebalance was postponed because of `t_delay`.
    pub batches_delayed: AtomicU64,
    /// Times a client had to walk to a neighbouring gate after a fence-key
    /// mismatch (stale static-index read or concurrent rebalance).
    pub gate_misses: AtomicU64,
    /// Times a client restarted an operation because the array was resized.
    pub resize_restarts: AtomicU64,
    /// Elements installed by the bulk-load constructor (`from_sorted`), which
    /// lays the array out in one pass without any rebalance.
    pub bulk_loaded_keys: AtomicU64,
    /// Oversized `insert_batch` runs handed to the rebalancer for a presized
    /// rebuild of the covering gate span (instead of per-key fallback).
    pub batch_span_rebuilds: AtomicU64,
    /// Queued/parked combining-queue operations resolved while the gate (or
    /// gate window) covering their key was still exclusively owned — the
    /// owned-window apply protocol: claim-time queue drains, in-window
    /// settles after a redistribute moved fences, and resize folds.
    pub owned_applies: AtomicU64,
    /// Operations found *outside* their gate's fences at drain time and
    /// salvaged through the defensive full-rebuild fold. The owned-window
    /// invariant makes this impossible; the counter exists so tests and
    /// debug builds can assert it stays zero.
    pub late_replays: AtomicU64,
    /// Chunk payloads copied because an in-place mutation found the chunk's
    /// version still pinned by a frozen snapshot (the copy-on-write slow
    /// path). Zero while no snapshot is live.
    pub cow_copies: AtomicU64,
}

impl Stats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            local_rebalances: self.local_rebalances.load(Ordering::Relaxed),
            global_rebalances: self.global_rebalances.load(Ordering::Relaxed),
            resizes: self.resizes.load(Ordering::Relaxed),
            combined_ops: self.combined_ops.load(Ordering::Relaxed),
            batches_processed: self.batches_processed.load(Ordering::Relaxed),
            batches_delayed: self.batches_delayed.load(Ordering::Relaxed),
            gate_misses: self.gate_misses.load(Ordering::Relaxed),
            resize_restarts: self.resize_restarts.load(Ordering::Relaxed),
            bulk_loaded_keys: self.bulk_loaded_keys.load(Ordering::Relaxed),
            batch_span_rebuilds: self.batch_span_rebuilds.load(Ordering::Relaxed),
            owned_applies: self.owned_applies.load(Ordering::Relaxed),
            late_replays: self.late_replays.load(Ordering::Relaxed),
            cow_copies: self.cow_copies.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the [`Stats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Successful insertions applied to the array.
    pub inserts: u64,
    /// Successful deletions applied to the array.
    pub deletes: u64,
    /// Point lookups served.
    pub lookups: u64,
    /// Rebalances fully contained in one gate.
    pub local_rebalances: u64,
    /// Rebalances spanning multiple gates.
    pub global_rebalances: u64,
    /// Full reconstructions of the array.
    pub resizes: u64,
    /// Operations appended to another writer's combining queue.
    pub combined_ops: u64,
    /// Batches processed by the batch update mode.
    pub batches_processed: u64,
    /// Batches postponed because of `t_delay`.
    pub batches_delayed: u64,
    /// Fence-key mismatches resolved by walking to a neighbour gate.
    pub gate_misses: u64,
    /// Operation restarts caused by resizes.
    pub resize_restarts: u64,
    /// Elements installed by the bulk-load constructor (`from_sorted`).
    pub bulk_loaded_keys: u64,
    /// Oversized `insert_batch` runs handed to the rebalancer for a presized
    /// gate-span rebuild.
    pub batch_span_rebuilds: u64,
    /// Combining-queue operations applied while their window was owned.
    pub owned_applies: u64,
    /// Operations salvaged through the defensive fold (must stay zero).
    pub late_replays: u64,
    /// Chunk payloads copied by the copy-on-write path because a frozen
    /// snapshot still pinned them.
    pub cow_copies: u64,
}

impl StatsSnapshot {
    /// Total rebalances of any kind (local + global + resizes).
    pub fn total_rebalances(&self) -> u64 {
        self.local_rebalances + self.global_rebalances + self.resizes
    }
}

impl pma_common::obs::MetricSource for StatsSnapshot {
    fn observe(&self, out: &mut dyn pma_common::obs::Observe) {
        out.counter("inserts", self.inserts);
        out.counter("deletes", self.deletes);
        out.counter("lookups", self.lookups);
        out.counter("local_rebalances", self.local_rebalances);
        out.counter("global_rebalances", self.global_rebalances);
        out.counter("resizes", self.resizes);
        out.counter("combined_ops", self.combined_ops);
        out.counter("batches_processed", self.batches_processed);
        out.counter("batches_delayed", self.batches_delayed);
        out.counter("gate_misses", self.gate_misses);
        out.counter("resize_restarts", self.resize_restarts);
        out.counter("owned_applies", self.owned_applies);
        out.counter("late_replays", self.late_replays);
        out.counter("cow_copies", self.cow_copies);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let s = Stats::new();
        Stats::bump(&s.inserts);
        Stats::bump(&s.inserts);
        Stats::add(&s.combined_ops, 5);
        Stats::bump(&s.resizes);
        let snap = s.snapshot();
        assert_eq!(snap.inserts, 2);
        assert_eq!(snap.combined_ops, 5);
        assert_eq!(snap.resizes, 1);
        assert_eq!(snap.deletes, 0);
        assert_eq!(snap.total_rebalances(), 1);
    }

    #[test]
    fn counters_are_independent() {
        let s = Stats::new();
        Stats::bump(&s.local_rebalances);
        Stats::bump(&s.global_rebalances);
        let snap = s.snapshot();
        assert_eq!(snap.local_rebalances, 1);
        assert_eq!(snap.global_rebalances, 1);
        assert_eq!(snap.total_rebalances(), 2);
    }
}
