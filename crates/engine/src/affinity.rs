//! Std-only CPU-affinity shim for the thread-per-core router.
//!
//! The router wants `core_affinity`-style pinning without pulling a crate
//! in: on Linux the `sched_setaffinity` syscall is reachable through the
//! libc that every Rust binary already links, declared here directly; on
//! every other platform pinning degrades to a graceful no-op (the router
//! still works, it just inherits the scheduler's placement). Callers treat
//! the boolean result as a hint — a failed pin is reported in the router's
//! `pinned_workers` gauge, never an error.

/// Pins the calling thread to logical CPU `cpu % available_parallelism`
/// (wrapping, so more workers than cores share cores round-robin) and
/// returns whether the kernel accepted the mask. Non-Linux platforms
/// always return `false` without side effects.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(cpu: usize) -> bool {
    // 1024-bit mask, the glibc cpu_set_t default; u64 words keep the
    // layout identical to the kernel's unsigned long bitmap on x86_64 and
    // aarch64 (the only Linux targets the workspace builds for).
    const MASK_WORDS: usize = 1024 / 64;
    extern "C" {
        // pid 0 addresses the calling thread (sched_setaffinity operates
        // on kernel task ids, and glibc forwards 0 unchanged).
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1);
    let cpu = cpu % cores.min(MASK_WORDS * 64);
    let mut mask = [0u64; MASK_WORDS];
    mask[cpu / 64] |= 1 << (cpu % 64);
    // SAFETY: the mask outlives the call and the declared signature matches
    // glibc's ABI (int, size_t, const cpu_set_t* — a pointer to our bitmap).
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Non-Linux fallback: no pinning, report failure so the caller's
/// `pinned_workers` gauge stays honest.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_a_hint_and_never_panics() {
        // On Linux this should succeed for CPU 0 (every container exposes at
        // least one core); elsewhere it must be a graceful no-op.
        let pinned = pin_current_thread(0);
        if cfg!(target_os = "linux") {
            assert!(pinned, "pinning to cpu 0 must succeed on Linux");
        } else {
            assert!(!pinned);
        }
        // Out-of-range indices wrap instead of failing.
        let _ = pin_current_thread(usize::MAX - 1);
    }

    #[test]
    fn pinned_thread_still_runs() {
        let handle = std::thread::spawn(|| {
            let _ = pin_current_thread(1); // wraps to 0 on a 1-core box
            21 * 2
        });
        assert_eq!(handle.join().unwrap(), 42);
    }
}
