//! Registry entries for the range-sharded engine and the thread-per-core
//! router.
//!
//! [`register_backends`] installs the `sharded` and `cores` backends into a
//! [`Registry`]; they are then constructible by spec string without any
//! consumer naming the concrete types:
//!
//! ```text
//! sharded[:<n>[:<inner-spec>]]
//! cores[:<n>[:<inner-spec>]]
//! ```
//!
//! For `sharded`, `<n>` is the initial shard count (default 8) and
//! `<inner-spec>` is the registry spec each shard instantiates (default
//! `pma-batch:100`; it may itself contain colons, e.g.
//! `sharded:8:pma-batch:100` or `sharded:4:btree:8k`). For `cores`, `<n>`
//! is the pinned worker count (default: available parallelism, capped at 8)
//! and `<inner-spec>` is the structure the workers apply into (default
//! `sharded:8:pma-batch:100`, the intended shard-affine pairing — but any
//! registered backend works). Inner specs are resolved against the **same
//! registry that dispatched the build** (its definition is captured once at
//! construction), so a backend set registered into a local [`Registry`]
//! composes without any global state; labels fall back to
//! [`Registry::global`] only for rendering the inner name. Nested `sharded`
//! inner specs (and `cores` inside `cores`) are rejected.

use std::sync::Arc;

use pma_common::bytemap::ConcurrentByteMap;
use pma_common::registry::{BackendDef, BackendSpec, ByteBackendDef, Registry};
use pma_common::{ConcurrentMap, Key, PmaError, Value};

use crate::bytesharded::{ByteShardConfig, ShardedByteMap};
use crate::router::{CoreRouter, CoreRouterConfig};
use crate::sharded::{ShardedConfig, ShardedMap};

/// The inner spec used when the spec string does not name one.
pub const DEFAULT_INNER_SPEC: &str = "pma-batch:100";

/// The shard count used when the spec string does not name one.
pub const DEFAULT_SHARDS: usize = 8;

/// The inner spec a bare `cores` spec wraps.
pub const DEFAULT_CORES_INNER_SPEC: &str = "sharded:8:pma-batch:100";

/// Parses the `sharded` argument grammar: `<n>` or `<n>:<inner-spec>`.
fn parse_config(spec: &BackendSpec<'_>) -> Result<ShardedConfig, PmaError> {
    let (count, inner) = match spec.arg {
        None => (None, DEFAULT_INNER_SPEC),
        Some(arg) => match arg.split_once(':') {
            Some((n, rest)) => (Some(n.trim()), rest.trim()),
            None => (Some(arg.trim()), DEFAULT_INNER_SPEC),
        },
    };
    let shards = match count {
        None => DEFAULT_SHARDS,
        Some(n) => n.parse().map_err(|_| {
            PmaError::invalid(
                "backend_spec",
                format!("`{}`: shard count `{n}` is not an integer", spec.raw),
            )
        })?,
    };
    let config = ShardedConfig {
        shards,
        inner_spec: inner.to_string(),
        ..ShardedConfig::default()
    };
    config.validate()?;
    Ok(config)
}

fn build_sharded(
    registry: &Registry,
    spec: &BackendSpec<'_>,
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    Ok(Arc::new(ShardedMap::new(parse_config(spec)?, registry)?))
}

/// Native bulk loader: fences adapt to the data and every shard is built
/// through its inner backend's native loader in one presized pass.
fn build_loaded_sharded(
    registry: &Registry,
    spec: &BackendSpec<'_>,
    items: &[(Key, Value)],
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    Ok(Arc::new(ShardedMap::from_sorted(
        parse_config(spec)?,
        registry,
        items,
    )?))
}

fn label_sharded(spec: &BackendSpec<'_>) -> String {
    match parse_config(spec) {
        Ok(config) => {
            let inner = Registry::global()
                .label(&config.inner_spec)
                .unwrap_or_else(|_| config.inner_spec.clone());
            format!("Sharded {}x {}", config.shards, inner)
        }
        Err(_) => format!("Sharded[{}]", spec.raw),
    }
}

/// Parses the `cores` argument grammar: `<n>` or `<n>:<inner-spec>`.
/// Returns the router config plus the inner spec string.
fn parse_cores(spec: &BackendSpec<'_>) -> Result<(CoreRouterConfig, String), PmaError> {
    let (count, inner) = match spec.arg {
        None => (None, DEFAULT_CORES_INNER_SPEC),
        Some(arg) => match arg.split_once(':') {
            Some((n, rest)) => (Some(n.trim()), rest.trim()),
            None => (Some(arg.trim()), DEFAULT_CORES_INNER_SPEC),
        },
    };
    let mut config = CoreRouterConfig::default();
    if let Some(n) = count {
        config.workers = n.parse().map_err(|_| {
            PmaError::invalid(
                "backend_spec",
                format!("`{}`: worker count `{n}` is not an integer", spec.raw),
            )
        })?;
    }
    if inner.is_empty() {
        return Err(PmaError::invalid(
            "backend_spec",
            format!("`{}`: empty inner spec", spec.raw),
        ));
    }
    if inner == "cores" || inner.starts_with("cores:") {
        // A router inside a router would ship every op across two queues
        // for no routing gain.
        return Err(PmaError::invalid(
            "backend_spec",
            format!("`{}`: `cores` cannot nest inside `cores`", spec.raw),
        ));
    }
    Ok((config, inner.to_string()))
}

fn build_cores(
    registry: &Registry,
    spec: &BackendSpec<'_>,
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    let (config, inner_spec) = parse_cores(spec)?;
    let inner = registry.build(&inner_spec)?;
    Ok(Arc::new(CoreRouter::new(config, inner)?))
}

/// Native bulk loader: the inner structure is bulk-loaded through its own
/// native loader, then wrapped behind the router (the load happens before
/// any worker can ship, so no ordering interplay exists).
fn build_loaded_cores(
    registry: &Registry,
    spec: &BackendSpec<'_>,
    items: &[(Key, Value)],
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    let (config, inner_spec) = parse_cores(spec)?;
    let inner = registry.build_loaded(&inner_spec, items)?;
    Ok(Arc::new(CoreRouter::new(config, inner)?))
}

/// The inner byte spec used when a `bsharded` spec does not name one.
pub const DEFAULT_BYTE_INNER_SPEC: &str = "bpma:128";

/// Parses the `bsharded` argument grammar: `<n>` or `<n>:<inner-byte-spec>`.
fn parse_byte_config(spec: &BackendSpec<'_>) -> Result<ByteShardConfig, PmaError> {
    let (count, inner) = match spec.arg {
        None => (None, DEFAULT_BYTE_INNER_SPEC),
        Some(arg) => match arg.split_once(':') {
            Some((n, rest)) => (Some(n.trim()), rest.trim()),
            None => (Some(arg.trim()), DEFAULT_BYTE_INNER_SPEC),
        },
    };
    let shards = match count {
        None => DEFAULT_SHARDS,
        Some(n) => n.parse().map_err(|_| {
            PmaError::invalid(
                "backend_spec",
                format!("`{}`: shard count `{n}` is not an integer", spec.raw),
            )
        })?,
    };
    Ok(ByteShardConfig {
        shards,
        inner_spec: inner.to_string(),
    })
}

fn build_bsharded(
    registry: &Registry,
    spec: &BackendSpec<'_>,
) -> Result<Arc<dyn ConcurrentByteMap>, PmaError> {
    Ok(Arc::new(ShardedByteMap::new(
        parse_byte_config(spec)?,
        registry,
    )?))
}

fn build_loaded_bsharded(
    registry: &Registry,
    spec: &BackendSpec<'_>,
    items: &[(Vec<u8>, Value)],
) -> Result<Arc<dyn ConcurrentByteMap>, PmaError> {
    Ok(Arc::new(ShardedByteMap::from_sorted_bytes(
        parse_byte_config(spec)?,
        registry,
        items,
    )?))
}

fn label_bsharded(spec: &BackendSpec<'_>) -> String {
    match parse_byte_config(spec) {
        Ok(config) => {
            let inner = Registry::global()
                .byte_label(&config.inner_spec)
                .unwrap_or_else(|_| config.inner_spec.clone());
            format!("ByteSharded {}x {}", config.shards, inner)
        }
        Err(_) => format!("ByteSharded[{}]", spec.raw),
    }
}

fn label_cores(spec: &BackendSpec<'_>) -> String {
    match parse_cores(spec) {
        Ok((config, inner_spec)) => {
            let inner = Registry::global()
                .label(&inner_spec)
                .unwrap_or_else(|_| inner_spec.clone());
            format!("Cores {}x {}", config.workers, inner)
        }
        Err(_) => format!("Cores[{}]", spec.raw),
    }
}

/// Registers the `sharded` and `cores` backends. Inner specs resolve
/// through [`Registry::global`], so the providers of the inner structures
/// (e.g. `pma_core::register_backends`) must be installed there as well.
pub fn register_backends(registry: &Registry) {
    registry.register(BackendDef {
        name: "sharded",
        description: "range-sharded engine over N inner instances; \
                      arg = <n>[:<inner-spec>] (default 8:pma-batch:100)",
        label: label_sharded,
        build: build_sharded,
        build_loaded: Some(build_loaded_sharded),
    });
    registry.register(BackendDef {
        name: "cores",
        description: "thread-per-core router shipping ops to N pinned workers \
                      over an inner structure; arg = <n>[:<inner-spec>] \
                      (default sharded:8:pma-batch:100)",
        label: label_cores,
        build: build_cores,
        build_loaded: Some(build_loaded_cores),
    });
    registry.register_bytes(ByteBackendDef {
        name: "bsharded",
        description: "range-sharded engine over N byte-keyed inner instances \
                      routed by byte fences; arg = <n>[:<inner-byte-spec>] \
                      (default 8:bpma:128)",
        label: label_bsharded,
        build: build_bsharded,
        build_loaded: Some(build_loaded_bsharded),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> &'static Registry {
        pma_core::register_backends(Registry::global());
        register_backends(Registry::global());
        Registry::global()
    }

    #[test]
    fn spec_grammar_roundtrip() {
        let registry = registry();
        for (spec, shards) in [
            ("sharded", DEFAULT_SHARDS),
            ("sharded:4", 4),
            ("sharded:2:pma-batch:1", 2),
        ] {
            let map = registry.build(spec).unwrap();
            for k in 0..300i64 {
                map.insert(k * 1_000_003, k);
            }
            map.flush();
            assert_eq!(map.len(), 300, "{spec}");
            assert_eq!(map.scan_all().count, 300, "{spec}");
            let parsed = parse_config(&BackendSpec::parse(spec)).unwrap();
            assert_eq!(parsed.shards, shards, "{spec}");
        }
    }

    #[test]
    fn labels_name_count_and_inner() {
        let registry = registry();
        assert_eq!(
            registry.label("sharded:4:pma-batch:100").unwrap(),
            "Sharded 4x PMA Batch 100ms"
        );
        assert_eq!(
            registry.label("sharded").unwrap(),
            "Sharded 8x PMA Batch 100ms"
        );
    }

    #[test]
    fn bulk_load_dispatches_to_the_native_loader() {
        let registry = registry();
        let items: Vec<(i64, i64)> = (0..5_000i64).map(|k| (k * 3, -k)).collect();
        let map = registry
            .build_loaded("sharded:4:pma-batch:1", &items)
            .unwrap();
        assert_eq!(map.len(), 5_000);
        assert_eq!(map.get(300), Some(-100));
        assert_eq!(map.scan_all().count, 5_000);
    }

    #[test]
    fn composes_inside_a_local_registry_without_global_state() {
        // The inner spec must resolve against the registry that dispatched
        // the build — a purely local registry works end to end, including
        // the splits the inner definition is captured for.
        let local = Registry::new();
        pma_core::register_backends(&local);
        register_backends(&local);
        let map = local.build("sharded:2:pma-batch:1").unwrap();
        for k in 0..500i64 {
            map.insert(k, k);
        }
        map.flush();
        assert_eq!(map.len(), 500);
        assert_eq!(map.scan_all().count, 500);
        let loaded = local
            .build_loaded("sharded:3:pma-sync", &[(1, 10), (2, 20), (3, 30)])
            .unwrap();
        assert_eq!(loaded.len(), 3);
        // An inner spec the local registry does not know is rejected even if
        // some other registry (e.g. the global one) would resolve it.
        let bare = Registry::new();
        register_backends(&bare);
        assert!(bare.build("sharded:2:pma-batch:1").is_err());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let registry = registry();
        assert!(registry.build("sharded:0").is_err());
        assert!(registry.build("sharded:abc").is_err());
        assert!(registry.build("sharded:2:sharded:2:pma-sync").is_err());
        assert!(registry.build("sharded:2:warp-drive").is_err());
    }

    #[test]
    fn cores_spec_grammar_roundtrip() {
        let registry = registry();
        for spec in [
            "cores",
            "cores:2",
            "cores:2:sharded:2:pma-batch:1",
            "cores:4:pma-sync",
        ] {
            let map = registry.build(spec).unwrap();
            for k in 0..300i64 {
                map.insert(k * 1_000_003, k);
            }
            map.flush();
            assert_eq!(map.len(), 300, "{spec}");
            assert_eq!(map.scan_all().count, 300, "{spec}");
            assert_eq!(map.get(1_000_003), Some(1), "{spec}");
        }
    }

    #[test]
    fn cores_labels_name_workers_and_inner() {
        let registry = registry();
        assert_eq!(
            registry.label("cores:2:sharded:4:pma-batch:100").unwrap(),
            "Cores 2x Sharded 4x PMA Batch 100ms"
        );
        assert_eq!(
            registry.label("cores:2:pma-batch:100").unwrap(),
            "Cores 2x PMA Batch 100ms"
        );
    }

    #[test]
    fn cores_bulk_load_dispatches_to_the_inner_native_loader() {
        let registry = registry();
        let items: Vec<(i64, i64)> = (0..5_000i64).map(|k| (k * 3, -k)).collect();
        let map = registry
            .build_loaded("cores:2:sharded:4:pma-batch:1", &items)
            .unwrap();
        assert_eq!(map.len(), 5_000);
        assert_eq!(map.get(300), Some(-100));
        assert_eq!(map.scan_all().count, 5_000);
    }

    #[test]
    fn invalid_cores_specs_are_rejected() {
        let registry = registry();
        assert!(registry.build("cores:0").is_err());
        assert!(registry.build("cores:abc").is_err());
        assert!(registry.build("cores:2:cores:2:pma-sync").is_err());
        assert!(registry.build("cores:2:warp-drive").is_err());
    }

    #[test]
    fn bsharded_spec_grammar_roundtrip() {
        let registry = registry();
        for spec in ["bsharded", "bsharded:4", "bsharded:2:bpma:16"] {
            let map = registry.build_bytes(spec).unwrap();
            for i in 0..200 {
                map.insert(format!("user:{i:04}").as_bytes(), i);
            }
            assert_eq!(map.len(), 200, "{spec}");
            assert_eq!(map.scan_all().count, 200, "{spec}");
            assert_eq!(map.prefix_stats(b"user:01").count, 100, "{spec}");
        }
        let items: Vec<(Vec<u8>, i64)> = (0..500)
            .map(|i| (format!("k{i:06}").into_bytes(), i))
            .collect();
        let loaded = registry
            .build_bytes_loaded("bsharded:4:bpma:32", &items)
            .unwrap();
        assert_eq!(loaded.len(), 500);
        assert_eq!(loaded.get(b"k000123"), Some(123));
    }

    #[test]
    fn bsharded_labels_name_count_and_inner() {
        let registry = registry();
        assert_eq!(
            registry.byte_label("bsharded:4:bpma:128").unwrap(),
            "ByteSharded 4x BytePMA chunk=128"
        );
    }

    #[test]
    fn invalid_bsharded_specs_are_rejected() {
        let registry = registry();
        assert!(registry.build_bytes("bsharded:0").is_err());
        assert!(registry.build_bytes("bsharded:abc").is_err());
        assert!(registry.build_bytes("bsharded:2:bsharded:2:bpma").is_err());
        assert!(registry.build_bytes("bsharded:2:warp-drive").is_err());
    }
}
