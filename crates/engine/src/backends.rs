//! Registry entry for the range-sharded engine.
//!
//! [`register_backends`] installs the `sharded` backend into a [`Registry`];
//! it is then constructible by spec string without any consumer naming the
//! concrete type:
//!
//! ```text
//! sharded[:<n>[:<inner-spec>]]
//! ```
//!
//! `<n>` is the initial shard count (default 8) and `<inner-spec>` is the
//! registry spec each shard instantiates (default `pma-batch:100`; it may
//! itself contain colons, e.g. `sharded:8:pma-batch:100` or
//! `sharded:4:btree:8k`). Inner specs are resolved against the **same
//! registry that dispatched the build** (its definition is captured once at
//! construction), so a backend set registered into a local [`Registry`]
//! composes without any global state; labels fall back to
//! [`Registry::global`] only for rendering the inner name. Nested `sharded`
//! inner specs are rejected.

use std::sync::Arc;

use pma_common::registry::{BackendDef, BackendSpec, Registry};
use pma_common::{ConcurrentMap, Key, PmaError, Value};

use crate::sharded::{ShardedConfig, ShardedMap};

/// The inner spec used when the spec string does not name one.
pub const DEFAULT_INNER_SPEC: &str = "pma-batch:100";

/// The shard count used when the spec string does not name one.
pub const DEFAULT_SHARDS: usize = 8;

/// Parses the `sharded` argument grammar: `<n>` or `<n>:<inner-spec>`.
fn parse_config(spec: &BackendSpec<'_>) -> Result<ShardedConfig, PmaError> {
    let (count, inner) = match spec.arg {
        None => (None, DEFAULT_INNER_SPEC),
        Some(arg) => match arg.split_once(':') {
            Some((n, rest)) => (Some(n.trim()), rest.trim()),
            None => (Some(arg.trim()), DEFAULT_INNER_SPEC),
        },
    };
    let shards = match count {
        None => DEFAULT_SHARDS,
        Some(n) => n.parse().map_err(|_| {
            PmaError::invalid(
                "backend_spec",
                format!("`{}`: shard count `{n}` is not an integer", spec.raw),
            )
        })?,
    };
    let config = ShardedConfig {
        shards,
        inner_spec: inner.to_string(),
        ..ShardedConfig::default()
    };
    config.validate()?;
    Ok(config)
}

fn build_sharded(
    registry: &Registry,
    spec: &BackendSpec<'_>,
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    Ok(Arc::new(ShardedMap::new(parse_config(spec)?, registry)?))
}

/// Native bulk loader: fences adapt to the data and every shard is built
/// through its inner backend's native loader in one presized pass.
fn build_loaded_sharded(
    registry: &Registry,
    spec: &BackendSpec<'_>,
    items: &[(Key, Value)],
) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
    Ok(Arc::new(ShardedMap::from_sorted(
        parse_config(spec)?,
        registry,
        items,
    )?))
}

fn label_sharded(spec: &BackendSpec<'_>) -> String {
    match parse_config(spec) {
        Ok(config) => {
            let inner = Registry::global()
                .label(&config.inner_spec)
                .unwrap_or_else(|_| config.inner_spec.clone());
            format!("Sharded {}x {}", config.shards, inner)
        }
        Err(_) => format!("Sharded[{}]", spec.raw),
    }
}

/// Registers the `sharded` backend. Inner specs resolve through
/// [`Registry::global`], so the providers of the inner structures (e.g.
/// `pma_core::register_backends`) must be installed there as well.
pub fn register_backends(registry: &Registry) {
    registry.register(BackendDef {
        name: "sharded",
        description: "range-sharded engine over N inner instances; \
                      arg = <n>[:<inner-spec>] (default 8:pma-batch:100)",
        label: label_sharded,
        build: build_sharded,
        build_loaded: Some(build_loaded_sharded),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> &'static Registry {
        pma_core::register_backends(Registry::global());
        register_backends(Registry::global());
        Registry::global()
    }

    #[test]
    fn spec_grammar_roundtrip() {
        let registry = registry();
        for (spec, shards) in [
            ("sharded", DEFAULT_SHARDS),
            ("sharded:4", 4),
            ("sharded:2:pma-batch:1", 2),
        ] {
            let map = registry.build(spec).unwrap();
            for k in 0..300i64 {
                map.insert(k * 1_000_003, k);
            }
            map.flush();
            assert_eq!(map.len(), 300, "{spec}");
            assert_eq!(map.scan_all().count, 300, "{spec}");
            let parsed = parse_config(&BackendSpec::parse(spec)).unwrap();
            assert_eq!(parsed.shards, shards, "{spec}");
        }
    }

    #[test]
    fn labels_name_count_and_inner() {
        let registry = registry();
        assert_eq!(
            registry.label("sharded:4:pma-batch:100").unwrap(),
            "Sharded 4x PMA Batch 100ms"
        );
        assert_eq!(
            registry.label("sharded").unwrap(),
            "Sharded 8x PMA Batch 100ms"
        );
    }

    #[test]
    fn bulk_load_dispatches_to_the_native_loader() {
        let registry = registry();
        let items: Vec<(i64, i64)> = (0..5_000i64).map(|k| (k * 3, -k)).collect();
        let map = registry
            .build_loaded("sharded:4:pma-batch:1", &items)
            .unwrap();
        assert_eq!(map.len(), 5_000);
        assert_eq!(map.get(300), Some(-100));
        assert_eq!(map.scan_all().count, 5_000);
    }

    #[test]
    fn composes_inside_a_local_registry_without_global_state() {
        // The inner spec must resolve against the registry that dispatched
        // the build — a purely local registry works end to end, including
        // the splits the inner definition is captured for.
        let local = Registry::new();
        pma_core::register_backends(&local);
        register_backends(&local);
        let map = local.build("sharded:2:pma-batch:1").unwrap();
        for k in 0..500i64 {
            map.insert(k, k);
        }
        map.flush();
        assert_eq!(map.len(), 500);
        assert_eq!(map.scan_all().count, 500);
        let loaded = local
            .build_loaded("sharded:3:pma-sync", &[(1, 10), (2, 20), (3, 30)])
            .unwrap();
        assert_eq!(loaded.len(), 3);
        // An inner spec the local registry does not know is rejected even if
        // some other registry (e.g. the global one) would resolve it.
        let bare = Registry::new();
        register_backends(&bare);
        assert!(bare.build("sharded:2:pma-batch:1").is_err());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let registry = registry();
        assert!(registry.build("sharded:0").is_err());
        assert!(registry.build("sharded:abc").is_err());
        assert!(registry.build("sharded:2:sharded:2:pma-sync").is_err());
        assert!(registry.build("sharded:2:warp-drive").is_err());
    }
}
