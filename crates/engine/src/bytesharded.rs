//! [`ShardedByteMap`]: range-sharding for byte-keyed backends.
//!
//! N inner [`ConcurrentByteMap`] instances behind a [`ByteFences`] directory
//! (registry spec `bsharded:<n>[:<inner-byte-spec>]`). Routing uses the
//! fences' first-8-byte heads on the SIMD `route` kernel with a scalar
//! tie-break — the same byte-routing path the `BytePma` chunk directory
//! uses, one level up.
//!
//! The shard layout is **static**: fresh maps cut the byte space uniformly
//! by first byte, and bulk loads cut at data percentiles with the same
//! duplicate-run guard as the u64 engine's `plan_shards` (a cut landing
//! inside a run of equal keys slides to the next key boundary, so
//! duplicate-heavy corpora produce fewer — never empty — shards). Dynamic
//! split/merge of byte shards is future work; the u64 engine's load monitor
//! shows the shape it would take.
//!
//! Prefix scans fan out only to the shards the prefix interval
//! `[p, prefix_upper_bound(p))` can touch, visiting them in fence order so
//! the global scan stays ordered.

use std::sync::Arc;

use pma_common::bytemap::{
    dedup_sorted_bytes_last_wins, ByteMemoryStats, ConcurrentByteMap, FrozenByteView,
};
use pma_common::registry::Registry;
use pma_common::simd::ByteFences;
use pma_common::{MaintenanceStats, PmaError, Value};

/// Configuration of a [`ShardedByteMap`].
#[derive(Debug, Clone)]
pub struct ByteShardConfig {
    /// Number of shards (1..=64).
    pub shards: usize,
    /// Registry spec of the inner byte backend each shard runs.
    pub inner_spec: String,
}

impl ByteShardConfig {
    fn validate(&self) -> Result<(), PmaError> {
        if self.shards == 0 || self.shards > 64 {
            return Err(PmaError::invalid(
                "shards",
                format!("shard count must be in 1..=64, got {}", self.shards),
            ));
        }
        if self.inner_spec.starts_with("bsharded") {
            return Err(PmaError::invalid(
                "inner_spec",
                "nesting bsharded inside bsharded is not supported".to_string(),
            ));
        }
        Ok(())
    }
}

/// Range-sharded composition of byte-keyed backends (see the module docs).
pub struct ShardedByteMap {
    fences: Arc<ByteFences>,
    shards: Vec<Arc<dyn ConcurrentByteMap>>,
}

impl ShardedByteMap {
    /// Builds an empty sharded map with uniform first-byte fences: shard `i`
    /// of `n` covers first bytes `[256*i/n, 256*(i+1)/n)`.
    pub fn new(config: ByteShardConfig, registry: &Registry) -> Result<Self, PmaError> {
        config.validate()?;
        let mut fences: Vec<Vec<u8>> = vec![Vec::new()];
        for i in 1..config.shards {
            fences.push(vec![(i * 256 / config.shards) as u8]);
        }
        let shards = (0..config.shards)
            .map(|_| registry.build_bytes(&config.inner_spec))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            fences: Arc::new(ByteFences::from_keys(&fences)),
            shards,
        })
    }

    /// Bulk-loads a key-sorted run (non-decreasing; later duplicates win),
    /// cutting shard fences at data percentiles. Cuts never land inside a
    /// run of equal keys, so duplicate-heavy input yields fewer shards
    /// rather than empty or fence-violating ones.
    pub fn from_sorted_bytes(
        config: ByteShardConfig,
        registry: &Registry,
        items: &[(Vec<u8>, Value)],
    ) -> Result<Self, PmaError> {
        config.validate()?;
        let items = dedup_sorted_bytes_last_wins(items);
        if items.is_empty() {
            return Self::new(config, registry);
        }
        let n = config.shards;
        let mut cuts: Vec<usize> = vec![0];
        for i in 1..n {
            let mut target = (i * items.len() / n).max(cuts[cuts.len() - 1] + 1);
            // The duplicate-run guard (defensive here: `items` is deduped,
            // but the layout contract must not depend on that).
            while target < items.len() && items[target].0 == items[target - 1].0 {
                target += 1;
            }
            if target >= items.len() {
                break;
            }
            cuts.push(target);
        }
        cuts.push(items.len());
        let mut fences: Vec<Vec<u8>> = vec![Vec::new()];
        let mut shards = Vec::with_capacity(cuts.len() - 1);
        for (j, w) in cuts.windows(2).enumerate() {
            let run = &items[w[0]..w[1]];
            if j > 0 {
                fences.push(run[0].0.clone());
            }
            shards.push(registry.build_bytes_loaded(&config.inner_spec, run)?);
        }
        Ok(Self {
            fences: Arc::new(ByteFences::from_keys(&fences)),
            shards,
        })
    }

    /// Number of shards actually installed (may be fewer than requested
    /// after a duplicate-heavy bulk load).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn route(&self, key: &[u8]) -> &Arc<dyn ConcurrentByteMap> {
        &self.shards[self.fences.route(key)]
    }
}

impl ConcurrentByteMap for ShardedByteMap {
    fn insert(&self, key: &[u8], value: Value) {
        self.route(key).insert(key, value);
    }

    fn remove(&self, key: &[u8]) -> Option<Value> {
        self.route(key).remove(key)
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        self.route(key).get(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
        let start = self.fences.route(lo);
        for idx in start..self.shards.len() {
            // A later shard whose fence is at or past `hi` cannot hold keys
            // below it; everything after is out of range too.
            if idx > start && hi.is_some_and(|hi| self.fences.fence(idx) >= hi) {
                break;
            }
            // Each shard holds only keys within its fence interval, so the
            // global bounds can be passed straight through; visiting shards
            // in fence order keeps the global scan ordered.
            self.shards[idx].range(lo, hi, visitor);
        }
    }

    fn insert_batch(&self, items: &[(Vec<u8>, Value)]) {
        // Forward maximal consecutive runs routing to the same shard, so a
        // sorted batch becomes one `insert_batch` per covered shard.
        let mut i = 0;
        while i < items.len() {
            let shard = self.fences.route(&items[i].0);
            let mut j = i + 1;
            while j < items.len() && self.fences.route(&items[j].0) == shard {
                j += 1;
            }
            self.shards[shard].insert_batch(&items[i..j]);
            i = j;
        }
    }

    fn flush(&self) {
        for shard in &self.shards {
            shard.flush();
        }
    }

    fn frozen(&self) -> Option<Box<dyn FrozenByteView>> {
        // Composes per-shard views captured in fence order. Each shard's
        // view is individually point-in-time; writes racing the capture may
        // land in a lower shard's view and miss a higher one's (the same
        // contract as scanning a sharded map while writing to it).
        let shards = self
            .shards
            .iter()
            .map(|s| s.frozen())
            .collect::<Option<Vec<_>>>()?;
        Some(Box::new(FrozenShardedBytes {
            fences: Arc::clone(&self.fences),
            shards,
        }))
    }

    fn memory_stats(&self) -> Option<ByteMemoryStats> {
        let mut total = ByteMemoryStats {
            entries: 0,
            heap_bytes: self.fences.heap_bytes(),
            key_bytes: 0,
        };
        for shard in &self.shards {
            total.merge(&shard.memory_stats()?);
        }
        Some(total)
    }

    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        let mut total = MaintenanceStats::default();
        let mut any = false;
        for shard in &self.shards {
            if let Some(stats) = shard.maintenance_stats() {
                total.merge(&stats);
                any = true;
            }
        }
        any.then_some(total)
    }

    fn name(&self) -> &'static str {
        "sharded-bytes"
    }
}

/// Composed frozen view over per-shard snapshots (see
/// [`ShardedByteMap::frozen`]).
struct FrozenShardedBytes {
    fences: Arc<ByteFences>,
    shards: Vec<Box<dyn FrozenByteView>>,
}

impl FrozenByteView for FrozenShardedBytes {
    fn get(&self, key: &[u8]) -> Option<Value> {
        self.shards[self.fences.route(key)].get(key)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn range(&self, lo: &[u8], hi: Option<&[u8]>, visitor: &mut dyn FnMut(&[u8], Value)) {
        let start = self.fences.route(lo);
        for idx in start..self.shards.len() {
            if idx > start && hi.is_some_and(|hi| self.fences.fence(idx) >= hi) {
                break;
            }
            self.shards[idx].range(lo, hi, visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pma_common::bytemap::ByteScanStats;

    fn registry() -> &'static Registry {
        let registry = Registry::global();
        pma_core::register_backends(registry);
        pma_baselines::register_backends(registry);
        registry
    }

    fn config(n: usize) -> ByteShardConfig {
        ByteShardConfig {
            shards: n,
            inner_spec: "bpma:16".to_string(),
        }
    }

    fn url(i: usize) -> Vec<u8> {
        format!("https://example.com/users/{i:05}").into_bytes()
    }

    #[test]
    fn point_ops_route_across_byte_shards() {
        let map = ShardedByteMap::new(config(4), registry()).unwrap();
        let keys: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            vec![0x01],
            b"AAA".to_vec(),
            b"mmm".to_vec(),
            vec![0xFE, 0xFF],
        ];
        for (i, key) in keys.iter().enumerate() {
            map.insert(key, i as Value);
        }
        assert_eq!(map.len(), keys.len());
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(map.get(key), Some(i as Value), "key {key:?}");
        }
        assert_eq!(map.remove(b"AAA"), Some(2));
        assert_eq!(map.len(), keys.len() - 1);
    }

    #[test]
    fn cross_shard_scans_preserve_global_order() {
        let map = ShardedByteMap::new(config(8), registry()).unwrap();
        for i in 0..400 {
            // Spread first bytes across the whole range.
            let key = vec![(i % 256) as u8, (i / 256) as u8, i as u8];
            map.insert(&key, i as Value);
        }
        let mut last: Option<Vec<u8>> = None;
        let mut count = 0;
        map.range(&[], None, &mut |key, _| {
            if let Some(prev) = &last {
                assert!(prev.as_slice() < key, "global order violated");
            }
            last = Some(key.to_vec());
            count += 1;
        });
        assert_eq!(count, 400);
    }

    #[test]
    fn prefix_agrees_with_filtered_full_scan() {
        let map = ShardedByteMap::new(config(4), registry()).unwrap();
        for i in 0..300 {
            map.insert(&url(i), i as Value);
            map.insert(format!("user:{i:04}").as_bytes(), i as Value);
        }
        for prefix in [
            &b"user:00"[..],
            b"https://example.com/users/000",
            b"",
            b"zzz",
        ] {
            let direct = map.prefix_stats(prefix);
            let mut filtered = ByteScanStats::default();
            map.range(&[], None, &mut |key, value| {
                if key.starts_with(prefix) {
                    filtered.visit(key, value);
                }
            });
            assert_eq!(direct, filtered, "prefix {prefix:?}");
        }
    }

    #[test]
    fn bulk_load_cuts_data_percentile_fences() {
        let items: Vec<(Vec<u8>, Value)> = (0..256).map(|i| (url(i), i as Value)).collect();
        let map = ShardedByteMap::from_sorted_bytes(config(4), registry(), &items).unwrap();
        assert_eq!(map.shard_count(), 4);
        assert_eq!(map.len(), 256);
        // Every shard carries a roughly equal cut of the skewed key space.
        for shard in &map.shards {
            assert!(shard.len() >= 32, "unbalanced shard: {}", shard.len());
        }
        assert_eq!(map.get(&url(200)), Some(200));
        assert_eq!(map.scan_all().count, 256);
    }

    #[test]
    fn duplicate_heavy_bulk_load_produces_no_empty_shards() {
        // 90% one key: percentile cuts all land inside the duplicate run.
        let mut items: Vec<(Vec<u8>, Value)> = vec![(b"dup".to_vec(), 0); 90];
        for i in 0..10 {
            items.push((format!("tail{i}").into_bytes(), i as Value));
        }
        items.sort();
        let map = ShardedByteMap::from_sorted_bytes(config(4), registry(), &items).unwrap();
        assert!(map.shard_count() >= 1);
        for shard in &map.shards {
            assert!(!shard.is_empty(), "empty shard from duplicate-heavy load");
        }
        assert_eq!(map.len(), 11, "one dup survivor + ten tails");
        assert_eq!(map.scan_all().count, 11);
    }

    #[test]
    fn frozen_composes_shard_views() {
        let items: Vec<(Vec<u8>, Value)> = (0..64).map(|i| (url(i), i as Value)).collect();
        let map = ShardedByteMap::from_sorted_bytes(config(4), registry(), &items).unwrap();
        let frozen = map.frozen().expect("bpma shards support frozen()");
        map.insert(b"zzz", -1);
        assert_eq!(frozen.len(), 64);
        assert_eq!(frozen.get(b"zzz"), None);
        assert_eq!(frozen.prefix_stats(b"https://").count, 64);
    }

    #[test]
    fn memory_stats_aggregate_across_shards() {
        let items: Vec<(Vec<u8>, Value)> = (0..128).map(|i| (url(i), i as Value)).collect();
        let map = ShardedByteMap::from_sorted_bytes(config(4), registry(), &items).unwrap();
        let mem = map.memory_stats().unwrap();
        assert_eq!(mem.entries, 128);
        assert_eq!(mem.key_bytes, 128 * url(0).len());
        assert!(mem.heap_bytes > 0);
    }

    #[test]
    fn nested_and_oversized_configs_are_rejected() {
        assert!(ShardedByteMap::new(
            ByteShardConfig {
                shards: 2,
                inner_spec: "bsharded:2:bpma".to_string(),
            },
            registry(),
        )
        .is_err());
        assert!(ShardedByteMap::new(config(0), registry()).is_err());
        assert!(ShardedByteMap::new(config(65), registry()).is_err());
    }
}
