//! # The range-sharded engine
//!
//! The first layer of the workspace that composes *whole paper-instances*
//! instead of growing one: [`ShardedMap`] range-partitions the key domain
//! across N inner [`pma_common::ConcurrentMap`] instances — each with its own
//! rebalancer service and epoch domain — behind a fence-key shard directory.
//!
//! * Point operations binary-search the directory in `O(log S)` and run
//!   entirely inside one shard.
//! * Ordered scans (`scan_all`, `scan_range`, `range`) merge the per-shard
//!   ordered streams; because the ranges are disjoint and ascending, the
//!   k-way merge degenerates to visiting shards in directory order, and the
//!   stats-folding scans run the per-shard streams concurrently.
//! * `insert_batch`/bulk loading split the input at the shard fences and
//!   ingest per-shard in parallel through the inner native batch/load paths.
//! * A load monitor splits hot shards and merges cold neighbours
//!   **copy-on-write**: the replacement shards are built from an ordered
//!   live-scan while writers keep landing (their concurrent delta is
//!   captured in a striped op log and folded in under a short final fence),
//!   then published by atomically swapping the directory — exactly the
//!   paper's §3.4 resize protocol (single entry pointer + epoch garbage
//!   collection). Hysteresis on the monitor's thresholds prevents
//!   split↔merge thrash when load hovers at a boundary.
//! * `snapshot()` pins one directory generation for its whole lifetime, so
//!   multi-call scans stay consistent across concurrent splits/merges.
//!
//! The engine registers in the backend registry as
//! `sharded:<n>:<inner-spec>` (see [`backends`]), so every driver, bench and
//! test that selects structures by spec string can run it unchanged.
//!
//! ## Quick start
//!
//! ```
//! use pma_common::{ConcurrentMap, Registry};
//!
//! pma_core::register_backends(Registry::global());
//! pma_engine::register_backends(Registry::global());
//!
//! let map = Registry::global().build("sharded:4:pma-batch:1").unwrap();
//! map.insert(7, 70);
//! map.insert(-7, -70);
//! assert_eq!(map.get(7), Some(70));
//! assert_eq!(map.scan_all().count, 2);
//! ```

#![warn(missing_docs)]

pub mod affinity;
pub mod backends;
pub mod bytesharded;
mod merge;
pub mod router;
pub mod sharded;
pub mod stats;

pub use backends::register_backends;
pub use bytesharded::{ByteShardConfig, ShardedByteMap};
pub use router::{CoreRouter, CoreRouterConfig, CoreRouterStats, OverloadPolicy};
pub use sharded::{ShardSnapshot, ShardedConfig, ShardedFrozen, ShardedMap};
pub use stats::{EngineStats, EngineStatsSnapshot, ShardedStats};
