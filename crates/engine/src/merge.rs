//! Block-at-a-time k-way ordered merge over per-source cursors.
//!
//! The sharded engine's cross-shard scans must present the per-shard ordered
//! streams as one globally ordered stream. Element-at-a-time merging (one
//! heap pop and one virtual `range` callback per element) is the classic way
//! and the classic bottleneck; this module merges whole **sorted blocks**
//! instead:
//!
//! * each source is wrapped in a [`BlockCursor`] that refills a local buffer
//!   through [`ConcurrentMap::collect_block`] — the structure appends whole
//!   segment runs with the SIMD run-copy kernel and cuts at its natural
//!   block boundary (the concurrent PMA cuts at gate fences);
//! * a classic [`LoserTree`] tournament ranks the cursor heads; the winner
//!   does not emit one element but its entire buffered prefix up to the
//!   runner-up's head key — computed branchlessly with the vectorised
//!   counting kernel — so per-element work collapses into `memcpy`-shaped
//!   run emission, and tournament replays happen once per *run*, not once
//!   per element.
//!
//! The shard streams are disjoint in key space, which makes the runs as
//! large as the blocks themselves; the merge stays correct for arbitrarily
//! interleaved sources (ties break toward the lower source index, keeping
//! the emission order deterministic).

use pma_common::{simd, ConcurrentMap, Key, Value};

/// Minimum elements a cursor refill asks its source for. One PMA gate holds
/// `segments_per_gate * segment_capacity` slots (512 by default), so a block
/// of this size spans a handful of gates — large enough to amortise latch
/// traffic and tournament replays, small enough to stay cache-resident.
pub(crate) const MERGE_BLOCK: usize = 4096;

/// A buffered ordered cursor over one source's `[lo, hi]` range.
struct BlockCursor<'a> {
    map: &'a dyn ConcurrentMap,
    hi: Key,
    /// Where the next refill resumes; `None` once the source is exhausted.
    next_lo: Option<Key>,
    keys: Vec<Key>,
    values: Vec<Value>,
    pos: usize,
}

impl<'a> BlockCursor<'a> {
    fn new(map: &'a dyn ConcurrentMap, lo: Key, hi: Key) -> Self {
        Self {
            map,
            hi,
            next_lo: Some(lo),
            keys: Vec::new(),
            values: Vec::new(),
            pos: 0,
        }
    }

    /// Ensures the buffer holds an unconsumed element, pulling the next
    /// block from the source if needed. Returns `false` when exhausted.
    fn refill(&mut self) -> bool {
        while self.pos >= self.keys.len() {
            let Some(lo) = self.next_lo else {
                return false;
            };
            self.keys.clear();
            self.values.clear();
            self.pos = 0;
            self.next_lo =
                self.map
                    .collect_block(lo, self.hi, MERGE_BLOCK, &mut self.keys, &mut self.values);
        }
        true
    }

    /// Smallest unconsumed key, `None` when exhausted (buffer already
    /// refilled by [`BlockCursor::refill`]).
    #[inline]
    fn head(&self) -> Option<Key> {
        self.keys.get(self.pos).copied()
    }
}

/// Array-backed tournament (loser) tree over `k` cursor heads.
///
/// `tree[1..k]` stores the *loser* of the match played at each internal
/// node, `tree[0]` the overall winner. After the winner's head changes only
/// its root path is replayed — `O(log k)` — and the losers stored on that
/// path include the runner-up, which bounds how far the winner may emit
/// without another tournament.
pub(crate) struct LoserTree {
    k: usize,
    tree: Vec<usize>,
}

/// Ranks two cursor heads: exhausted (`None`) loses to everything and ties
/// break toward the lower source index, so the merge order is deterministic.
#[inline]
fn beats(a: Option<Key>, ia: usize, b: Option<Key>, ib: usize) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x < y || (x == y && ia < ib),
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => ia < ib,
    }
}

impl LoserTree {
    /// Builds the tournament from the initial heads.
    pub(crate) fn new(heads: &[Option<Key>]) -> Self {
        let k = heads.len();
        assert!(k >= 1, "a merge needs at least one source");
        let mut tree = vec![usize::MAX; k];
        // Bottom-up construction over the implicit array tournament: leaves
        // live at positions `k..2k`, node `n` plays the winners of `2n` and
        // `2n + 1`, keeps the loser and forwards the winner.
        let mut winners = vec![usize::MAX; 2 * k];
        for (i, slot) in winners[k..].iter_mut().enumerate() {
            *slot = i;
        }
        for node in (1..k).rev() {
            let (a, b) = (winners[2 * node], winners[2 * node + 1]);
            if beats(heads[b], b, heads[a], a) {
                winners[node] = b;
                tree[node] = a;
            } else {
                winners[node] = a;
                tree[node] = b;
            }
        }
        // With one source the single leaf sits at position 1 and wins
        // unopposed, so this assignment covers every k >= 1.
        tree[0] = winners[1];
        Self { k, tree }
    }

    /// The current overall winner (smallest live head).
    #[inline]
    pub(crate) fn winner(&self) -> usize {
        self.tree[0]
    }

    /// Replays the tournament along `leaf`'s root path after its head
    /// changed.
    pub(crate) fn replay(&mut self, leaf: usize, heads: &[Option<Key>]) {
        let mut winner = leaf;
        let mut node = (leaf + self.k) / 2;
        while node >= 1 {
            let opponent = self.tree[node];
            if opponent != usize::MAX && beats(heads[opponent], opponent, heads[winner], winner) {
                self.tree[node] = winner;
                winner = opponent;
            }
            node /= 2;
        }
        self.tree[0] = winner;
    }

    /// Head of the winner's strongest live opponent — the losers on the
    /// winner's root path include the overall runner-up. `None` means no
    /// other source is live: the winner may drain unconditionally.
    pub(crate) fn runner_up_head(&self, heads: &[Option<Key>]) -> Option<Key> {
        let mut bound: Option<Key> = None;
        let mut node = (self.tree[0] + self.k) / 2;
        while node >= 1 {
            let opponent = self.tree[node];
            if opponent != usize::MAX {
                if let Some(h) = heads[opponent] {
                    bound = Some(match bound {
                        Some(b) => b.min(h),
                        None => h,
                    });
                }
            }
            node /= 2;
        }
        bound
    }
}

/// Merges the ordered streams of `sources` (each clamped to its `(lo, hi)`
/// range) into one globally ordered sequence of sorted runs, handed to
/// `emit` as parallel key/value slices. Runs arrive in ascending key order
/// and concatenate into the full merged stream.
pub(crate) fn merge_blocks(
    sources: &[(&dyn ConcurrentMap, Key, Key)],
    emit: &mut dyn FnMut(&[Key], &[Value]),
) {
    if sources.is_empty() {
        return;
    }
    let mut cursors: Vec<BlockCursor<'_>> = sources
        .iter()
        .map(|&(map, lo, hi)| BlockCursor::new(map, lo, hi))
        .collect();
    let mut heads: Vec<Option<Key>> = cursors
        .iter_mut()
        .map(|c| {
            c.refill();
            c.head()
        })
        .collect();
    let mut tree = LoserTree::new(&heads);
    loop {
        let w = tree.winner();
        if heads[w].is_none() {
            // The winner is exhausted: every source is.
            return;
        }
        let bound = tree.runner_up_head(&heads);
        let cursor = &mut cursors[w];
        // Drain the winner up to the runner-up's head, whole buffered runs
        // at a time (the winner's head is <= bound, so progress is
        // guaranteed).
        loop {
            let run = &cursor.keys[cursor.pos..];
            let len = match bound {
                Some(b) => simd::count_le(run, b),
                None => run.len(),
            };
            emit(
                &cursor.keys[cursor.pos..cursor.pos + len],
                &cursor.values[cursor.pos..cursor.pos + len],
            );
            cursor.pos += len;
            if !cursor.refill() {
                break;
            }
            match (cursor.head(), bound) {
                (Some(h), Some(b)) if h > b => break,
                _ => {}
            }
        }
        heads[w] = cursor.head();
        tree.replay(w, &heads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pma_common::ScanStats;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Minimal ordered map for exercising the merge (uses the trait's
    /// default single-block `collect_block`, unless `block` is set to force
    /// small multi-refill blocks).
    struct TestSource {
        inner: Mutex<BTreeMap<Key, Value>>,
        block: Option<usize>,
    }

    impl TestSource {
        fn new(items: &[(Key, Value)], block: Option<usize>) -> Self {
            Self {
                inner: Mutex::new(items.iter().copied().collect()),
                block,
            }
        }
    }

    impl ConcurrentMap for TestSource {
        fn insert(&self, key: Key, value: Value) {
            self.inner.lock().unwrap().insert(key, value);
        }
        fn remove(&self, key: Key) -> Option<Value> {
            self.inner.lock().unwrap().remove(&key)
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.inner.lock().unwrap().get(&key).copied()
        }
        fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }
        fn scan_all(&self) -> ScanStats {
            self.scan_range(Key::MIN, Key::MAX)
        }
        fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
            if lo > hi {
                return;
            }
            for (&k, &v) in self.inner.lock().unwrap().range(lo..=hi) {
                visitor(k, v);
            }
        }
        fn collect_block(
            &self,
            lo: Key,
            hi: Key,
            min_len: usize,
            keys: &mut Vec<Key>,
            values: &mut Vec<Value>,
        ) -> Option<Key> {
            if lo > hi {
                return None;
            }
            let min_len = self.block.unwrap_or(min_len).max(1);
            for (appended, (&k, &v)) in self.inner.lock().unwrap().range(lo..=hi).enumerate() {
                if appended >= min_len {
                    return Some(k);
                }
                keys.push(k);
                values.push(v);
            }
            None
        }
        fn name(&self) -> &'static str {
            "test-source"
        }
    }

    fn merged(sources: &[(&dyn ConcurrentMap, Key, Key)]) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        merge_blocks(sources, &mut |ks, vs| {
            out.extend(ks.iter().copied().zip(vs.iter().copied()));
        });
        out
    }

    #[test]
    fn single_source_streams_through() {
        let a = TestSource::new(&[(1, 10), (5, 50), (9, 90)], Some(2));
        let got = merged(&[(&a, Key::MIN, Key::MAX)]);
        assert_eq!(got, vec![(1, 10), (5, 50), (9, 90)]);
    }

    #[test]
    fn disjoint_sources_concatenate_in_order() {
        let a = TestSource::new(&[(1, 1), (2, 2)], Some(1));
        let b = TestSource::new(&[(10, 10), (11, 11)], Some(1));
        let c = TestSource::new(&[(5, 5)], None);
        let got = merged(&[
            (&b, Key::MIN, Key::MAX),
            (&a, Key::MIN, Key::MAX),
            (&c, Key::MIN, Key::MAX),
        ]);
        assert_eq!(got, vec![(1, 1), (2, 2), (5, 5), (10, 10), (11, 11)]);
    }

    #[test]
    fn interleaved_sources_merge_globally_sorted() {
        let a = TestSource::new(&(0..50).map(|i| (i * 2, i)).collect::<Vec<_>>(), Some(3));
        let b = TestSource::new(
            &(0..50).map(|i| (i * 2 + 1, -i)).collect::<Vec<_>>(),
            Some(7),
        );
        let got = merged(&[(&a, Key::MIN, Key::MAX), (&b, Key::MIN, Key::MAX)]);
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn ranges_clamp_each_source() {
        let a = TestSource::new(&[(1, 1), (4, 4), (8, 8)], Some(1));
        let b = TestSource::new(&[(2, 2), (5, 5), (9, 9)], Some(1));
        let got = merged(&[(&a, 2, 8), (&b, 2, 8)]);
        assert_eq!(got, vec![(2, 2), (4, 4), (5, 5), (8, 8)]);
    }

    #[test]
    fn empty_and_inverted_sources_are_fine() {
        let a = TestSource::new(&[], None);
        let b = TestSource::new(&[(3, 3)], None);
        assert_eq!(merged(&[(&a, Key::MIN, Key::MAX)]), vec![]);
        assert_eq!(
            merged(&[(&a, Key::MIN, Key::MAX), (&b, Key::MIN, Key::MAX)]),
            vec![(3, 3)]
        );
        assert_eq!(merged(&[(&b, 5, 1)]), vec![]);
        assert_eq!(merged(&[]), vec![]);
    }

    #[test]
    fn many_sources_randomised_against_reference() {
        // Deterministic pseudo-random interleaving across 7 sources with
        // duplicate keys *across* sources.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut reference: Vec<(Key, Value)> = Vec::new();
        let sources: Vec<TestSource> = (0..7)
            .map(|s| {
                let items: Vec<(Key, Value)> = (0..200)
                    .map(|_| ((next() % 500) as Key, s as Value))
                    .collect();
                let src = TestSource::new(&items, Some(1 + s % 5));
                for (&k, &v) in src.inner.lock().unwrap().iter() {
                    reference.push((k, v));
                }
                src
            })
            .collect();
        reference.sort_by_key(|&(k, _)| k);
        let refs: Vec<(&dyn ConcurrentMap, Key, Key)> = sources
            .iter()
            .map(|s| (s as &dyn ConcurrentMap, Key::MIN, Key::MAX))
            .collect();
        let got = merged(&refs);
        assert_eq!(got.len(), reference.len());
        // Keys must be globally non-decreasing and form the same multiset.
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut got_keys: Vec<Key> = got.iter().map(|&(k, _)| k).collect();
        let mut ref_keys: Vec<Key> = reference.iter().map(|&(k, _)| k).collect();
        got_keys.sort_unstable();
        ref_keys.sort_unstable();
        assert_eq!(got_keys, ref_keys);
    }

    #[test]
    fn loser_tree_tracks_winner_and_runner_up() {
        let heads = vec![Some(5i64), Some(2), Some(9), Some(2)];
        let tree = LoserTree::new(&heads);
        assert_eq!(tree.winner(), 1, "ties break toward the lower index");
        assert_eq!(tree.runner_up_head(&heads), Some(2));
        let heads = vec![Some(5i64), None, Some(9), None];
        let tree = LoserTree::new(&heads);
        assert_eq!(tree.winner(), 0);
        assert_eq!(tree.runner_up_head(&heads), Some(9));
        let heads = vec![None, None];
        let tree = LoserTree::new(&heads);
        assert!(heads[tree.winner()].is_none());
    }
}
