//! Thread-per-core front-end: shard-affine dispatch with cross-core op
//! shipping.
//!
//! [`CoreRouter`] extends the paper's §3.5 asynchronous combining one level
//! up: instead of any client thread touching any shard (paying cross-shard
//! cache bouncing and directory latch traffic at high thread counts), the
//! router pins `N` persistent worker threads — one per contiguous worker
//! key range — and client threads *ship* operations to the owning worker
//! through a bounded MPSC ingress queue. Routing reuses the SIMD fence
//! probe of the shard directory ([`pma_common::simd::route`]) over a fixed
//! fence array derived from the same uniform domain tiling the sharded
//! engine seeds its directory with, so a worker's ingress traffic maps onto
//! a stable shard group of the inner structure.
//!
//! The data flow is **route → ship → drain → owned apply**:
//!
//! * **route** — the client probes the worker fences with the SIMD kernel
//!   (`O(log W)`, branch-free tail) to find the owning worker;
//! * **ship** — point inserts are shipped fire-and-forget (§3.5's batch
//!   mode: the queue *is* the combining buffer), `get`/`remove` ship with a
//!   completion slot and wait (one-by-one mode), and `insert_batch` splits
//!   at the worker fences and ships whole runs with completion slots;
//! * **drain** — each worker drains its queue in runs (up to
//!   [`DRAIN_RUN`] ops per pass), coalescing consecutive inserts and
//!   shipped runs into one buffer that is applied through the inner map's
//!   `insert_batch` fast path before any read/remove/barrier in the run;
//! * **owned apply** — all mutations go through the inner structure's
//!   normal latched paths, so the engine's linearizability invariant
//!   (`late_replays == 0`) holds unchanged; the router adds ordering on
//!   top: a worker's queue is FIFO and a key always routes to the same
//!   worker, so same-key operations apply in ship order, and a `get`
//!   shipped after an insert of the same key observes it.
//!
//! **Visibility**: shipped `get`/`remove` give genuine read-your-writes.
//! FIFO shipping alone is not enough — a batch-mode inner may *park* a
//! coalesced run in a combining queue (acknowledged, ordered, but not yet
//! in any chunk), so the worker keeps a read overlay of every write it has
//! acknowledged since the inner last settled and answers sync ops from it
//! before falling through to the inner (sound because a worker is the sole
//! writer for its key range; the overlay is settled-and-cleared past a
//! fixed threshold). Aggregate reads (`len`, scans) bypass the
//! queues and keep the inner batch structures' deferred model;
//! [`ConcurrentMap::flush`] ships a barrier to every worker and then
//! flushes the inner map, after which everything acknowledged is applied —
//! exactly the promise the workload drivers rely on.
//!
//! **Overload** is explicit instead of hidden: the ingress queues are
//! bounded ([`CoreRouterConfig::queue_depth`]) and the
//! [`OverloadPolicy`] picks between blocking producers (counted in
//! `backpressure_waits`) and shedding via the typed
//! [`PmaError::Overloaded`] error on [`ConcurrentMap::try_insert`] — the
//! contract the open-loop workload driver measures sojourn and shed rates
//! against.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};
use pma_common::obs::{MetricSource, Observe};
use pma_common::{
    obs, simd, CombiningStats, ConcurrentMap, FrozenView, Key, MaintenanceStats, PmaError,
    ScanStats, Value,
};

use crate::sharded::uniform_bounds;

/// Maximum ops a worker takes out of its ingress queue per drain pass.
/// Bounds the latency of a sync op enqueued behind a long insert train
/// while keeping the per-pass overhead (span, buffer flush) amortised.
pub const DRAIN_RUN: usize = 1024;

/// Hard cap on worker threads (matches the sharded engine's shard cap — one
/// worker per shard group is the intended operating point).
const MAX_WORKERS: usize = 256;

/// Overlay size at which a worker settles the inner structure and clears
/// its read overlay. Bounds the overlay's memory (~a few MB per worker)
/// while amortising the settle to one `flush` per this many writes.
const OVERLAY_SETTLE: usize = 1 << 16;

/// What a producer experiences when the owning worker's bounded ingress
/// queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Producers block until the worker drains (closed-loop behaviour;
    /// every wait is counted in `backpressure_waits`).
    Block,
    /// `try_insert` returns [`PmaError::Overloaded`] instead of blocking
    /// (the op is dropped and counted in `ops_shed`); the infallible
    /// `insert` still blocks — it has no way to report the shed.
    Shed,
}

/// Configuration for [`CoreRouter::new`].
#[derive(Debug, Clone)]
pub struct CoreRouterConfig {
    /// Number of pinned worker threads (1..=256). Each owns a contiguous
    /// range of the key domain.
    pub workers: usize,
    /// Bounded depth of each worker's ingress queue (ops, >= 1).
    pub queue_depth: usize,
    /// What happens to producers when a queue is full.
    pub policy: OverloadPolicy,
    /// Whether workers attempt CPU pinning (`sched_setaffinity` on Linux,
    /// graceful no-op elsewhere). The `pinned_workers` stat reports how
    /// many pins the kernel accepted.
    pub pin: bool,
}

impl Default for CoreRouterConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            queue_depth: 4096,
            policy: OverloadPolicy::Block,
            pin: true,
        }
    }
}

impl CoreRouterConfig {
    fn validate(&self) -> Result<(), PmaError> {
        if self.workers == 0 || self.workers > MAX_WORKERS {
            return Err(PmaError::invalid(
                "workers",
                format!("must be in 1..={MAX_WORKERS}, got {}", self.workers),
            ));
        }
        if self.queue_depth == 0 {
            return Err(PmaError::invalid("queue_depth", "must be at least 1"));
        }
        Ok(())
    }
}

/// A completion slot: the rendezvous half of a sync ship. The producer
/// waits, the owning worker fills exactly once.
struct CompletionSlot<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> CompletionSlot<T> {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, value: T) {
        *self.slot.lock() = Some(value);
        self.ready.notify_all();
    }

    fn wait(&self) -> T {
        let mut slot = self.slot.lock();
        loop {
            if let Some(value) = slot.take() {
                return value;
            }
            self.ready.wait(&mut slot);
        }
    }
}

/// One operation shipped across cores to its owning worker.
enum ShippedOp {
    /// Fire-and-forget upsert (§3.5 batch mode: acknowledged at enqueue).
    Insert(Key, Value),
    /// Sync removal: the worker fills the slot with the previous value
    /// (resolved against its read overlay, so it is exact even when the
    /// inner structure would have delegated the delete).
    Remove(Key, Arc<CompletionSlot<Option<Value>>>),
    /// Sync lookup: FIFO behind earlier same-worker inserts and answered
    /// overlay-first, so it reads its own worker's writes even while the
    /// inner structure still holds them parked in a combining queue.
    Get(Key, Arc<CompletionSlot<Option<Value>>>),
    /// A whole per-worker batch run; the slot fills once the run is
    /// applied.
    Run(Vec<(Key, Value)>, Arc<CompletionSlot<()>>),
    /// Drain barrier: fills once everything shipped before it is applied.
    Barrier(Arc<CompletionSlot<()>>),
    /// Worker shutdown (sent by `Drop`, after all producers are gone).
    Stop,
}

/// Bounded MPSC ingress queue: a mutex-guarded ring with two condvars. The
/// workspace's crossbeam shim only ships unbounded channels, and a
/// hand-rolled queue is what gives the shed-or-block policies and the
/// depth gauge their exact semantics anyway.
struct IngressQueue {
    items: Mutex<VecDeque<ShippedOp>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl IngressQueue {
    fn new(capacity: usize) -> Self {
        Self {
            items: Mutex::new(VecDeque::with_capacity(capacity.min(DRAIN_RUN))),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocking push; returns whether the producer had to wait for space.
    fn push(&self, op: ShippedOp) -> bool {
        let mut items = self.items.lock();
        let mut waited = false;
        while items.len() >= self.capacity {
            waited = true;
            self.not_full.wait(&mut items);
        }
        items.push_back(op);
        drop(items);
        self.not_empty.notify_one();
        waited
    }

    /// Non-blocking push: hands the op back when the queue is full.
    fn try_push(&self, op: ShippedOp) -> Result<(), ShippedOp> {
        let mut items = self.items.lock();
        if items.len() >= self.capacity {
            return Err(op);
        }
        items.push_back(op);
        drop(items);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Cap-exempt push for control ops (barriers, shutdown): still FIFO —
    /// it appends like any other op — but never deadlocks against a full
    /// queue.
    fn push_control(&self, op: ShippedOp) {
        let mut items = self.items.lock();
        items.push_back(op);
        drop(items);
        self.not_empty.notify_one();
    }

    /// Blocks until at least one op is queued, then moves up to `max` ops
    /// into `out` in FIFO order.
    fn pop_run(&self, out: &mut Vec<ShippedOp>, max: usize) {
        let mut items = self.items.lock();
        while items.is_empty() {
            self.not_empty.wait(&mut items);
        }
        let n = items.len().min(max);
        out.extend(items.drain(..n));
        drop(items);
        // Many producers can be parked on distinct slots freed by one
        // drain; wake them all.
        self.not_full.notify_all();
    }

    fn depth(&self) -> usize {
        self.items.lock().len()
    }
}

/// Shared atomic counters of a [`CoreRouter`] (lock-free, relaxed: they are
/// diagnostics, not synchronisation).
#[derive(Default)]
struct RouterCounters {
    shipped_ops: AtomicU64,
    shipped_runs: AtomicU64,
    drained_batches: AtomicU64,
    coalesced_inserts: AtomicU64,
    backpressure_waits: AtomicU64,
    ops_shed: AtomicU64,
    pinned_workers: AtomicU64,
}

/// A point-in-time copy of a router's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreRouterStats {
    /// Point ops shipped to workers (inserts, removes, gets).
    pub shipped_ops: u64,
    /// Whole batch runs shipped (`insert_batch` fan-out).
    pub shipped_runs: u64,
    /// Ingress drain passes across all workers.
    pub drained_batches: u64,
    /// Inserts applied through coalesced `insert_batch` runs instead of
    /// point inserts (the cross-core combining win).
    pub coalesced_inserts: u64,
    /// Producer blocks on a full ingress queue (Block policy, or the
    /// infallible `insert` under Shed).
    pub backpressure_waits: u64,
    /// Ops rejected with [`PmaError::Overloaded`] (Shed policy).
    pub ops_shed: u64,
    /// Workers whose CPU pin the kernel accepted.
    pub pinned_workers: u64,
}

impl RouterCounters {
    fn snapshot(&self) -> CoreRouterStats {
        CoreRouterStats {
            shipped_ops: self.shipped_ops.load(Ordering::Relaxed),
            shipped_runs: self.shipped_runs.load(Ordering::Relaxed),
            drained_batches: self.drained_batches.load(Ordering::Relaxed),
            coalesced_inserts: self.coalesced_inserts.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            ops_shed: self.ops_shed.load(Ordering::Relaxed),
            pinned_workers: self.pinned_workers.load(Ordering::Relaxed),
        }
    }
}

impl MetricSource for CoreRouterStats {
    fn observe(&self, out: &mut dyn Observe) {
        out.counter("shipped_ops", self.shipped_ops);
        out.counter("shipped_runs", self.shipped_runs);
        out.counter("drained_batches", self.drained_batches);
        out.counter("coalesced_inserts", self.coalesced_inserts);
        out.counter("ingress_backpressure_waits", self.backpressure_waits);
        out.counter("ops_shed", self.ops_shed);
        out.gauge("pinned_workers", self.pinned_workers as f64);
    }
}

/// The thread-per-core dispatch front-end. See the [module docs](self).
pub struct CoreRouter {
    inner: Arc<dyn ConcurrentMap>,
    /// Worker lower fences (worker `w` owns keys in
    /// `[fences[w], fences[w+1])`), probed with the SIMD routing kernel.
    fences: simd::AlignedKeys,
    queues: Vec<Arc<IngressQueue>>,
    handles: Vec<JoinHandle<()>>,
    counters: Arc<RouterCounters>,
    policy: OverloadPolicy,
}

impl CoreRouter {
    /// Spawns the worker threads and wraps `inner` behind the shard-affine
    /// dispatch layer. Workers are persistent for the router's lifetime —
    /// like the sharded engine's ingest pool, because inner instances bind
    /// epoch slots per thread, a worker-per-call design would exhaust them.
    pub fn new(config: CoreRouterConfig, inner: Arc<dyn ConcurrentMap>) -> Result<Self, PmaError> {
        config.validate()?;
        let fences: Vec<Key> = uniform_bounds(config.workers)
            .into_iter()
            .map(|(lo, _)| lo)
            .collect();
        let counters = Arc::new(RouterCounters::default());
        let queues: Vec<Arc<IngressQueue>> = (0..config.workers)
            .map(|_| Arc::new(IngressQueue::new(config.queue_depth)))
            .collect();
        let handles = queues
            .iter()
            .enumerate()
            .map(|(worker, queue)| {
                let queue = Arc::clone(queue);
                let inner = Arc::clone(&inner);
                let counters = Arc::clone(&counters);
                let pin = config.pin;
                std::thread::Builder::new()
                    .name(format!("pma-core-worker-{worker}"))
                    .spawn(move || worker_loop(worker, pin, &queue, inner.as_ref(), &counters))
                    .expect("spawning a router worker thread")
            })
            .collect();
        Ok(Self {
            inner,
            fences: simd::AlignedKeys::from_slice(&fences),
            queues,
            handles,
            counters,
            policy: config.policy,
        })
    }

    /// Index of the worker owning `key` (SIMD fence probe, like the shard
    /// directory).
    #[inline]
    fn route(&self, key: Key) -> usize {
        simd::route(&self.fences, key)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// A point-in-time copy of the router's counters.
    pub fn stats(&self) -> CoreRouterStats {
        self.counters.snapshot()
    }

    /// Current total depth across all ingress queues.
    pub fn ingress_depth(&self) -> usize {
        self.queues.iter().map(|queue| queue.depth()).sum()
    }

    fn ship_blocking(&self, worker: usize, op: ShippedOp) {
        if self.queues[worker].push(op) {
            self.counters
                .backpressure_waits
                .fetch_add(1, Ordering::Relaxed);
        }
        self.counters.shipped_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Ships a sync op and waits for its completion under an `OpShip` span.
    fn ship_and_wait<T>(&self, worker: usize, op: ShippedOp, slot: &Arc<CompletionSlot<T>>) -> T {
        let _span = obs::span(obs::Category::OpShip, worker as u64);
        self.ship_blocking(worker, op);
        slot.wait()
    }
}

impl ConcurrentMap for CoreRouter {
    fn insert(&self, key: Key, value: Value) {
        let worker = self.route(key);
        self.ship_blocking(worker, ShippedOp::Insert(key, value));
    }

    fn try_insert(&self, key: Key, value: Value) -> Result<(), PmaError> {
        match self.policy {
            OverloadPolicy::Block => {
                self.insert(key, value);
                Ok(())
            }
            OverloadPolicy::Shed => {
                let worker = self.route(key);
                match self.queues[worker].try_push(ShippedOp::Insert(key, value)) {
                    Ok(()) => {
                        self.counters.shipped_ops.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }
                    Err(_rejected) => {
                        self.counters.ops_shed.fetch_add(1, Ordering::Relaxed);
                        Err(PmaError::Overloaded {
                            worker,
                            capacity: self.queues[worker].capacity,
                        })
                    }
                }
            }
        }
    }

    fn remove(&self, key: Key) -> Option<Value> {
        let worker = self.route(key);
        let slot = CompletionSlot::new();
        self.ship_and_wait(worker, ShippedOp::Remove(key, Arc::clone(&slot)), &slot)
    }

    fn get(&self, key: Key) -> Option<Value> {
        let worker = self.route(key);
        let slot = CompletionSlot::new();
        self.ship_and_wait(worker, ShippedOp::Get(key, Arc::clone(&slot)), &slot)
    }

    // Reads that aggregate across workers bypass the queues and hit the
    // inner structure directly: they see everything drained so far (the
    // deferred-visibility model of the inner batch structures; `flush`
    // makes it exact).
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn scan_all(&self) -> ScanStats {
        self.inner.scan_all()
    }

    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        self.inner.range(lo, hi, visitor)
    }

    fn scan_range(&self, lo: Key, hi: Key) -> ScanStats {
        self.inner.scan_range(lo, hi)
    }

    fn collect_range(&self, lo: Key, hi: Key) -> Vec<(Key, Value)> {
        self.inner.collect_range(lo, hi)
    }

    fn collect_block(
        &self,
        lo: Key,
        hi: Key,
        min_len: usize,
        keys: &mut Vec<Key>,
        values: &mut Vec<Value>,
    ) -> Option<Key> {
        self.inner.collect_block(lo, hi, min_len, keys, values)
    }

    fn insert_batch(&self, items: &[(Key, Value)]) {
        // Split at the worker fences (arrival order per key is preserved:
        // a key always routes to one worker) and ship whole runs with
        // completion slots — §3.5's async batch mode across cores. Waiting
        // for all runs keeps `insert_batch`'s at-return visibility... the
        // same as shipping the items one by one and flushing.
        let mut runs: Vec<Vec<(Key, Value)>> = vec![Vec::new(); self.queues.len()];
        for &(key, value) in items {
            runs[self.route(key)].push((key, value));
        }
        let mut pending = Vec::new();
        for (worker, run) in runs.into_iter().enumerate() {
            if run.is_empty() {
                continue;
            }
            let slot = CompletionSlot::new();
            let _span = obs::span(obs::Category::OpShip, worker as u64);
            if self.queues[worker].push(ShippedOp::Run(run, Arc::clone(&slot))) {
                self.counters
                    .backpressure_waits
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.counters.shipped_runs.fetch_add(1, Ordering::Relaxed);
            pending.push(slot);
        }
        for slot in pending {
            slot.wait();
        }
    }

    fn flush(&self) {
        // Barrier every worker (cap-exempt so a saturated queue cannot
        // deadlock the flusher), wait for all drains, then flush the inner
        // structure's own deferred machinery.
        let pending: Vec<_> = self
            .queues
            .iter()
            .map(|queue| {
                let slot = CompletionSlot::new();
                queue.push_control(ShippedOp::Barrier(Arc::clone(&slot)));
                slot
            })
            .collect();
        for slot in pending {
            slot.wait();
        }
        self.inner.flush();
    }

    fn combining_stats(&self) -> Option<CombiningStats> {
        self.inner.combining_stats()
    }

    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        self.inner.maintenance_stats()
    }

    fn frozen(&self) -> Option<Box<dyn FrozenView>> {
        // Settle the ingress queues first so the snapshot contains every
        // acknowledged op, mirroring the flush-before-freeze the drivers do.
        self.flush();
        self.inner.frozen()
    }

    fn observe_metrics(&self, out: &mut dyn obs::Observe) {
        self.inner.observe_metrics(out);
        self.counters.snapshot().observe(out);
        out.gauge("ingress_depth", self.ingress_depth() as f64);
        out.gauge("router_workers", self.queues.len() as f64);
    }

    fn name(&self) -> &'static str {
        "cores"
    }
}

impl Drop for CoreRouter {
    fn drop(&mut self) {
        // `&mut self` proves no producer can still ship; Stop is therefore
        // the last op each worker sees.
        for queue in &self.queues {
            queue.push_control(ShippedOp::Stop);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for CoreRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreRouter")
            .field("workers", &self.queues.len())
            .field("policy", &self.policy)
            .field("ingress_depth", &self.ingress_depth())
            .finish()
    }
}

/// The worker service loop: drain the ingress queue in runs, coalesce
/// insert trains into `insert_batch` applications, answer sync ops in FIFO
/// order, exit on `Stop`.
fn worker_loop(
    worker: usize,
    pin: bool,
    queue: &IngressQueue,
    inner: &dyn ConcurrentMap,
    counters: &RouterCounters,
) {
    if pin && crate::affinity::pin_current_thread(worker) {
        counters.pinned_workers.fetch_add(1, Ordering::Relaxed);
    }
    let mut batch: Vec<ShippedOp> = Vec::with_capacity(DRAIN_RUN);
    let mut run_buf: Vec<(Key, Value)> = Vec::new();
    let mut run_slots: Vec<Arc<CompletionSlot<()>>> = Vec::new();
    // Writes acknowledged since the inner last settled (`None` = removed).
    // A batch-mode inner may park an applied run in a combining queue —
    // ordered but not yet chunk-visible — so sync ops answer overlay-first;
    // the worker is the sole writer for its key range, which makes the
    // overlay authoritative for every key it holds.
    let mut overlay: HashMap<Key, Option<Value>> = HashMap::new();
    loop {
        batch.clear();
        queue.pop_run(&mut batch, DRAIN_RUN);
        let mut span = obs::span(obs::Category::IngressDrain, worker as u64);
        span.set_payload(batch.len() as u64);
        counters.drained_batches.fetch_add(1, Ordering::Relaxed);
        let mut stop = false;
        for op in batch.drain(..) {
            match op {
                ShippedOp::Insert(key, value) => {
                    overlay.insert(key, Some(value));
                    run_buf.push((key, value));
                }
                ShippedOp::Run(items, slot) => {
                    for &(key, value) in &items {
                        overlay.insert(key, Some(value));
                    }
                    run_buf.extend(items);
                    run_slots.push(slot);
                }
                // Sync ops flush the pending insert train first so FIFO
                // ship order is the apply order per key.
                ShippedOp::Remove(key, slot) => {
                    flush_coalesced(inner, &mut run_buf, &mut run_slots, counters);
                    let prev = match overlay.insert(key, None) {
                        Some(state) => state,
                        None => inner.get(key),
                    };
                    inner.remove(key);
                    slot.fill(prev);
                }
                ShippedOp::Get(key, slot) => {
                    flush_coalesced(inner, &mut run_buf, &mut run_slots, counters);
                    let result = match overlay.get(&key) {
                        Some(&state) => state,
                        None => inner.get(key),
                    };
                    slot.fill(result);
                }
                ShippedOp::Barrier(slot) => {
                    flush_coalesced(inner, &mut run_buf, &mut run_slots, counters);
                    slot.fill(());
                }
                ShippedOp::Stop => {
                    stop = true;
                    break;
                }
            }
        }
        flush_coalesced(inner, &mut run_buf, &mut run_slots, counters);
        if stop {
            return;
        }
        // Keep the overlay bounded: settle the inner (its queues drain, so
        // chunk state becomes authoritative again) and start a fresh one.
        if overlay.len() >= OVERLAY_SETTLE {
            inner.flush();
            overlay.clear();
        }
    }
}

/// Applies the coalesced insert train through the inner `insert_batch` fast
/// path (arrival order preserved — later duplicates win, as with point
/// inserts) and releases the completion slots of any shipped runs in it.
fn flush_coalesced(
    inner: &dyn ConcurrentMap,
    run_buf: &mut Vec<(Key, Value)>,
    run_slots: &mut Vec<Arc<CompletionSlot<()>>>,
    counters: &RouterCounters,
) {
    if !run_buf.is_empty() {
        counters
            .coalesced_inserts
            .fetch_add(run_buf.len() as u64, Ordering::Relaxed);
        inner.insert_batch(run_buf);
        run_buf.clear();
    }
    for slot in run_slots.drain(..) {
        slot.fill(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pma_common::Registry;

    fn router(workers: usize, queue_depth: usize, policy: OverloadPolicy) -> CoreRouter {
        pma_core::register_backends(Registry::global());
        let inner = Registry::global()
            .build("pma-batch:1")
            .expect("inner backend");
        CoreRouter::new(
            CoreRouterConfig {
                workers,
                queue_depth,
                policy,
                pin: true,
            },
            inner,
        )
        .expect("router")
    }

    #[test]
    fn point_ops_round_trip_through_workers() {
        let map = router(4, 64, OverloadPolicy::Block);
        for k in -100..100i64 {
            map.insert(k, k * 2);
        }
        // Shipped gets are FIFO behind the inserts: read-your-writes
        // without an explicit flush.
        assert_eq!(map.get(-100), Some(-200));
        assert_eq!(map.get(99), Some(198));
        assert_eq!(map.remove(0), Some(0));
        assert_eq!(map.get(0), None);
        map.flush();
        assert_eq!(map.len(), 199);
        assert_eq!(map.scan_all().count, 199);
        let stats = map.stats();
        assert!(stats.shipped_ops >= 203);
        assert!(stats.drained_batches > 0);
        assert!(stats.coalesced_inserts >= 200);
    }

    #[test]
    fn batch_runs_fan_out_across_workers() {
        let map = router(4, 256, OverloadPolicy::Block);
        let items: Vec<(Key, Value)> = (0..5_000).map(|k| (k as Key, k as Value)).collect();
        map.insert_batch(&items);
        // Run completion slots make the batch visible at return (plus the
        // inner flush for its own deferred machinery).
        map.flush();
        assert_eq!(map.len(), 5_000);
        assert_eq!(map.get(4_999), Some(4_999));
        assert!(map.stats().shipped_runs >= 1);
    }

    #[test]
    fn shed_policy_returns_typed_overload_errors() {
        let map = router(1, 2, OverloadPolicy::Shed);
        let mut accepted = 0u64;
        let mut shed = 0u64;
        for k in 0..5_000i64 {
            match map.try_insert(k, k) {
                Ok(()) => accepted += 1,
                Err(PmaError::Overloaded { worker, capacity }) => {
                    assert_eq!(worker, 0);
                    assert_eq!(capacity, 2);
                    shed += 1;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        map.flush();
        assert_eq!(accepted + shed, 5_000);
        assert_eq!(map.len() as u64, accepted, "exactly the accepted ops land");
        let stats = map.stats();
        assert_eq!(stats.ops_shed, shed);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        pma_core::register_backends(Registry::global());
        let inner = Registry::global()
            .build("pma-batch:1")
            .expect("inner backend");
        for config in [
            CoreRouterConfig {
                workers: 0,
                ..CoreRouterConfig::default()
            },
            CoreRouterConfig {
                workers: MAX_WORKERS + 1,
                ..CoreRouterConfig::default()
            },
            CoreRouterConfig {
                queue_depth: 0,
                ..CoreRouterConfig::default()
            },
        ] {
            assert!(CoreRouter::new(config, Arc::clone(&inner)).is_err());
        }
    }

    #[test]
    fn observe_metrics_exports_router_counters() {
        use pma_common::obs::Observations;
        let map = router(2, 64, OverloadPolicy::Block);
        map.insert(1, 1);
        map.flush();
        let mut sink = Observations::new();
        map.observe_metrics(&mut sink);
        let snapshot = sink.into_snapshot();
        let rendered = obs::metrics::render_prometheus(&snapshot);
        for metric in [
            "shipped_ops",
            "drained_batches",
            "ingress_backpressure_waits",
            "ops_shed",
            "ingress_depth",
            "router_workers",
            "pinned_workers",
        ] {
            assert!(rendered.contains(metric), "missing {metric}: {rendered}");
        }
    }
}
