//! The range-sharded engine: [`ShardedMap`] composes N inner
//! [`ConcurrentMap`] instances — each a *whole* paper-instance with its own
//! rebalancer service and epoch domain — behind a fence-key shard directory.
//!
//! # Why sharding
//!
//! The paper's concurrent PMA funnels every multi-gate rebalance through one
//! master/worker service (§3.3) and every resize through one entry pointer
//! (§3.4). A single instance therefore has one hot rebalancer, one epoch
//! domain and at most one resize in flight — a scalability ceiling under
//! write-heavy multi-core load. Range sharding multiplies all three: each
//! shard owns a disjoint key range `[lo, hi]` and runs its own service, so
//! rebalances, resizes and combining all proceed in parallel across shards.
//!
//! # Directory and routing
//!
//! The shard directory is an immutable, sorted array of `(fence, shard)`
//! entries covering the whole key domain; point operations binary-search it
//! in `O(log S)` and then run entirely inside one inner instance. The
//! directory is published through a single [`AtomicPtr`] and reclaimed with
//! the same epoch machinery the PMA uses for resizes
//! ([`pma_core::concurrent::epoch`]): readers pin, load, and never block a
//! re-publication. Every published directory carries a monotonically
//! increasing **generation**; [`ShardedMap::snapshot`] pins one generation
//! for the lifetime of the returned [`ShardSnapshot`], so a scan spanning
//! multiple calls can never observe a key twice or skip a fence-crossing
//! range when a concurrent split/merge re-publishes under it.
//!
//! # Ordered scans
//!
//! Because shards partition the key space into *disjoint ascending* ranges,
//! the k-way merge of the per-shard ordered streams reduces to visiting the
//! shards in directory order — each shard's stream is already sorted and the
//! fences guarantee stream `i` ends strictly below stream `i+1`.
//! [`ShardedMap::scan_all`]/[`ShardedMap::scan_range`] fold the per-shard
//! streams concurrently (the merge of [`ScanStats`] is order-insensitive)
//! while [`ShardedMap::range`] walks the covering shards sequentially so the
//! visitor observes the global ascending order. All three pin one directory
//! generation end to end.
//!
//! # Incremental splits and merges
//!
//! Splits and merges are **copy-on-write**, mirroring the paper's §3.4
//! resize protocol (build the new instance off to the side, fold in the
//! concurrent delta, publish atomically) instead of stopping the shard:
//!
//! 1. **Install fence** (microseconds of exclusive latch hold): a striped
//!    [`DeltaLog`] is hooked into the shard's write gate — from here on
//!    writers record into the log only. The inner combining queues are then
//!    settled *unfenced* (they can only shrink once the log is installed),
//!    leaving the live structure **quiescent**: the base copy cannot lose
//!    elements to a concurrent rebalance shifting them across the scan
//!    cursor, and the backlog drain is never charged to the write stall.
//! 2. **Copy phase** (writers live, recording): the shard's contents are
//!    collected with the ordered live-scan (`collect_range`, exact on the
//!    quiescent base) and the replacement halves are built with the
//!    presized bulk loader. Reads consult the log's per-key overlay before
//!    the base, so acknowledged-but-unfolded writes stay visible; per-key
//!    order is serialised by the log's stripe locks (see
//!    [`pma_core::concurrent::delta`]).
//! 3. **Chase rounds** (writers live, recording): the log is drained into
//!    the halves while writers keep appending, shrinking the final fenced
//!    drain, and the halves' combining queues are settled unfenced (the
//!    structural thread is their only writer before publication).
//! 4. **Final fence** (short exclusive latch hold): the log remnant is
//!    drained into the halves *while the shard's key range is still
//!    exclusively owned* — the owned-window invariant of PR 4 holds end to
//!    end; nothing is replayed after publication — and the new fence +
//!    halves are published via the epoch-reclaimed directory swap. Writers
//!    that were blocked on the fence wake to a retired shard and re-route
//!    through the fresh directory.
//!
//! Only the two short fences block writers; the copy and chase phases — the
//! bulk of the rebuild — run with writers live. The cumulative fence time is
//! surfaced as `split_stall_ns` and must be a small fraction of what the old
//! stop-the-shard protocol (kept as [`ShardedMap::split_shard_blocking`] for
//! comparison) charged to the write path. Merging two cold neighbours is the
//! same protocol over two latches and one shared log.
//!
//! A lightweight monitor thread drives both from per-shard op/len counters,
//! with **hysteresis**: a threshold crossing must persist for
//! `hysteresis_rounds` consecutive monitor rounds before the monitor acts,
//! so load hovering at a boundary cannot trigger split→merge→split thrash
//! (suppressed crossings are counted in `split_thrash_averted`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};
use pma_common::obs;
use pma_common::{
    check_sorted, dedup_sorted_last_wins, simd, CombiningStats, ConcurrentMap, FrozenView, Key,
    MaintenanceStats, PmaError, Registry, ScanStats, Value, KEY_MAX, KEY_MIN,
};
use pma_core::concurrent::delta::{DeltaLog, DeltaOp};
use pma_core::concurrent::epoch::{EpochGuard, EpochRegistry, GarbageBin};

use crate::stats::{EngineStats, ShardedStats};

/// Once a split's delta log shrinks below this many ops, chasing stops and
/// the split proceeds to the closing phase (draining fewer ops than this in
/// an unfenced round is not worth another round-trip).
const CHASE_TARGET: usize = 256;

/// Upper bound on unfenced chase rounds, so a write rate that outruns the
/// drain cannot keep a split in the copy phase forever.
const MAX_CHASE_ROUNDS: usize = 8;

/// Delta-log backpressure cap during the copy phase: while a split's log
/// holds more than this many undrained ops, writers routed to the shard
/// back off briefly instead of appending. Without it, a write rate that
/// outruns the copy (e.g. spinning writers on an oversubscribed core) grows
/// the log — and the replacement shards' combining queues behind it —
/// without bound. One million ops caps the capture at tens of MB while
/// staying far above what a chase round drains in one pass.
const DELTA_BACKPRESSURE: usize = 1 << 20;

/// Delta-log cap during the closing phase (replacements built, chase
/// converging): low enough that a chase round drains faster than throttled
/// writers can refill, so the loop converges and the final *fenced* fold
/// only ever sees on the order of a hundred ops — regardless of how badly
/// the write rate outran the copy.
const CLOSING_CAP: usize = 128;

/// The closing phase keeps draining until the log is at most this small (or
/// its round budget runs out): the remnant the final fence folds.
const CLOSING_TARGET: usize = 64;

/// While a delta log is installed, `insert_batch` runs are recorded in
/// chunks of at most this many ops, re-checking the backpressure cap (with
/// the latch released) between chunks — otherwise a single huge run could
/// overshoot the cap by its full size in one latch hold.
const BATCH_DELTA_CHUNK: usize = 4096;

/// Configuration of a [`ShardedMap`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards the directory starts with (≥ 1).
    pub shards: usize,
    /// Registry spec of the inner structure each shard instantiates
    /// (e.g. `"pma-batch:100"`). Resolved through the registry handed to the
    /// constructor; nesting `sharded` specs is rejected.
    pub inner_spec: String,
    /// A shard whose element count exceeds this is eligible for a split.
    pub split_above: usize,
    /// Two adjacent shards whose combined element count is below this are
    /// eligible for a merge.
    pub merge_below: usize,
    /// Number of consecutive monitor rounds a split/merge threshold must
    /// stay crossed before the monitor acts (load hovering at a boundary
    /// then never triggers split↔merge thrash). `0` behaves like `1`.
    pub hysteresis_rounds: u32,
    /// Cadence of the load monitor (split/merge decisions and directory
    /// garbage collection).
    pub monitor_interval: Duration,
    /// Whether the monitor performs splits/merges on its own. Manual
    /// [`ShardedMap::split_shard`]/[`ShardedMap::merge_shards`] calls work
    /// either way.
    pub auto_manage: bool,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            inner_spec: "pma-batch:100".to_string(),
            split_above: 1 << 17,
            merge_below: 1 << 13,
            hysteresis_rounds: 3,
            monitor_interval: Duration::from_millis(20),
            auto_manage: true,
        }
    }
}

impl ShardedConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), PmaError> {
        if self.shards == 0 {
            return Err(PmaError::invalid("shards", "must be at least 1"));
        }
        if self.shards > 4096 {
            return Err(PmaError::invalid("shards", "more than 4096 shards"));
        }
        let inner_name = self.inner_spec.split(':').next().unwrap_or("").trim();
        if inner_name.is_empty() {
            return Err(PmaError::invalid("inner_spec", "must not be empty"));
        }
        if inner_name == "sharded" {
            return Err(PmaError::invalid(
                "inner_spec",
                "nesting sharded engines is not supported",
            ));
        }
        if self.merge_below > self.split_above {
            return Err(PmaError::invalid(
                "merge_below",
                format!(
                    "merge_below ({}) must not exceed split_above ({}) or the \
                     monitor would oscillate",
                    self.merge_below, self.split_above
                ),
            ));
        }
        Ok(())
    }
}

/// Per-shard write-gate state, read by writers under the shard's shared
/// latch and changed only under the exclusive latch (the latch guard *is*
/// the synchronisation — no atomics needed).
struct WriteGate {
    /// Installed by an in-flight split/merge: writers record every operation
    /// here *instead of* the live structure (which stays quiescent so the
    /// base copy is exact) and reads consult its overlay first, so the
    /// copy-on-write rebuild can fold the concurrent delta into the
    /// replacement shards before publishing them.
    delta: Option<Arc<DeltaLog>>,
}

/// One shard: a disjoint key range `[lo, hi]` served by one inner instance.
struct Shard {
    /// Inclusive lower fence.
    lo: Key,
    /// Inclusive upper fence.
    hi: Key,
    /// The inner structure holding every element with key in `[lo, hi]`.
    map: Arc<dyn ConcurrentMap>,
    /// Structural latch: point updates hold it shared while they apply to
    /// `map`; a split/merge holds it exclusive only for its two short fences
    /// (delta-log install, final drain + publish) — the copy phase runs with
    /// writers live.
    latch: RwLock<WriteGate>,
    /// Set (under the exclusive latch, after the new directory is published)
    /// when this shard has been replaced; writers that were blocked on the
    /// latch re-route through the new directory.
    retired: AtomicBool,
    /// Operations routed to this shard since the monitor's last decay — the
    /// "heat" signal that picks which oversized shard to split first.
    ops: AtomicU64,
    /// Consecutive monitor rounds this shard's len exceeded `split_above`
    /// (the split hysteresis streak; reset on every round below threshold).
    split_rounds: AtomicU32,
    /// Consecutive monitor rounds this shard + its right neighbour summed
    /// below `merge_below` (the merge hysteresis streak, tracked on the left
    /// member of the pair). Fresh shards start at 0, which doubles as a
    /// cool-down: a shard just created by a split cannot merge before the
    /// hysteresis window elapses again.
    merge_rounds: AtomicU32,
    /// Whether any write was ever routed to this key range (monotone, set
    /// with a relaxed store on the write paths). Seed shards of an empty map
    /// start `false`; bulk-loaded and structurally rebuilt shards inherit
    /// the flag. The monitor refuses to merge a pair before *both* members
    /// have seen a write — merging never-written seed shards right after
    /// startup used to shrink the directory to one shard before the workload
    /// arrived, starving the split path of candidates.
    wrote: AtomicBool,
}

impl Shard {
    fn new(lo: Key, hi: Key, map: Arc<dyn ConcurrentMap>, wrote: bool) -> Arc<Self> {
        Arc::new(Self {
            lo,
            hi,
            map,
            latch: RwLock::new(WriteGate { delta: None }),
            retired: AtomicBool::new(false),
            ops: AtomicU64::new(0),
            split_rounds: AtomicU32::new(0),
            merge_rounds: AtomicU32::new(0),
            wrote: AtomicBool::new(wrote),
        })
    }

    /// Applies an upsert under the caller's shared latch. While a
    /// split/merge is copying this shard the op is recorded in the delta
    /// log *instead of* the live structure — the base stays quiescent so
    /// the copy scan is exact, and the fold replays the log into the
    /// replacements (§3.4's capture half).
    #[inline]
    fn insert_op(&self, gate: &WriteGate, key: Key, value: Value) {
        self.wrote.store(true, Ordering::Relaxed);
        match &gate.delta {
            Some(delta) => delta.record_insert(key, value),
            None => self.map.insert(key, value),
        }
    }

    /// Applies a removal under the caller's shared latch. During a
    /// split/merge the removal is recorded in the delta log and its return
    /// value linearized against the log's overlay (pending same-key ops
    /// win) with the quiescent base as fallback.
    #[inline]
    fn remove_op(&self, gate: &WriteGate, key: Key) -> Option<Value> {
        self.wrote.store(true, Ordering::Relaxed);
        match &gate.delta {
            Some(delta) => delta.record_remove(key, |key| self.map.get(key)),
            None => self.map.remove(key),
        }
    }

    /// Applies a per-shard batch run under the caller's shared latch. With a
    /// delta log installed the whole run is captured as stripe run records —
    /// one stripe pass per run (`DeltaLog::record_run`) instead of decaying
    /// to per-item recording — and the native batch path resumes as soon as
    /// the split publishes. Returns the number of delta run records
    /// appended (zero on the native path), which the caller accounts under
    /// the `delta_runs` engine stat.
    fn batch_op(&self, gate: &WriteGate, run: &[(Key, Value)]) -> u64 {
        self.wrote.store(true, Ordering::Relaxed);
        match &gate.delta {
            Some(delta) => delta.record_run(run) as u64,
            None => {
                self.map.insert_batch(run);
                0
            }
        }
    }

    /// Looks `key` up under the caller's shared latch: pending delta ops
    /// (acknowledged writes not yet folded into the replacements) win over
    /// the quiescent base.
    fn get_op(&self, gate: &WriteGate, key: Key) -> Option<Value> {
        if let Some(delta) = &gate.delta {
            match delta.lookup(key) {
                Some(DeltaOp::Insert(_, value)) => return Some(value),
                Some(DeltaOp::Remove(_)) => return None,
                None => {}
            }
        }
        self.map.get(key)
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("lo", &self.lo)
            .field("hi", &self.hi)
            .field("len", &self.map.len())
            .field("retired", &self.retired.load(Ordering::Relaxed))
            .finish()
    }
}

/// An immutable snapshot of the shard layout, published through the single
/// entry pointer. Shards untouched by a split/merge are shared (by `Arc`)
/// between consecutive directories, so their latches keep their identity.
#[derive(Debug)]
struct Directory {
    /// Monotonically increasing publication counter: every split/merge
    /// publishes `generation + 1`. Scans pin one generation for their whole
    /// lifetime (see [`ShardSnapshot`]).
    generation: u64,
    /// Shards in ascending fence order; `shards[0].lo == KEY_MIN`,
    /// `shards[last].hi == KEY_MAX`, and `shards[i + 1].lo ==
    /// shards[i].hi + 1` — the ranges tile the whole key domain.
    shards: Vec<Arc<Shard>>,
    /// Flat, cache-line-aligned copy of the shard lower fences, searched
    /// with the vectorised routing kernel — every point op routes through
    /// this array, so it touches the fewest possible cache lines instead of
    /// chasing `Arc<Shard>` pointers.
    separators: simd::AlignedKeys,
}

impl Directory {
    /// Builds a directory (and its aligned routing array) from shards in
    /// ascending fence order.
    fn new(generation: u64, shards: Vec<Arc<Shard>>) -> Self {
        let fences: Vec<Key> = shards.iter().map(|s| s.lo).collect();
        Self {
            generation,
            shards,
            separators: simd::AlignedKeys::from_slice(&fences),
        }
    }

    /// Index of the shard whose range contains `key`.
    #[inline]
    fn route(&self, key: Key) -> usize {
        // The first fence is KEY_MIN, so the count is ≥ 1 for every key and
        // the kernel's saturating fallback never actually triggers.
        simd::route(&self.separators, key)
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        assert_eq!(self.shards[0].lo, KEY_MIN);
        assert_eq!(self.shards[self.shards.len() - 1].hi, KEY_MAX);
        for w in self.shards.windows(2) {
            assert!(w[0].hi < w[1].lo);
            assert_eq!(w[0].hi.wrapping_add(1), w[1].lo);
        }
    }
}

/// A unit of work executed by the engine's worker pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A small persistent worker pool for cross-shard fan-out (parallel scans
/// and batch ingestion), mirroring the rebalancer's master/worker idiom.
///
/// The pool exists because the inner instances reclaim memory with per-thread
/// epoch slots that are claimed forever ([`EpochRegistry`]): fanning work out
/// on freshly spawned threads would claim a new slot in every inner registry
/// per call and exhaust the slot table. A fixed set of long-lived workers
/// keeps the slot usage bounded (one slot per worker per inner instance).
struct WorkerPool {
    job_tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(size: usize) -> Self {
        let (job_tx, job_rx) = unbounded::<Job>();
        let workers = (0..size.max(1))
            .map(|i| {
                let job_rx = job_rx.clone();
                std::thread::Builder::new()
                    .name(format!("pma-shard-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = job_rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn a shard worker thread")
            })
            .collect();
        Self {
            job_tx: Some(job_tx),
            workers,
        }
    }

    fn submit(&self, job: Job) {
        if let Some(tx) = &self.job_tx {
            let _ = tx.send(job);
        }
    }

    /// Number of worker threads — the fan-out paths fall back to in-thread
    /// execution when the pool cannot actually run jobs in parallel.
    fn parallelism(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel; the workers drain it and exit.
        self.job_tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// State shared between the public handle and the monitor thread.
struct Engine {
    config: ShardedConfig,
    /// A private single-entry registry holding the inner backend's
    /// [`pma_common::registry::BackendDef`], captured from the dispatching
    /// registry once at construction time. Splits and merges rebuild shards
    /// through it, so the engine never consults the (possibly local,
    /// possibly already mutated) registry it was built from again — and
    /// never reaches for `Registry::global`.
    inner: Registry,
    /// The single entry pointer of the engine (mirroring §3.4): always a
    /// valid `Box<Directory>` leaked into it, replaced atomically by
    /// splits/merges and reclaimed through `garbage`.
    dir: AtomicPtr<Directory>,
    epoch: EpochRegistry,
    garbage: GarbageBin<Box<Directory>>,
    /// Serialises structural changes (splits, merges) so at most one
    /// directory re-publication is in flight.
    maintenance: Mutex<()>,
    /// Workers executing cross-shard fan-out (scans, batch runs).
    pool: WorkerPool,
    stats: EngineStats,
    /// Combining counters absorbed from shards retired by splits/merges
    /// (their inner instances die with their counters): summed into
    /// `combining_stats` so a `late_replays` hit can never be masked by a
    /// later structural rebuild of the shard that recorded it.
    retired_owned_applies: AtomicU64,
    retired_late_replays: AtomicU64,
    stop: AtomicBool,
}

impl Engine {
    /// # Safety
    /// The caller must hold a pin on `self.epoch` for the lifetime of the
    /// returned reference.
    unsafe fn dir_ref(&self) -> &Directory {
        &*self.dir.load(Ordering::Acquire)
    }

    /// Folds a soon-to-be-retired shard's combining counters into the
    /// engine-level accumulators, returning the absorbed snapshot. Called
    /// **before** the directory swap: a concurrent `combining_stats` reader
    /// may transiently count the shard twice (once live, once absorbed),
    /// which only overstates — the reverse order would open a window where a
    /// `late_replays` hit is counted in neither place and a protocol
    /// violation could be masked. Counters the shard accrues *after* this
    /// call (its post-publish settling flush) are folded in by
    /// [`Engine::absorb_counter_delta`].
    fn absorb_retired_counters(&self, shard: &Shard) -> CombiningStats {
        let stats = shard.map.combining_stats().unwrap_or_default();
        self.retired_owned_applies
            .fetch_add(stats.owned_applies, Ordering::Relaxed);
        self.retired_late_replays
            .fetch_add(stats.late_replays, Ordering::Relaxed);
        stats
    }

    /// Folds the counters a retired shard accrued after `already` was
    /// absorbed (the settling flush that runs after publication applies the
    /// inner queue backlog, which still ticks `owned_applies` — and must
    /// still surface a `late_replays` hit).
    fn absorb_counter_delta(&self, shard: &Shard, already: CombiningStats) {
        if let Some(now) = shard.map.combining_stats() {
            self.retired_owned_applies.fetch_add(
                now.owned_applies.saturating_sub(already.owned_applies),
                Ordering::Relaxed,
            );
            self.retired_late_replays.fetch_add(
                now.late_replays.saturating_sub(already.late_replays),
                Ordering::Relaxed,
            );
        }
    }

    /// Publishes `shards` as the next directory generation and retires the
    /// old directory into the epoch garbage bin (freed once no pinned reader
    /// can still observe it). Must be called under the `maintenance` lock.
    fn publish(&self, generation: u64, shards: Vec<Arc<Shard>>) {
        let dir = Directory::new(generation, shards);
        #[cfg(debug_assertions)]
        dir.check_invariants();
        let fresh = Box::into_raw(Box::new(dir));
        let old = self.dir.swap(fresh, Ordering::AcqRel);
        // SAFETY: `old` was the uniquely-owned published directory; it is now
        // unreachable from the entry pointer and owned by the garbage bin.
        self.garbage
            .retire(&self.epoch, unsafe { Box::from_raw(old) });
    }

    /// Installs `delta` into the shard's write gate under a short exclusive
    /// fence (microseconds: one latch acquisition and a pointer store), then
    /// settles the inner combining queues *unfenced*, so every operation is
    /// either visible to the upcoming base copy or captured by the log.
    /// Returns the fence duration (write stall).
    ///
    /// The unfenced flush terminates precisely because the log is already
    /// installed: writers record into it instead of the inner map, so the
    /// map's queues only shrink — the flush drains the pre-install backlog
    /// (which can be large when the service lags the writers) without ever
    /// chasing new arrivals, and without charging that drain to the write
    /// stall. After it returns the inner map is quiescent for the copy.
    fn install_delta(&self, shard: &Shard, delta: &Arc<DeltaLog>) -> Duration {
        let fence = Instant::now();
        let mut gate = shard.latch.write();
        gate.delta = Some(Arc::clone(delta));
        drop(gate);
        let stall = fence.elapsed();
        shard.map.flush();
        stall
    }

    /// Removes an installed delta log again (abort path of a split/merge
    /// that found nothing to do or whose loader failed), folding every
    /// recorded op back into the live shard first: the ops were *only* in
    /// the log (the live structure stayed quiescent), so dropping them
    /// would lose acknowledged writes. The fold runs under the exclusive
    /// latch — no append can be in flight, one drain pass is complete, and
    /// the per-key append order is the linearization order the quiescent
    /// base is caught up with.
    fn uninstall_delta(&self, shard: &Shard) {
        let mut gate = shard.latch.write();
        if let Some(delta) = gate.delta.take() {
            for op in delta.take_all() {
                op.apply(shard.map.as_ref());
            }
        }
    }

    /// The merge abort path: the two shards share one delta log, so the
    /// fold-back must route each op by key to the shard that owns it (a
    /// single-shard fold-back would corrupt the left shard with the right
    /// shard's keys). Both latches are held across the drain, so the fold
    /// is complete and writers resume against caught-up live shards.
    fn uninstall_delta_pair(&self, left: &Shard, right: &Shard) {
        let mut left_gate = left.latch.write();
        let mut right_gate = right.latch.write();
        let delta = left_gate.delta.take();
        right_gate.delta = None;
        if let Some(delta) = delta {
            // Keys <= left.hi route left; the boundary never overflows
            // because the right shard's range sits above left.hi.
            for rec in delta.take_all() {
                rec.apply_split(left.hi + 1, left.map.as_ref(), right.map.as_ref());
            }
        }
    }

    /// One drain pass: takes whatever the delta log currently holds and
    /// folds it into `left` or `right` by comparing against `boundary` (ops
    /// below it route left; passing the same map twice folds everything into
    /// one replacement — the merge path). Returns the number of ops folded.
    /// Deliberately a *single* pass: during the unfenced chase phase writers
    /// keep appending, and looping until the log reads empty would race them
    /// forever. Under the final fence one pass is also *complete*: a
    /// writer's record (append + overlay update) runs entirely under the
    /// shard's shared latch, so once the exclusive latch is held no append
    /// can be in flight or arrive.
    fn fold_delta(
        delta: &DeltaLog,
        boundary: Key,
        left: &dyn ConcurrentMap,
        right: &dyn ConcurrentMap,
    ) -> u64 {
        let recs = delta.take_all();
        let mut folded = 0u64;
        for rec in recs {
            folded += rec.count() as u64;
            rec.apply_split(boundary, left, right);
        }
        folded
    }

    /// Unfenced chase rounds: drains the delta log into the replacements
    /// while writers keep appending, until the log is small enough for the
    /// final fenced drain or the round budget runs out — then settles the
    /// replacements' combining queues. The settling must happen *here*,
    /// unfenced: the structural thread is the replacements' only writer
    /// before publication, so their flush terminates, and moving the bulk
    /// of the queue-settling out of the final fence keeps that fence
    /// O(remnant) instead of O(delta). Must be called by the (single)
    /// structural thread so the per-key drain order is preserved across
    /// rounds.
    fn chase_delta(
        &self,
        delta: &DeltaLog,
        boundary: Key,
        left: &dyn ConcurrentMap,
        right: &dyn ConcurrentMap,
    ) -> u64 {
        let mut folded = {
            let mut round_span = obs::span(obs::Category::ChaseRound, 0);
            let n = Self::fold_delta(delta, boundary, left, right);
            round_span.set_payload(n);
            n
        };
        EngineStats::bump(&self.stats.chase_rounds);
        let mut rounds = 1usize;
        while delta.len() > CHASE_TARGET && rounds < MAX_CHASE_ROUNDS {
            rounds += 1;
            EngineStats::bump(&self.stats.chase_rounds);
            let mut round_span = obs::span(obs::Category::ChaseRound, 0);
            let n = Self::fold_delta(delta, boundary, left, right);
            round_span.set_payload(n);
            folded += n;
        }
        // Closing phase: when the write rate outran the chase (the rounds
        // above cannot converge on an oversubscribed core — appending is
        // cheaper than draining), lower the backpressure cap so writers are
        // throttled to what one round drains. The next drains then shrink
        // geometrically and the final *fenced* fold sees at most a few
        // hundred ops, no matter how hot the shard is.
        delta.set_cap(CLOSING_CAP);
        let mut closing_span = obs::span(obs::Category::ClosingFold, 0);
        let mut closing = 0usize;
        let closing_before = folded;
        while delta.len() > CLOSING_TARGET && closing < 2 * MAX_CHASE_ROUNDS {
            closing += 1;
            EngineStats::bump(&self.stats.chase_rounds);
            folded += Self::fold_delta(delta, boundary, left, right);
        }
        closing_span.set_payload(folded - closing_before);
        left.flush();
        if !std::ptr::addr_eq(left, right) {
            right.flush();
        }
        folded
    }

    /// Splits the shard at directory index `idx` into two halves at its
    /// median key, copy-on-write: writers keep landing throughout the copy
    /// and chase phases (recording into the delta log, with reads served
    /// through its overlay) and are only fenced for the delta-log install
    /// and the final drain + publish (see the [module docs](self)). Returns
    /// `Ok(false)` when the shard holds fewer than two elements (nothing to
    /// split) or the index is stale.
    fn split_shard(&self, idx: usize) -> Result<bool, PmaError> {
        let _structural = self.maintenance.lock();
        let _pin = self.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.dir_ref() };
        if idx >= dir.shards.len() {
            return Ok(false);
        }
        let shard = Arc::clone(&dir.shards[idx]);
        if shard.map.len() < 2 {
            return Ok(false);
        }

        // Phase 1 — install fence: hook the delta log, settle the queues.
        let delta = Arc::new(DeltaLog::with_cap(DELTA_BACKPRESSURE));
        let mut stall = {
            let _fence_span = obs::span(obs::Category::SplitFence, 0);
            self.install_delta(&shard, &delta)
        };

        // Phase 2 — copy-on-write (writers recording into the log): ordered
        // live-scan of the now-quiescent base — exact, since nothing
        // mutates the inner structure — and halves built with the presized
        // bulk loader. The full-domain range is identical to the shard's
        // fence span (its instance only holds keys inside the fences) and
        // is the range the PMA's presized collect fast-path recognises.
        let copied = (|| -> Result<Option<_>, PmaError> {
            let items = shard.map.collect_range(KEY_MIN, KEY_MAX);
            if items.len() < 2 {
                return Ok(None); // raced deletes emptied it: nothing to split
            }
            // The boundary is the median key; keys are distinct and
            // ascending, so `boundary > items[0].0 >= shard.lo` and both
            // halves are non-empty.
            let mid = items.len() / 2;
            let boundary = items[mid].0;
            debug_assert!(boundary > shard.lo && boundary <= shard.hi);
            let left = self
                .inner
                .build_loaded(&self.config.inner_spec, &items[..mid])?;
            let right = self
                .inner
                .build_loaded(&self.config.inner_spec, &items[mid..])?;
            Ok(Some((boundary, left, right)))
        })();
        let (boundary, left, right) = match copied {
            Ok(Some(parts)) => parts,
            Ok(None) => {
                self.uninstall_delta(&shard);
                return Ok(false);
            }
            Err(e) => {
                self.uninstall_delta(&shard);
                return Err(e);
            }
        };

        // Phase 3 — chase (writers live): shrink the final fenced drain.
        let mut captured = self.chase_delta(&delta, boundary, left.as_ref(), right.as_ref());

        // Phase 4 — final fence: drain the remnant while the key range is
        // still exclusively owned, publish, retire.
        let mut fence_span = obs::span(obs::Category::SplitFence, 1);
        let fence = Instant::now();
        let mut gate = shard.latch.write();
        // One pass drains everything (no append can be in flight under the
        // exclusive latch). The remnant ops land in the halves' combining
        // queues and settle within the inner mode's delay window — the same
        // deferred visibility those ops would have had without a split.
        captured += Self::fold_delta(&delta, boundary, left.as_ref(), right.as_ref());
        debug_assert!(delta.is_empty(), "a fenced fold must drain the log");
        let absorbed = self.absorb_retired_counters(&shard);
        let wrote = shard.wrote.load(Ordering::Relaxed);
        let mut shards = Vec::with_capacity(dir.shards.len() + 1);
        shards.extend(dir.shards[..idx].iter().cloned());
        shards.push(Shard::new(shard.lo, boundary - 1, left, wrote));
        shards.push(Shard::new(boundary, shard.hi, right, wrote));
        shards.extend(dir.shards[idx + 1..].iter().cloned());
        self.publish(dir.generation + 1, shards);
        // Publish-then-retire, all under the exclusive latch: writers that
        // were blocked on the latch wake to a retired shard and re-route
        // through the directory we just published.
        shard.retired.store(true, Ordering::Release);
        gate.delta = None;
        drop(gate);
        stall += fence.elapsed();
        fence_span.set_payload(captured);
        drop(fence_span);

        // Post-publish settling (writers already re-routed, so none of this
        // is write stall): apply the retired instance's queue backlog so
        // scans still pinned to the old generation observe a complete frozen
        // shard and the instance drops clean, then fold the counters that
        // settling accrued.
        shard.map.flush();
        self.absorb_counter_delta(&shard, absorbed);
        EngineStats::bump(&self.stats.shard_splits);
        EngineStats::add(&self.stats.split_stall_ns, stall.as_nanos() as u64);
        EngineStats::add(&self.stats.delta_ops, captured);
        self.garbage.collect(&self.epoch);
        Ok(true)
    }

    /// The pre-incremental stop-the-shard split: holds the exclusive latch
    /// across the whole flush + collect + rebuild. Kept as the baseline the
    /// incremental protocol is measured against (`benches/split_latency.rs`)
    /// and as a fallback for callers that want the simplest possible
    /// publication. The entire hold time is counted as write stall.
    fn split_shard_blocking(&self, idx: usize) -> Result<bool, PmaError> {
        let _structural = self.maintenance.lock();
        let _pin = self.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.dir_ref() };
        if idx >= dir.shards.len() {
            return Ok(false);
        }
        let shard = Arc::clone(&dir.shards[idx]);
        let fence = Instant::now();
        let exclusive = shard.latch.write();
        shard.map.flush();
        let items = shard.map.collect_range(KEY_MIN, KEY_MAX);
        if items.len() < 2 {
            return Ok(false);
        }
        let mid = items.len() / 2;
        let boundary = items[mid].0;
        debug_assert!(boundary > shard.lo && boundary <= shard.hi);
        let left = self
            .inner
            .build_loaded(&self.config.inner_spec, &items[..mid])?;
        let right = self
            .inner
            .build_loaded(&self.config.inner_spec, &items[mid..])?;

        let wrote = shard.wrote.load(Ordering::Relaxed);
        let mut shards = Vec::with_capacity(dir.shards.len() + 1);
        shards.extend(dir.shards[..idx].iter().cloned());
        shards.push(Shard::new(shard.lo, boundary - 1, left, wrote));
        shards.push(Shard::new(boundary, shard.hi, right, wrote));
        shards.extend(dir.shards[idx + 1..].iter().cloned());
        self.absorb_retired_counters(&shard);
        self.publish(dir.generation + 1, shards);
        shard.retired.store(true, Ordering::Release);
        drop(exclusive);
        EngineStats::bump(&self.stats.shard_splits);
        EngineStats::add(
            &self.stats.split_stall_ns,
            fence.elapsed().as_nanos() as u64,
        );
        self.garbage.collect(&self.epoch);
        Ok(true)
    }

    /// Merges the shards at directory indices `idx` and `idx + 1` into one,
    /// copy-on-write over two latches and one shared delta log (keys are
    /// disjoint between the two shards, so one log preserves the per-key
    /// order of both). Returns `Ok(false)` when `idx + 1` is out of bounds.
    fn merge_shards(&self, idx: usize) -> Result<bool, PmaError> {
        let _span = obs::span(obs::Category::ShardMerge, idx as u64);
        let _structural = self.maintenance.lock();
        let _pin = self.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.dir_ref() };
        if idx + 1 >= dir.shards.len() {
            return Ok(false);
        }
        let left = Arc::clone(&dir.shards[idx]);
        let right = Arc::clone(&dir.shards[idx + 1]);

        // Install fences, one shard at a time (lower index first; the
        // `maintenance` lock already excludes other structural ops, so the
        // order only has to be self-consistent).
        let delta = Arc::new(DeltaLog::with_cap(DELTA_BACKPRESSURE));
        let mut stall = self.install_delta(&left, &delta);
        stall += self.install_delta(&right, &delta);

        // Copy phase (writers recording): the two runs are disjoint and
        // ascending, so concatenation is the merge.
        let merged = {
            let mut items = left.map.collect_range(KEY_MIN, KEY_MAX);
            items.extend(right.map.collect_range(KEY_MIN, KEY_MAX));
            self.inner.build_loaded(&self.config.inner_spec, &items)
        };
        let merged = match merged {
            Ok(map) => map,
            Err(e) => {
                self.uninstall_delta_pair(&left, &right);
                return Err(e);
            }
        };

        // Chase (writers live), then the final fence over both latches.
        let mut captured = self.chase_delta(&delta, KEY_MIN, merged.as_ref(), merged.as_ref());
        let fence = Instant::now();
        let mut left_gate = left.latch.write();
        let mut right_gate = right.latch.write();
        captured += Self::fold_delta(&delta, KEY_MIN, merged.as_ref(), merged.as_ref());
        debug_assert!(delta.is_empty(), "a fenced fold must drain the log");
        let left_absorbed = self.absorb_retired_counters(&left);
        let right_absorbed = self.absorb_retired_counters(&right);
        let mut shards = Vec::with_capacity(dir.shards.len() - 1);
        shards.extend(dir.shards[..idx].iter().cloned());
        let wrote = left.wrote.load(Ordering::Relaxed) || right.wrote.load(Ordering::Relaxed);
        shards.push(Shard::new(left.lo, right.hi, merged, wrote));
        shards.extend(dir.shards[idx + 2..].iter().cloned());
        self.publish(dir.generation + 1, shards);
        left.retired.store(true, Ordering::Release);
        right.retired.store(true, Ordering::Release);
        left_gate.delta = None;
        right_gate.delta = None;
        drop(right_gate);
        drop(left_gate);
        stall += fence.elapsed();

        left.map.flush();
        right.map.flush();
        self.absorb_counter_delta(&left, left_absorbed);
        self.absorb_counter_delta(&right, right_absorbed);
        EngineStats::bump(&self.stats.shard_merges);
        EngineStats::add(&self.stats.split_stall_ns, stall.as_nanos() as u64);
        EngineStats::add(&self.stats.delta_ops, captured);
        self.garbage.collect(&self.epoch);
        Ok(true)
    }

    /// One monitor round: decay the per-shard heat counters, advance the
    /// hysteresis streaks, then split the hottest persistently-oversized
    /// shard or merge the coldest persistently-undersized neighbours. A
    /// threshold crossing only triggers once it has held for
    /// `hysteresis_rounds` consecutive rounds; a crossing that lapses before
    /// that resets its streak and counts as thrash averted.
    fn maintain(&self) {
        enum Plan {
            Split(usize),
            Merge(usize),
        }
        let hysteresis = self.config.hysteresis_rounds.max(1);
        let plan = {
            let _pin = self.epoch.pin();
            // SAFETY: pinned above.
            let dir = unsafe { self.dir_ref() };
            let mut split: Option<(usize, u64)> = None;
            for (i, shard) in dir.shards.iter().enumerate() {
                let heat = shard.ops.load(Ordering::Relaxed);
                shard.ops.store(heat / 2, Ordering::Relaxed);
                if shard.map.len() > self.config.split_above {
                    let streak = shard.split_rounds.fetch_add(1, Ordering::Relaxed) + 1;
                    if streak >= hysteresis && split.is_none_or(|(_, best)| heat > best) {
                        split = Some((i, heat));
                    }
                } else if shard.split_rounds.swap(0, Ordering::Relaxed) > 0 {
                    EngineStats::bump(&self.stats.split_thrash_averted);
                }
            }
            if let Some((i, _)) = split {
                Some(Plan::Split(i))
            } else {
                let mut merge: Option<(usize, usize)> = None;
                for i in 0..dir.shards.len().saturating_sub(1) {
                    let pair_left = &dir.shards[i];
                    // A pair is only a merge candidate once both members have
                    // seen a write: seed shards of a map the workload has not
                    // reached yet are empty by construction, not by cooling
                    // down, and merging them away would pre-shrink the
                    // directory the workload is about to fill. `wrote` is
                    // monotone, so an eligible streak can never lapse through
                    // this guard.
                    let eligible = pair_left.wrote.load(Ordering::Relaxed)
                        && dir.shards[i + 1].wrote.load(Ordering::Relaxed);
                    let sum = pair_left.map.len() + dir.shards[i + 1].map.len();
                    if eligible && sum < self.config.merge_below {
                        let streak = pair_left.merge_rounds.fetch_add(1, Ordering::Relaxed) + 1;
                        if streak >= hysteresis && merge.is_none_or(|(_, best)| sum < best) {
                            merge = Some((i, sum));
                        }
                    } else if pair_left.merge_rounds.swap(0, Ordering::Relaxed) > 0 {
                        EngineStats::bump(&self.stats.split_thrash_averted);
                    }
                }
                merge.map(|(i, _)| Plan::Merge(i))
            }
        };
        // Structural ops re-read the directory under the maintenance lock, so
        // a stale index at worst splits/merges a different (still live) shard.
        let result = match plan {
            Some(Plan::Split(i)) => self.split_shard(i),
            Some(Plan::Merge(i)) => self.merge_shards(i),
            None => Ok(false),
        };
        // The monitor must survive a failed attempt (e.g. the inner loader
        // erroring) — count it and keep serving the remaining shards rather
        // than dying and silently disabling auto management.
        if result.is_err() {
            EngineStats::bump(&self.stats.monitor_errors);
        }
    }
}

fn monitor_loop(engine: Arc<Engine>) {
    let step = Duration::from_millis(2);
    let mut since_round = Duration::ZERO;
    while !engine.stop.load(Ordering::Acquire) {
        std::thread::sleep(step);
        since_round += step;
        if since_round < engine.config.monitor_interval {
            continue;
        }
        since_round = Duration::ZERO;
        engine.garbage.collect(&engine.epoch);
        if engine.config.auto_manage {
            engine.maintain();
        }
    }
}

/// Evenly divides the whole key domain into `n` contiguous inclusive ranges.
/// Also used by the thread-per-core router to derive its worker fences, so
/// seed shards and worker key ranges tile the domain the same way.
pub(crate) fn uniform_bounds(n: usize) -> Vec<(Key, Key)> {
    let n = n.max(1) as i128;
    let span = (KEY_MAX as i128 - KEY_MIN as i128 + 1) / n;
    (0..n)
        .map(|i| {
            let lo = if i == 0 {
                KEY_MIN
            } else {
                (KEY_MIN as i128 + span * i) as Key
            };
            let hi = if i == n - 1 {
                KEY_MAX
            } else {
                (KEY_MIN as i128 + span * (i + 1) - 1) as Key
            };
            (lo, hi)
        })
        .collect()
}

/// Plans the shard layout of a bulk load: up to `n` contiguous runs of
/// roughly equal size, cut at key boundaries so the fences stay strictly
/// increasing. Returns `(lo, hi, start, end)` per shard with `items[start..
/// end]` the shard's run; fewer than `n` shards come back when the input has
/// too few distinct keys to cut.
fn plan_shards(items: &[(Key, Value)], n: usize) -> Vec<(Key, Key, usize, usize)> {
    if items.is_empty() {
        return uniform_bounds(n)
            .into_iter()
            .map(|(lo, hi)| (lo, hi, 0, 0))
            .collect();
    }
    let n = n.max(1);
    let mut cuts: Vec<usize> = Vec::with_capacity(n + 1);
    cuts.push(0);
    for i in 1..n {
        let mut target = (i * items.len() / n).max(cuts[cuts.len() - 1] + 1);
        // A percentile cut landing inside a run of equal keys would hand the
        // same key to both sides of the fence (the left shard's `hi` becomes
        // `key - 1`, below its own last element) — duplicate-heavy runs hit
        // this even though deduped input cannot. Advance the cut past the
        // run so every fence lands on a genuine key boundary; heavily
        // duplicated inputs simply produce fewer (never empty) shards.
        while target < items.len() && items[target].0 == items[target - 1].0 {
            target += 1;
        }
        if target >= items.len() {
            break;
        }
        cuts.push(target);
    }
    cuts.push(items.len());
    let mut plan = Vec::with_capacity(cuts.len() - 1);
    for (j, w) in cuts.windows(2).enumerate() {
        let (start, end) = (w[0], w[1]);
        let lo = if j == 0 { KEY_MIN } else { items[start].0 };
        let hi = if end == items.len() {
            KEY_MAX
        } else {
            items[end].0 - 1
        };
        plan.push((lo, hi, start, end));
    }
    plan
}

/// A consistent view of one shard-directory generation.
///
/// Produced by [`ShardedMap::snapshot`]: the snapshot pins the engine's
/// epoch and the directory generation current at creation time for its whole
/// lifetime, so any number of scans/lookups issued through it observe the
/// same shard layout — a concurrent split or merge can never make a
/// fence-crossing scan observe a key twice or skip a range, even across
/// *multiple* calls (e.g. a paginated walk issuing one `scan_range` per
/// page).
///
/// Shards retired by a concurrent structural change stay fully readable
/// through the snapshot (the epoch pin keeps them alive and the final fence
/// left them complete). Keep snapshots short-lived: the pin delays memory
/// reclamation of every directory retired while it is held.
pub struct ShardSnapshot<'a> {
    engine: &'a Engine,
    dir: &'a Directory,
    _pin: EpochGuard<'a>,
}

impl std::fmt::Debug for ShardSnapshot<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSnapshot")
            .field("generation", &self.generation())
            .field("shards", &self.num_shards())
            .finish()
    }
}

impl ShardSnapshot<'_> {
    /// The pinned directory generation (monotonically increasing across
    /// splits/merges; two snapshots with equal generations observe the
    /// identical shard layout).
    pub fn generation(&self) -> u64 {
        self.dir.generation
    }

    /// Number of shards in the pinned directory.
    pub fn num_shards(&self) -> usize {
        self.dir.shards.len()
    }

    /// `(lo, hi, len)` of every shard in the pinned directory, in fence
    /// order.
    pub fn shard_layout(&self) -> Vec<(Key, Key, usize)> {
        self.dir
            .shards
            .iter()
            .map(|s| (s.lo, s.hi, s.map.len()))
            .collect()
    }

    /// Sum of the shard lengths in the pinned directory.
    pub fn len(&self) -> usize {
        self.dir.shards.iter().map(|s| s.map.len()).sum()
    }

    /// Whether the pinned directory holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scans every element through the pinned directory.
    pub fn scan_all(&self) -> ScanStats {
        self.fold_scan(KEY_MIN, KEY_MAX)
    }

    /// Scans `[lo, hi]` (inclusive) through the pinned directory.
    pub fn scan_range(&self, lo: Key, hi: Key) -> ScanStats {
        self.fold_scan(lo, hi)
    }

    /// The covered, non-empty shards of `[lo, hi]` as clamped merge sources
    /// for the loser-tree block merge (`merge.rs`).
    fn merge_sources(&self, lo: Key, hi: Key) -> Vec<(&dyn ConcurrentMap, Key, Key)> {
        let first = self.dir.route(lo);
        let last = self.dir.route(hi);
        self.dir.shards[first..=last]
            .iter()
            .filter(|s| !s.map.is_empty())
            .map(|s| {
                (
                    s.map.as_ref() as &dyn ConcurrentMap,
                    lo.max(s.lo),
                    hi.min(s.hi),
                )
            })
            .collect()
    }

    /// Visits every element with key in `[lo, hi]` in ascending key order
    /// through the pinned directory.
    ///
    /// A range confined to one shard is delegated straight to it; a
    /// fence-crossing range runs the loser-tree block merge (`merge.rs`)
    /// over the covered shards, so the per-shard streams are pulled out as
    /// whole sorted runs (SIMD run-copies at gate granularity) instead of
    /// one virtual call per element per layer.
    pub fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        if lo > hi {
            return;
        }
        let first = self.dir.route(lo);
        let last = self.dir.route(hi);
        if last == first {
            let shard = &self.dir.shards[first];
            shard.map.range(lo.max(shard.lo), hi.min(shard.hi), visitor);
            return;
        }
        EngineStats::bump(&self.engine.stats.cross_shard_scans);
        crate::merge::merge_blocks(&self.merge_sources(lo, hi), &mut |keys, values| {
            for (&k, &v) in keys.iter().zip(values) {
                visitor(k, v);
            }
        });
    }

    /// Folds the scan of every shard whose range intersects `[lo, hi]`.
    ///
    /// With a parallel worker pool the per-shard streams run concurrently
    /// and their [`ScanStats`] are merged (correct because the streams are
    /// disjoint and the merge is order-insensitive). On a single-core host
    /// the fan-out would only add channel handoffs and context switches —
    /// and an order-insensitive fold needs no element buffering at all, so
    /// the k-way merge degenerates to draining the covered shards in
    /// directory order through their native bulk scans. (Paths that must
    /// *emit* elements in global order — [`Self::range`], `collect_block` —
    /// run the real loser-tree block merge in `merge.rs`.)
    fn fold_scan(&self, lo: Key, hi: Key) -> ScanStats {
        let mut total = ScanStats::default();
        if lo > hi {
            return total;
        }
        let first = self.dir.route(lo);
        let last = self.dir.route(hi);
        let covered = &self.dir.shards[first..=last];
        let busy: Vec<&Arc<Shard>> = covered.iter().filter(|s| !s.map.is_empty()).collect();
        match busy.len() {
            0 => {}
            1 => {
                let s = busy[0];
                total.merge(&s.map.scan_range(lo.max(s.lo), hi.min(s.hi)));
            }
            _ if self.engine.pool.parallelism() > 1 => {
                EngineStats::bump(&self.engine.stats.cross_shard_scans);
                // Fan the per-shard streams out to the persistent worker
                // pool (never to fresh threads — see [`WorkerPool`]) and
                // fold the replies; ScanStats::merge is order-insensitive,
                // so completion order does not matter.
                let (reply_tx, reply_rx) = unbounded();
                let mut jobs = 0usize;
                for s in &busy {
                    let shard = Arc::clone(s);
                    let reply = reply_tx.clone();
                    let (lo, hi) = (lo.max(s.lo), hi.min(s.hi));
                    self.engine.pool.submit(Box::new(move || {
                        let _ = reply.send(shard.map.scan_range(lo, hi));
                    }));
                    jobs += 1;
                }
                drop(reply_tx);
                for _ in 0..jobs {
                    total.merge(&reply_rx.recv().expect("a shard scan worker died"));
                }
            }
            _ => {
                EngineStats::bump(&self.engine.stats.cross_shard_scans);
                for s in &busy {
                    total.merge(&s.map.scan_range(lo.max(s.lo), hi.min(s.hi)));
                }
            }
        }
        total
    }
}

/// A range-partitioned [`ConcurrentMap`] composing N inner instances behind
/// a fence-key shard directory. See the [module docs](self) for the design.
///
/// # Examples
/// ```
/// use pma_common::{ConcurrentMap, Registry};
/// use pma_engine::{ShardedConfig, ShardedMap};
///
/// pma_core::register_backends(Registry::global());
/// let config = ShardedConfig {
///     shards: 4,
///     inner_spec: "pma-batch:1".to_string(),
///     ..ShardedConfig::default()
/// };
/// let map = ShardedMap::new(config, Registry::global()).unwrap();
/// map.insert(1, 10);
/// map.insert(-1, -10);
/// assert_eq!(map.get(1), Some(10));
/// assert_eq!(map.scan_all().count, 2);
/// assert_eq!(map.num_shards(), 4);
///
/// // A snapshot pins one directory generation for consistent scans.
/// let snapshot = map.snapshot();
/// assert_eq!(snapshot.scan_all().count, 2);
/// assert_eq!(snapshot.generation(), 0);
/// ```
pub struct ShardedMap {
    engine: Arc<Engine>,
    monitor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardedMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.num_shards())
            .field("len", &self.len())
            .field("config", &self.engine.config)
            .finish()
    }
}

/// One shard's contribution to a [`ShardedFrozen`] view: the inner
/// backend's frozen base plus a copy of the delta overlay that was installed
/// over the shard at freeze time (empty unless a split/merge was mid-copy).
/// Both halves were captured under one shared-latch hold, so the overlay's
/// pending ops are exactly the acknowledged writes the quiescent base is
/// missing.
struct FrozenShardPiece {
    /// Inclusive lower fence of the shard at freeze time.
    lo: Key,
    /// Inclusive upper fence of the shard at freeze time.
    hi: Key,
    /// The inner structure's own point-in-time view.
    base: Box<dyn FrozenView>,
    /// Latest pending op per key from the shard's in-flight delta log:
    /// `Some(value)` shadows the base with an insert, `None` with a remove.
    overlay: BTreeMap<Key, Option<Value>>,
}

impl FrozenShardPiece {
    /// Visits `[lo, hi]` (pre-clamped to the piece's fences) in ascending
    /// key order, merging the overlay into the base stream in lockstep.
    fn visit_range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        let mut pending = self.overlay.range(lo..=hi).peekable();
        self.base.range(lo, hi, &mut |key, value| {
            // Emit overlay inserts below the base cursor, then let an
            // overlay op at the cursor shadow the base element.
            while let Some(&(&pkey, &pval)) = pending.peek() {
                if pkey > key {
                    break;
                }
                pending.next();
                match pval {
                    Some(shadow) if pkey == key => return visitor(key, shadow),
                    None if pkey == key => return,
                    Some(inserted) => visitor(pkey, inserted),
                    None => {}
                }
            }
            visitor(key, value);
        });
        for (&pkey, &pval) in pending {
            if let Some(inserted) = pval {
                visitor(pkey, inserted);
            }
        }
    }
}

/// An owned point-in-time view of a [`ShardedMap`] (see
/// [`ShardedMap::frozen`]): one `FrozenShardPiece` per shard of a single
/// directory generation. Reads against it are repeatable — concurrent
/// writers, splits and merges copy chunks instead of mutating them under the
/// view — and it stays valid after the source map re-publishes or drops its
/// directory, because every piece is owned.
pub struct ShardedFrozen {
    /// Directory generation the view was captured from.
    generation: u64,
    /// Element count at freeze time (base counts adjusted by the overlays).
    len: usize,
    /// Per-shard pieces in ascending, disjoint fence order.
    pieces: Vec<FrozenShardPiece>,
}

impl ShardedFrozen {
    /// The directory generation this view was captured from.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl FrozenView for ShardedFrozen {
    fn get(&self, key: Key) -> Option<Value> {
        let idx = self
            .pieces
            .binary_search_by(|piece| {
                if piece.hi < key {
                    std::cmp::Ordering::Less
                } else if piece.lo > key {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()?;
        let piece = &self.pieces[idx];
        match piece.overlay.get(&key) {
            Some(&Some(value)) => Some(value),
            Some(&None) => None,
            None => piece.base.get(key),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        if lo > hi {
            return;
        }
        let start = self.pieces.partition_point(|piece| piece.hi < lo);
        for piece in &self.pieces[start..] {
            if piece.lo > hi {
                break;
            }
            piece.visit_range(lo.max(piece.lo), hi.min(piece.hi), visitor);
        }
    }
}

impl std::fmt::Debug for ShardedFrozen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFrozen")
            .field("generation", &self.generation)
            .field("len", &self.len)
            .field("shards", &self.pieces.len())
            .finish()
    }
}

impl ShardedMap {
    /// Captures the inner backend's definition from the dispatching
    /// `registry` into a private single-entry registry the engine owns, so
    /// later splits/merges rebuild shards without touching `registry` again.
    fn capture_inner(config: &ShardedConfig, registry: &Registry) -> Result<Registry, PmaError> {
        let inner = Registry::new();
        inner.register(registry.definition(&config.inner_spec)?);
        Ok(inner)
    }

    /// Creates an empty sharded map whose initial directory divides the key
    /// domain evenly into `config.shards` ranges; each shard is built from
    /// `config.inner_spec`, resolved against `registry` (the backend
    /// definition is captured once — `registry` is not retained).
    pub fn new(config: ShardedConfig, registry: &Registry) -> Result<Self, PmaError> {
        config.validate()?;
        let inner = Self::capture_inner(&config, registry)?;
        let shards = uniform_bounds(config.shards)
            .into_iter()
            .map(|(lo, hi)| Ok(Shard::new(lo, hi, inner.build(&config.inner_spec)?, false)))
            .collect::<Result<Vec<_>, PmaError>>()?;
        Self::start(config, inner, shards)
    }

    /// Builds a sharded map pre-populated with `items` (sorted by key, last
    /// entry wins on duplicates): the run is cut into `config.shards`
    /// roughly equal sub-runs at key boundaries — so the fences adapt to the
    /// data instead of assuming a uniform key domain — and each shard is
    /// constructed through the inner backend's native bulk loader.
    pub fn from_sorted(
        config: ShardedConfig,
        registry: &Registry,
        items: &[(Key, Value)],
    ) -> Result<Self, PmaError> {
        config.validate()?;
        check_sorted(items)?;
        let inner = Self::capture_inner(&config, registry)?;
        let items = dedup_sorted_last_wins(items);
        let shards = plan_shards(&items, config.shards)
            .into_iter()
            .map(|(lo, hi, start, end)| {
                let map = inner.build_loaded(&config.inner_spec, &items[start..end])?;
                Ok(Shard::new(lo, hi, map, true))
            })
            .collect::<Result<Vec<_>, PmaError>>()?;
        Self::start(config, inner, shards)
    }

    fn start(
        config: ShardedConfig,
        inner: Registry,
        shards: Vec<Arc<Shard>>,
    ) -> Result<Self, PmaError> {
        let spawn_monitor = config.monitor_interval > Duration::ZERO;
        let pool_size = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(8);
        let engine = Arc::new(Engine {
            config,
            inner,
            dir: AtomicPtr::new(Box::into_raw(Box::new(Directory::new(0, shards)))),
            epoch: EpochRegistry::new(),
            garbage: GarbageBin::new(),
            maintenance: Mutex::new(()),
            pool: WorkerPool::new(pool_size),
            stats: EngineStats::new(),
            retired_owned_applies: AtomicU64::new(0),
            retired_late_replays: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        #[cfg(debug_assertions)]
        {
            let _pin = engine.epoch.pin();
            // SAFETY: pinned above.
            unsafe { engine.dir_ref() }.check_invariants();
        }
        let monitor = spawn_monitor.then(|| {
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("pma-shard-monitor".to_string())
                .spawn(move || monitor_loop(engine))
                .expect("failed to spawn the shard monitor thread")
        });
        Ok(Self { engine, monitor })
    }

    /// Pins the current directory generation into a [`ShardSnapshot`]: every
    /// scan or layout query issued through it observes the same shard
    /// layout, regardless of concurrent splits/merges.
    pub fn snapshot(&self) -> ShardSnapshot<'_> {
        let engine = &*self.engine;
        let pin = engine.epoch.pin();
        // SAFETY: the pin (stored in the snapshot) protects the directory
        // for the snapshot's whole lifetime.
        let dir = unsafe { &*engine.dir.load(Ordering::Acquire) };
        ShardSnapshot {
            engine,
            dir,
            _pin: pin,
        }
    }

    /// Captures an owned point-in-time view of the whole map: every shard of
    /// one directory generation contributes its inner [`ConcurrentMap::frozen`]
    /// base plus a copy of its in-flight delta overlay (non-empty only while
    /// a split/merge is copying that shard), both taken under one hold of the
    /// shard's shared latch so they describe the same shard state. Reads
    /// against the view are repeatable under concurrent writers and
    /// structural ops. Returns `None` when the inner backend does not
    /// support frozen views.
    pub fn frozen(&self) -> Option<ShardedFrozen> {
        let mut span = obs::span(obs::Category::FrozenCapture, 0);
        'restart: loop {
            let _pin = self.engine.epoch.pin();
            // SAFETY: pinned above.
            let dir = unsafe { self.engine.dir_ref() };
            let mut pieces = Vec::with_capacity(dir.shards.len());
            let mut len = 0usize;
            for shard in &dir.shards {
                let gate = shard.latch.read();
                if shard.retired.load(Ordering::Acquire) {
                    // A split/merge re-published under us; the pieces
                    // captured so far may straddle two generations, so
                    // restart against the fresh directory.
                    EngineStats::bump(&self.engine.stats.retired_retries);
                    continue 'restart;
                }
                let base = shard.map.frozen()?;
                let overlay = match &gate.delta {
                    Some(delta) => delta.overlay_snapshot(),
                    None => BTreeMap::new(),
                };
                drop(gate);
                // The view's len is fixed now: base count, plus overlay
                // inserts of keys the base lacks, minus overlay removes of
                // keys it has.
                len += base.len();
                for (&key, pending) in &overlay {
                    match (pending, base.get(key)) {
                        (Some(_), None) => len += 1,
                        (None, Some(_)) => len -= 1,
                        _ => {}
                    }
                }
                pieces.push(FrozenShardPiece {
                    lo: shard.lo,
                    hi: shard.hi,
                    base,
                    overlay,
                });
            }
            span.set_payload(dir.generation);
            return Some(ShardedFrozen {
                generation: dir.generation,
                len,
                pieces,
            });
        }
    }

    /// Number of shards in the current directory.
    pub fn num_shards(&self) -> usize {
        self.snapshot().num_shards()
    }

    /// `(lo, hi, len)` of every shard in directory order.
    pub fn shard_layout(&self) -> Vec<(Key, Key, usize)> {
        self.snapshot().shard_layout()
    }

    /// Snapshot of the engine's operation counters.
    pub fn stats(&self) -> ShardedStats {
        self.engine.stats.snapshot()
    }

    /// Runs one load-monitor round synchronously — exactly what the
    /// background monitor does every `monitor_interval`: decay heat,
    /// advance the hysteresis streaks, split/merge when a streak completes.
    /// Useful for deterministic tests and demos (set `monitor_interval` to
    /// zero to disable the background thread entirely).
    pub fn maintain_once(&self) {
        self.engine.maintain();
    }

    /// Splits the shard at directory index `idx` at its median key,
    /// publishing a new directory. Copy-on-write: writers are only blocked
    /// during the two short fences, not the rebuild (see the [module
    /// docs](self)). Returns `Ok(false)` when the shard holds fewer than two
    /// elements.
    pub fn split_shard(&self, idx: usize) -> Result<bool, PmaError> {
        self.engine.split_shard(idx)
    }

    /// The old stop-the-shard split: holds the shard's exclusive latch
    /// across the whole rebuild, blocking writers throughout. Kept as the
    /// baseline [`ShardedMap::split_shard`] is measured against.
    pub fn split_shard_blocking(&self, idx: usize) -> Result<bool, PmaError> {
        self.engine.split_shard_blocking(idx)
    }

    /// Merges the shards at directory indices `idx` and `idx + 1`,
    /// publishing a new directory. Copy-on-write like
    /// [`ShardedMap::split_shard`]. Returns `Ok(false)` when out of bounds.
    pub fn merge_shards(&self, idx: usize) -> Result<bool, PmaError> {
        self.engine.merge_shards(idx)
    }

    /// Routes a point update to its shard and applies it under the shard's
    /// shared latch (recording it in the delta log when a split/merge is
    /// copying the shard), retrying through the fresh directory when a
    /// concurrent split/merge retired the shard first.
    fn with_shard<R>(&self, key: Key, apply: impl Fn(&Shard, &WriteGate) -> R) -> R {
        loop {
            let backoff = {
                let _pin = self.engine.epoch.pin();
                // SAFETY: pinned above.
                let dir = unsafe { self.engine.dir_ref() };
                let shard = &dir.shards[dir.route(key)];
                let gate = shard.latch.read();
                if shard.retired.load(Ordering::Acquire) {
                    EngineStats::bump(&self.engine.stats.retired_retries);
                    continue;
                }
                // Backpressure: while an in-flight split's delta log is over
                // the cap, back off (with every latch/pin released) instead
                // of appending — the chase drains the log while we sleep, so
                // this converges and bounds the capture's memory.
                match &gate.delta {
                    Some(delta) if delta.over_cap() => {
                        EngineStats::bump(&self.engine.stats.delta_backpressure_waits);
                        true
                    }
                    _ => {
                        shard.ops.fetch_add(1, Ordering::Relaxed);
                        EngineStats::bump(&self.engine.stats.routed_ops);
                        return apply(shard, &gate);
                    }
                }
            };
            if backoff {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

impl Drop for ShardedMap {
    fn drop(&mut self) {
        self.engine.stop.store(true, Ordering::Release);
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
        // SAFETY: `&mut self` means no client can be pinned any more.
        unsafe { drop(Box::from_raw(self.engine.dir.load(Ordering::Acquire))) };
        self.engine.garbage.clear();
    }
}

impl ConcurrentMap for ShardedMap {
    fn insert(&self, key: Key, value: Value) {
        self.with_shard(key, |shard, gate| shard.insert_op(gate, key, value));
    }

    fn remove(&self, key: Key) -> Option<Value> {
        self.with_shard(key, |shard, gate| shard.remove_op(gate, key))
    }

    fn get(&self, key: Key) -> Option<Value> {
        // Lookups hold the shard's shared latch like updates do: during a
        // split/merge they must consult the delta overlay (acknowledged
        // writes live there, not in the quiescent base), and the overlay is
        // reachable through the latch-guarded write gate. A lookup that
        // raced the final fence re-routes through the fresh directory like
        // any writer. Lookups never append to the log, so they are exempt
        // from the delta backpressure writers are subject to.
        loop {
            let _pin = self.engine.epoch.pin();
            // SAFETY: pinned above.
            let dir = unsafe { self.engine.dir_ref() };
            let shard = &dir.shards[dir.route(key)];
            let gate = shard.latch.read();
            if shard.retired.load(Ordering::Acquire) {
                EngineStats::bump(&self.engine.stats.retired_retries);
                continue;
            }
            shard.ops.fetch_add(1, Ordering::Relaxed);
            EngineStats::bump(&self.engine.stats.routed_ops);
            return shard.get_op(&gate, key);
        }
    }

    fn len(&self) -> usize {
        self.snapshot().len()
    }

    fn scan_all(&self) -> ScanStats {
        self.snapshot().scan_all()
    }

    fn scan_range(&self, lo: Key, hi: Key) -> ScanStats {
        self.snapshot().scan_range(lo, hi)
    }

    fn range(&self, lo: Key, hi: Key, visitor: &mut dyn FnMut(Key, Value)) {
        self.snapshot().range(lo, hi, visitor)
    }

    fn collect_block(
        &self,
        lo: Key,
        hi: Key,
        _min_len: usize,
        keys: &mut Vec<Key>,
        values: &mut Vec<Value>,
    ) -> Option<Key> {
        // Materialise the whole range as one block (permitted by the
        // contract): the cross-shard loser-tree merge appends the per-shard
        // streams as whole sorted runs via the SIMD run-copy kernel, which
        // also lets sharded engines compose as merge sources themselves.
        if lo > hi {
            return None;
        }
        let snapshot = self.snapshot();
        crate::merge::merge_blocks(&snapshot.merge_sources(lo, hi), &mut |ks, vs| {
            simd::append_run(keys, ks);
            simd::append_run(values, vs);
        });
        None
    }

    fn insert_batch(&self, items: &[(Key, Value)]) {
        // Split the batch at the shard fences and hand each shard its run
        // through the inner native batch path. Runs that race a split/merge
        // (their shard retired under them) are re-split against the fresh
        // directory and retried — the loop terminates because structural ops
        // are serialised and each retry observes a newer directory.
        let mut remaining: Vec<(Key, Value)> = items.to_vec();
        while !remaining.is_empty() {
            let _pin = self.engine.epoch.pin();
            // SAFETY: pinned above.
            let dir = unsafe { self.engine.dir_ref() };
            let mut runs: Vec<Vec<(Key, Value)>> = vec![Vec::new(); dir.shards.len()];
            for &(k, v) in &remaining {
                runs[dir.route(k)].push((k, v));
            }
            let occupied = runs.iter().filter(|r| !r.is_empty()).count();
            EngineStats::add(&self.engine.stats.batch_runs, occupied as u64);
            // Applies one run under its shard's shared latch; hands the
            // unapplied remainder back when the shard was retired by a
            // concurrent split/merge (the applied prefix is already folded
            // into the replacements, and same-key order is preserved: the
            // retried suffix re-routes to shards whose base contains the
            // prefix). Honours the delta backpressure like the point-op
            // path — the latch is released while waiting, and a run that
            // records into a delta log is chunked so it re-checks the cap
            // every `BATCH_DELTA_CHUNK` ops instead of overshooting it by
            // the full run size.
            fn apply_run(
                engine: &Engine,
                shard: &Shard,
                run: Vec<(Key, Value)>,
            ) -> Option<Vec<(Key, Value)>> {
                let mut start = 0usize;
                while start < run.len() {
                    let gate = shard.latch.read();
                    if shard.retired.load(Ordering::Acquire) {
                        return Some(run[start..].to_vec());
                    }
                    let chunk = match &gate.delta {
                        Some(delta) if delta.over_cap() => {
                            EngineStats::bump(&engine.stats.delta_backpressure_waits);
                            drop(gate);
                            std::thread::sleep(Duration::from_micros(100));
                            continue;
                        }
                        Some(_) => &run[start..run.len().min(start + BATCH_DELTA_CHUNK)],
                        None => &run[start..],
                    };
                    shard.ops.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                    let run_records = shard.batch_op(&gate, chunk);
                    if run_records > 0 {
                        EngineStats::add(&engine.stats.delta_runs, run_records);
                    }
                    start += chunk.len();
                }
                None
            }
            let mut leftovers: Vec<(Key, Value)> = Vec::new();
            if occupied > 1 && remaining.len() >= 2048 {
                // Ingest per-shard runs in parallel on the persistent worker
                // pool (the §3.5 batch path of each inner instance runs
                // independently per shard).
                let (reply_tx, reply_rx) = unbounded();
                let mut jobs = 0usize;
                for (i, run) in runs.into_iter().enumerate() {
                    if run.is_empty() {
                        continue;
                    }
                    let shard = Arc::clone(&dir.shards[i]);
                    let reply = reply_tx.clone();
                    let engine = Arc::clone(&self.engine);
                    self.engine.pool.submit(Box::new(move || {
                        let _ = reply.send(apply_run(&engine, &shard, run));
                    }));
                    jobs += 1;
                }
                drop(reply_tx);
                for _ in 0..jobs {
                    if let Some(run) = reply_rx.recv().expect("a batch worker died") {
                        EngineStats::bump(&self.engine.stats.retired_retries);
                        leftovers.extend(run);
                    }
                }
            } else {
                for (i, run) in runs.into_iter().enumerate() {
                    if !run.is_empty() {
                        if let Some(run) = apply_run(&self.engine, &dir.shards[i], run) {
                            EngineStats::bump(&self.engine.stats.retired_retries);
                            leftovers.extend(run);
                        }
                    }
                }
            }
            // Leftovers from distinct shards stay internally ordered per key
            // (same-key entries always land in the same shard), so upsert
            // semantics are preserved across retries.
            remaining = leftovers;
        }
    }

    fn flush(&self) {
        // Wait for any in-flight split/merge to publish first: its delta log
        // holds acknowledged-but-unfolded operations that only land in the
        // replacement shards at the final fence, and flush promises that
        // every accepted update is applied when it returns.
        let _structural = self.engine.maintenance.lock();
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.engine.dir_ref() };
        for shard in &dir.shards {
            shard.map.flush();
        }
    }

    fn combining_stats(&self) -> Option<CombiningStats> {
        // Live shards plus the counters absorbed from shards retired by
        // splits/merges (`absorb_retired_counters`), so a `late_replays` hit
        // recorded before a structural rebuild is never masked by it.
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.engine.dir_ref() };
        let mut total = CombiningStats {
            owned_applies: self.engine.retired_owned_applies.load(Ordering::Relaxed),
            late_replays: self.engine.retired_late_replays.load(Ordering::Relaxed),
        };
        let mut any = false;
        for shard in &dir.shards {
            if let Some(stats) = shard.map.combining_stats() {
                total.merge(&stats);
                any = true;
            }
        }
        any.then_some(total)
    }

    fn maintenance_stats(&self) -> Option<MaintenanceStats> {
        let stats = self.engine.stats.snapshot();
        let mut total = MaintenanceStats {
            splits: stats.shard_splits,
            merges: stats.shard_merges,
            stall_ns: stats.split_stall_ns,
            thrash_averted: stats.split_thrash_averted,
            cow_copies: 0,
            pinned_generations: 0,
            snapshot_lag: 0,
            chase_rounds: stats.chase_rounds,
            delta_backpressure_waits: stats.delta_backpressure_waits,
            epoch_lag: 0,
        };
        // The copy-on-write counters live in the inner instances: sum the
        // copies and live pins across shards, and report the worst per-shard
        // generation and epoch lag (shard generations and epoch registries
        // are independent clocks, so summing lags would be meaningless).
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.engine.dir_ref() };
        for shard in &dir.shards {
            if let Some(inner) = shard.map.maintenance_stats() {
                total.cow_copies += inner.cow_copies;
                total.pinned_generations += inner.pinned_generations;
                total.snapshot_lag = total.snapshot_lag.max(inner.snapshot_lag);
                total.chase_rounds += inner.chase_rounds;
                total.delta_backpressure_waits += inner.delta_backpressure_waits;
                total.epoch_lag = total.epoch_lag.max(inner.epoch_lag);
            }
        }
        Some(total)
    }

    fn frozen(&self) -> Option<Box<dyn FrozenView>> {
        ShardedMap::frozen(self).map(|frozen| Box::new(frozen) as Box<dyn FrozenView>)
    }

    fn observe_metrics(&self, out: &mut dyn obs::Observe) {
        use obs::MetricSource;
        if let Some(combining) = self.combining_stats() {
            combining.observe(out);
        }
        if let Some(maintenance) = self.maintenance_stats() {
            maintenance.observe(out);
        }
        let stats = self.engine.stats.snapshot();
        out.counter("routed_ops", stats.routed_ops);
        out.counter("retired_retries", stats.retired_retries);
        out.counter("delta_ops", stats.delta_ops);
        out.counter("batch_runs", stats.batch_runs);
        out.counter("cross_shard_scans", stats.cross_shard_scans);
        out.counter("monitor_errors", stats.monitor_errors);
        // Combining-queue depth is an inner-map gauge: capture each shard's
        // metrics privately and sum the depths, so the engine surfaces one
        // `queue_depth` instead of S clashing ones.
        let _pin = self.engine.epoch.pin();
        // SAFETY: pinned above.
        let dir = unsafe { self.engine.dir_ref() };
        let mut depth = 0.0;
        for shard in &dir.shards {
            let mut inner = obs::Observations::new();
            shard.map.observe_metrics(&mut inner);
            if let Some(v) = inner.into_snapshot().value("queue_depth") {
                depth += v;
            }
        }
        out.gauge("queue_depth", depth);
        out.gauge("num_shards", dir.shards.len() as f64);
    }

    fn name(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> &'static Registry {
        pma_core::register_backends(Registry::global());
        Registry::global()
    }

    fn config(shards: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            inner_spec: "pma-batch:1".to_string(),
            auto_manage: false,
            ..ShardedConfig::default()
        }
    }

    #[test]
    fn uniform_bounds_tile_the_domain() {
        for n in [1, 2, 3, 8, 17] {
            let bounds = uniform_bounds(n);
            assert_eq!(bounds.len(), n);
            assert_eq!(bounds[0].0, KEY_MIN);
            assert_eq!(bounds[n - 1].1, KEY_MAX);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1.wrapping_add(1), w[1].0);
                assert!(w[0].0 <= w[0].1);
            }
        }
    }

    #[test]
    fn plan_shards_cuts_at_key_boundaries() {
        let items: Vec<(Key, Value)> = (0..100).map(|k| (k * 2, k)).collect();
        let plan = plan_shards(&items, 4);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].0, KEY_MIN);
        assert_eq!(plan[3].1, KEY_MAX);
        let covered: usize = plan.iter().map(|&(_, _, s, e)| e - s).sum();
        assert_eq!(covered, 100);
        for w in plan.windows(2) {
            assert_eq!(w[0].1.wrapping_add(1), w[1].0);
            assert_eq!(w[0].3, w[1].2);
        }
        // More shards than distinct keys: the plan degrades gracefully.
        let tiny = plan_shards(&[(5, 0), (6, 0)], 8);
        assert!(tiny.len() <= 2);
        // Empty input: uniform fences with empty runs.
        let empty = plan_shards(&[], 3);
        assert_eq!(empty.len(), 3);
        assert!(empty.iter().all(|&(_, _, s, e)| s == e));
    }

    #[test]
    fn plan_shards_survives_duplicate_heavy_runs() {
        // 90% of the input is one repeated key: every percentile cut for
        // n = 4 lands inside the duplicate run. The guard must slide the
        // cuts to key boundaries instead of splitting the run.
        let mut items: Vec<(Key, Value)> = vec![(7, 0); 90];
        items.extend((8..18).map(|k| (k, 0)));
        for n in [2, 4, 8] {
            let plan = plan_shards(&items, n);
            assert!(!plan.is_empty(), "n={n}");
            let covered: usize = plan.iter().map(|&(_, _, s, e)| e - s).sum();
            assert_eq!(covered, items.len(), "n={n}");
            for &(lo, hi, start, end) in &plan {
                assert!(end > start, "empty shard in plan for n={n}");
                assert!(lo <= items[start].0, "n={n}");
                assert!(items[end - 1].0 <= hi, "shard run escapes its fence, n={n}");
            }
            for w in plan.windows(2) {
                assert!(w[0].1 < w[1].0, "fences must stay disjoint, n={n}");
                assert_eq!(w[0].3, w[1].2, "runs must stay contiguous, n={n}");
            }
        }
        // All-duplicates input degrades to a single shard.
        let all_same = plan_shards(&vec![(42, 1); 50], 6);
        assert_eq!(all_same.len(), 1);
        assert_eq!(all_same[0].2, 0);
        assert_eq!(all_same[0].3, 50);
    }

    #[test]
    fn point_ops_route_across_shards() {
        let map = ShardedMap::new(config(4), registry()).unwrap();
        let keys = [KEY_MIN, KEY_MIN / 2, -17, 0, 17, KEY_MAX / 2, KEY_MAX];
        for (i, &k) in keys.iter().enumerate() {
            map.insert(k, i as Value);
        }
        map.flush();
        assert_eq!(map.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(map.get(k), Some(i as Value), "key {k}");
        }
        assert_eq!(map.remove(0), Some(3));
        map.flush();
        assert_eq!(map.len(), keys.len() - 1);
        assert!(map.stats().routed_ops > 0);
    }

    #[test]
    fn cross_shard_scans_preserve_global_order() {
        let map = ShardedMap::new(config(8), registry()).unwrap();
        let keys: Vec<Key> = (-500..500).map(|k| k * (KEY_MAX / 1000)).collect();
        for &k in &keys {
            map.insert(k, k.wrapping_mul(3));
        }
        map.flush();
        let mut seen = Vec::new();
        map.range(KEY_MIN, KEY_MAX, &mut |k, _| seen.push(k));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted);
        let stats = map.scan_all();
        assert_eq!(stats.count as usize, keys.len());
        assert!(map.stats().cross_shard_scans > 0);
        // A bounded range crossing shard fences agrees with the visitor path.
        let (lo, hi) = (sorted[100], sorted[900]);
        let ranged = map.scan_range(lo, hi);
        let mut expected = ScanStats::default();
        map.range(lo, hi, &mut |k, v| expected.visit(k, v));
        assert_eq!(ranged, expected);
        assert_eq!(map.scan_range(10, -10), ScanStats::default());
    }

    #[test]
    fn split_and_merge_keep_contents() {
        let map = ShardedMap::new(config(1), registry()).unwrap();
        for k in 0..2_000i64 {
            map.insert(k, -k);
        }
        map.flush();
        assert!(map.split_shard(0).unwrap());
        assert_eq!(map.num_shards(), 2);
        assert!(map.split_shard(1).unwrap());
        assert_eq!(map.num_shards(), 3);
        assert_eq!(map.len(), 2_000);
        assert_eq!(map.scan_all().count, 2_000);
        for k in (0..2_000i64).step_by(97) {
            assert_eq!(map.get(k), Some(-k));
        }
        let layout = map.shard_layout();
        assert_eq!(layout[0].0, KEY_MIN);
        assert_eq!(layout[layout.len() - 1].1, KEY_MAX);
        // Updates keep flowing through the new directory.
        map.insert(5_000, 5);
        assert_eq!(map.get(5_000), Some(5));
        while map.num_shards() > 1 {
            assert!(map.merge_shards(0).unwrap());
        }
        map.flush();
        assert_eq!(map.len(), 2_001);
        assert_eq!(map.scan_all().count, 2_001);
        let stats = map.stats();
        assert_eq!(stats.shard_splits, 2);
        assert_eq!(stats.shard_merges, 2);
        // Every fence (install + final, splits and merges) counts as stall.
        assert!(stats.split_stall_ns > 0);
        // Splitting an empty or single-element shard is a no-op.
        let empty = ShardedMap::new(config(1), registry()).unwrap();
        assert!(!empty.split_shard(0).unwrap());
        assert!(!empty.merge_shards(0).unwrap());
    }

    #[test]
    fn blocking_split_is_equivalent_and_counts_stall() {
        let map = ShardedMap::new(config(1), registry()).unwrap();
        for k in 0..4_000i64 {
            map.insert(k, k + 7);
        }
        map.flush();
        assert!(map.split_shard_blocking(0).unwrap());
        assert_eq!(map.num_shards(), 2);
        assert_eq!(map.len(), 4_000);
        assert_eq!(map.scan_all().count, 4_000);
        for k in (0..4_000i64).step_by(131) {
            assert_eq!(map.get(k), Some(k + 7));
        }
        let stats = map.stats();
        assert_eq!(stats.shard_splits, 1);
        assert!(stats.split_stall_ns > 0);
        // The blocking path captures no delta (writers are fenced out).
        assert_eq!(stats.delta_ops, 0);
        // Out-of-range and too-small shards are no-ops on this path too.
        assert!(!map.split_shard_blocking(99).unwrap());
    }

    #[test]
    fn incremental_split_folds_concurrent_writes() {
        let map = ShardedMap::new(config(1), registry()).unwrap();
        for k in 0..60_000i64 {
            map.insert(k * 2, k);
        }
        map.flush();
        // Writers land odd keys while the split copies the even preload.
        std::thread::scope(|scope| {
            let map = &map;
            let writers: Vec<_> = (0..2)
                .map(|t| {
                    scope.spawn(move || {
                        for i in 0..15_000i64 {
                            let key = (i * 2 + 1) * (t + 1);
                            map.insert(key, -key);
                        }
                    })
                })
                .collect();
            assert!(map.split_shard(0).unwrap());
            for w in writers {
                w.join().unwrap();
            }
        });
        map.flush();
        assert_eq!(map.num_shards(), 2);
        // Model: preload + both writers' odd keys (upserts may overlap
        // between writers at odd multiples, last-wins either way since the
        // value depends only on the key).
        let mut model = std::collections::BTreeMap::new();
        for k in 0..60_000i64 {
            model.insert(k * 2, k);
        }
        for t in 0..2i64 {
            for i in 0..15_000i64 {
                let key = (i * 2 + 1) * (t + 1);
                model.insert(key, -key);
            }
        }
        assert_eq!(map.len(), model.len(), "split lost or duplicated keys");
        let stats = map.scan_all();
        assert_eq!(stats.count as usize, model.len());
        assert_eq!(
            stats.key_sum,
            model.keys().map(|&k| k as i128).sum::<i128>()
        );
        for (&k, &v) in model.iter().step_by(313) {
            assert_eq!(map.get(k), Some(v), "key {k}");
        }
        assert_eq!(map.stats().shard_splits, 1);
    }

    #[test]
    fn snapshot_pins_one_directory_generation() {
        let map = ShardedMap::new(config(1), registry()).unwrap();
        for k in 0..2_000i64 {
            map.insert(k, k);
        }
        map.flush();
        let before = map.snapshot();
        assert_eq!(before.generation(), 0);
        assert_eq!(before.num_shards(), 1);
        // A split re-publishes under the live snapshot...
        assert!(map.split_shard(0).unwrap());
        // ...which keeps observing the pinned generation's layout, exactly
        // once per key, while fresh snapshots see the new one.
        assert_eq!(before.generation(), 0);
        assert_eq!(before.num_shards(), 1);
        assert_eq!(before.scan_all().count, 2_000);
        let mut last = Key::MIN;
        let mut seen = 0u64;
        before.range(KEY_MIN, KEY_MAX, &mut |k, _| {
            assert!(seen == 0 || k > last, "snapshot scan order violated");
            last = k;
            seen += 1;
        });
        assert_eq!(seen, 2_000);
        let after = map.snapshot();
        assert_eq!(after.generation(), 1);
        assert_eq!(after.num_shards(), 2);
        assert_eq!(after.scan_all().count, 2_000);
        assert_eq!(after.len(), before.len());
        assert!(!after.is_empty());
        drop(before);
        drop(after);
        // Merging bumps the generation again.
        assert!(map.merge_shards(0).unwrap());
        assert_eq!(map.snapshot().generation(), 2);
    }

    #[test]
    fn from_sorted_adapts_fences_to_the_data() {
        let items: Vec<(Key, Value)> = (0..10_000i64).map(|k| (k, k * 2)).collect();
        let map = ShardedMap::from_sorted(config(4), registry(), &items).unwrap();
        assert_eq!(map.num_shards(), 4);
        assert_eq!(map.len(), 10_000);
        // Data-driven fences: every shard holds a non-trivial run.
        for (lo, hi, len) in map.shard_layout() {
            assert!(lo <= hi);
            assert!(len >= 1_000, "shard [{lo}, {hi}] only has {len} elements");
        }
        assert_eq!(map.scan_range(2_400, 7_600).count, 5_201);
        // Duplicates resolve to the last entry.
        let dup = ShardedMap::from_sorted(config(2), registry(), &[(1, 1), (1, 2)]).unwrap();
        assert_eq!(dup.get(1), Some(2));
        assert!(ShardedMap::from_sorted(config(2), registry(), &[(2, 0), (1, 0)]).is_err());
    }

    #[test]
    fn batches_split_at_shard_fences() {
        let map = ShardedMap::new(config(4), registry()).unwrap();
        let step = KEY_MAX / 2_000;
        let items: Vec<(Key, Value)> = (-1_500..1_500i64).map(|k| (k * step, k)).collect();
        map.insert_batch(&items);
        map.flush();
        assert_eq!(map.len(), items.len());
        assert!(map.stats().batch_runs >= 2, "batch must fan out");
        let stats = map.scan_all();
        assert_eq!(stats.count as usize, items.len());
    }

    #[test]
    fn auto_monitor_splits_hot_and_merges_cold_shards() {
        let cfg = ShardedConfig {
            shards: 1,
            inner_spec: "pma-batch:1".to_string(),
            split_above: 1_000,
            merge_below: 64,
            hysteresis_rounds: 2,
            monitor_interval: Duration::from_millis(5),
            auto_manage: true,
        };
        let map = ShardedMap::new(cfg, registry()).unwrap();
        for k in 0..6_000i64 {
            map.insert(k, k);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while map.stats().shard_splits == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(map.stats().shard_splits > 0, "monitor never split");
        map.flush();
        assert_eq!(map.len(), 6_000);
        assert_eq!(map.scan_all().count, 6_000);
        // Empty the map; the monitor merges the now-cold shards back down.
        for k in 0..6_000i64 {
            map.remove(k);
        }
        map.flush();
        while map.stats().shard_merges == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(map.stats().shard_merges > 0, "monitor never merged");
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn hysteresis_defers_and_averts_boundary_thrash() {
        // No background monitor (interval zero); drive rounds by hand.
        let cfg = ShardedConfig {
            shards: 1,
            inner_spec: "pma-batch:1".to_string(),
            split_above: 100,
            merge_below: 50,
            hysteresis_rounds: 3,
            monitor_interval: Duration::ZERO,
            auto_manage: true,
        };
        let map = ShardedMap::new(cfg, registry()).unwrap();
        for k in 0..150i64 {
            map.insert(k, k);
        }
        map.flush();
        // Two rounds above threshold: streak at 2 < 3, no split yet.
        map.maintain_once();
        map.maintain_once();
        assert_eq!(map.stats().shard_splits, 0, "split fired before hysteresis");
        // Load drops back under the boundary: the streak resets and the
        // suppressed crossing is counted as thrash averted.
        for k in 0..100i64 {
            map.remove(k);
        }
        map.flush();
        map.maintain_once();
        assert_eq!(map.stats().shard_splits, 0);
        assert!(
            map.stats().split_thrash_averted >= 1,
            "lapsed crossing must count as thrash averted: {:?}",
            map.stats()
        );
        // A crossing that persists for the full window does split.
        for k in 0..150i64 {
            map.insert(k, k);
        }
        map.flush();
        map.maintain_once();
        map.maintain_once();
        assert_eq!(map.stats().shard_splits, 0);
        map.maintain_once();
        assert_eq!(
            map.stats().shard_splits,
            1,
            "persistent crossing must split"
        );
        // Fresh shards restart their merge streaks: three more rounds of
        // cold load are needed before the halves merge back.
        for k in 0..200i64 {
            map.remove(k);
        }
        map.flush();
        map.maintain_once();
        map.maintain_once();
        assert_eq!(map.stats().shard_merges, 0, "merge fired before hysteresis");
        map.maintain_once();
        assert_eq!(map.stats().shard_merges, 1, "persistent cold must merge");
    }

    #[test]
    fn aborted_split_folds_captured_ops_back_into_the_live_shard() {
        use pma_common::registry::{BackendDef, BackendSpec};

        // A loader that can be told to fail: split/merge rebuilds then
        // abort *after* the delta log captured concurrent ops, exercising
        // the fold-back path (dropping the log would lose those writes).
        static FAIL_LOADS: AtomicBool = AtomicBool::new(false);
        fn build_flaky(
            _registry: &Registry,
            _spec: &BackendSpec<'_>,
        ) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
            Ok(Arc::new(pma_core::ConcurrentPma::new(
                pma_core::PmaParams::small(),
            )?))
        }
        fn load_flaky(
            _registry: &Registry,
            _spec: &BackendSpec<'_>,
            items: &[(Key, Value)],
        ) -> Result<Arc<dyn ConcurrentMap>, PmaError> {
            if FAIL_LOADS.load(Ordering::Relaxed) {
                return Err(PmaError::invalid("flaky", "load failure injected"));
            }
            Ok(Arc::new(pma_core::ConcurrentPma::from_sorted(
                pma_core::PmaParams::small(),
                items,
            )?))
        }
        fn label_flaky(_spec: &BackendSpec<'_>) -> String {
            "Flaky".to_string()
        }

        let local = Registry::new();
        local.register(BackendDef {
            name: "flaky",
            description: "test backend with injectable load failures",
            label: label_flaky,
            build: build_flaky,
            build_loaded: Some(load_flaky),
        });
        let cfg = ShardedConfig {
            shards: 1,
            inner_spec: "flaky".to_string(),
            auto_manage: false,
            monitor_interval: Duration::ZERO,
            ..ShardedConfig::default()
        };
        let map = ShardedMap::new(cfg, &local).unwrap();
        for k in 0..1_000i64 {
            map.insert(k, k);
        }
        map.flush();

        // Writers land while splits keep aborting (loader failure injected
        // after the log is installed): every op they record in a capture
        // window must survive the abort.
        FAIL_LOADS.store(true, Ordering::Relaxed);
        std::thread::scope(|scope| {
            let map = &map;
            let writer = scope.spawn(move || {
                for k in 10_000..11_000i64 {
                    map.insert(k, -k);
                }
            });
            for _ in 0..20 {
                assert!(map.split_shard(0).is_err(), "injected failure expected");
            }
            writer.join().unwrap();
        });
        FAIL_LOADS.store(false, Ordering::Relaxed);
        map.flush();
        assert_eq!(map.num_shards(), 1, "aborted splits must not publish");
        assert_eq!(map.len(), 2_000, "an aborted split lost captured ops");
        for k in (10_000..11_000i64).step_by(97) {
            assert_eq!(map.get(k), Some(-k));
        }
        // With the injection off the same shard still splits fine.
        assert!(map.split_shard(0).unwrap());
        assert_eq!(map.num_shards(), 2);
        assert_eq!(map.scan_all().count, 2_000);
    }

    #[test]
    fn maintenance_stats_surface_engine_counters() {
        let map = ShardedMap::new(config(1), registry()).unwrap();
        for k in 0..2_000i64 {
            map.insert(k, k);
        }
        map.flush();
        assert!(map.split_shard(0).unwrap());
        assert!(map.merge_shards(0).unwrap());
        let m = map
            .maintenance_stats()
            .expect("sharded reports maintenance");
        assert_eq!(m.splits, 1);
        assert_eq!(m.merges, 1);
        assert!(m.stall_ns > 0);
        assert_eq!(m.thrash_averted, 0);
    }

    #[test]
    fn frozen_view_is_repeatable_under_later_writes_and_splits() {
        let map = ShardedMap::new(config(2), registry()).unwrap();
        for k in -500..500i64 {
            map.insert(k, k * 3);
        }
        map.flush();
        let model: Vec<(Key, Value)> = (-500..500i64).map(|k| (k, k * 3)).collect();

        let frozen = map.frozen().expect("pma inner supports frozen views");
        let before_gen = frozen.generation();
        assert_eq!(frozen.len(), 1_000);
        assert_eq!(frozen.collect_range(KEY_MIN, KEY_MAX), model);

        // Mutate the live map and restructure the directory under the view.
        for k in -500..500i64 {
            map.insert(k, -k);
        }
        map.remove(0);
        assert!(map.split_shard(1).unwrap());
        map.flush();

        assert_eq!(frozen.generation(), before_gen);
        assert_eq!(frozen.len(), 1_000);
        assert_eq!(frozen.collect_range(KEY_MIN, KEY_MAX), model);
        assert_eq!(frozen.get(0), Some(0));
        assert_eq!(frozen.get(-123), Some(-369));
        let stats = frozen.scan_range(-10, 9);
        assert_eq!(stats.count, 20);
        // A view frozen now sees the new state.
        let after = map.frozen().unwrap();
        assert_eq!(after.len(), 999);
        assert_eq!(after.get(0), None);
        assert_eq!(after.get(-123), Some(123));
    }

    #[test]
    fn frozen_composes_delta_overlay_mid_split() {
        let map = ShardedMap::new(config(2), registry()).unwrap();
        for k in 0..100i64 {
            map.insert(k * 2, k);
        }
        map.flush();

        // Install a delta log on the shard owning the non-negative range,
        // exactly as a split's install fence does: from here on writers
        // record instead of touching the quiescent base.
        let shard = {
            let _pin = map.engine.epoch.pin();
            // SAFETY: pinned above.
            let dir = unsafe { map.engine.dir_ref() };
            Arc::clone(&dir.shards[dir.route(0)])
        };
        let delta = Arc::new(DeltaLog::with_cap(DELTA_BACKPRESSURE));
        shard.latch.write().delta = Some(Arc::clone(&delta));

        map.insert(1, -1); // new key, pending in the log
        map.insert(0, -2); // overwrites a base key
        map.remove(2); // removes a base key
        assert_eq!(delta.len(), 3, "mid-split writes must land in the log");

        let frozen = map.frozen().expect("pma inner supports frozen views");
        assert_eq!(
            frozen.len(),
            100,
            "one pending insert and one pending remove cancel out"
        );
        assert_eq!(frozen.get(1), Some(-1));
        assert_eq!(frozen.get(0), Some(-2));
        assert_eq!(frozen.get(2), None);
        assert_eq!(frozen.get(4), Some(2));
        let head = frozen.collect_range(0, 6);
        assert_eq!(head, vec![(0, -2), (1, -1), (4, 2), (6, 3)]);

        // The overlay is a copy: later recorded ops do not leak in.
        map.insert(1, -100);
        assert_eq!(frozen.get(1), Some(-1));

        // Fold the log back like an aborted split would, so the map drops
        // consistent.
        shard.latch.write().delta = None;
        for op in delta.take_all() {
            op.apply(shard.map.as_ref());
        }
        map.flush();
        assert_eq!(map.get(1), Some(-100));
    }

    #[test]
    fn insert_batch_under_split_delta_records_runs_not_items() {
        let map = ShardedMap::new(config(2), registry()).unwrap();
        map.insert(0, 0);
        map.flush();

        // Install a delta log on the shard owning the non-negative range,
        // exactly as a split's install fence does.
        let shard = {
            let _pin = map.engine.epoch.pin();
            // SAFETY: pinned above.
            let dir = unsafe { map.engine.dir_ref() };
            Arc::clone(&dir.shards[dir.route(0)])
        };
        let delta = Arc::new(DeltaLog::with_cap(DELTA_BACKPRESSURE));
        shard.latch.write().delta = Some(Arc::clone(&delta));

        // A whole batch arriving mid-split must land as run records (one
        // stripe pass), not decay to one delta record per item.
        let run: Vec<(Key, Value)> = (0..4096).map(|k| (k as Key, k as Value)).collect();
        map.insert_batch(&run);

        assert_eq!(delta.len(), 4096, "every batch item is captured");
        let stats = map.stats();
        assert!(stats.delta_runs >= 1, "run capture path not taken");
        assert!(
            stats.delta_runs * 10 <= 4096,
            "run capture must beat per-item recording 10x, got {} records for 4096 items",
            stats.delta_runs
        );
        // Reads see the captured run through the overlay while the base
        // stays quiescent.
        assert_eq!(map.get(1234), Some(1234));

        // Fold the log back like an aborted split would and verify nothing
        // was lost or duplicated.
        shard.latch.write().delta = None;
        for rec in delta.take_all() {
            rec.apply(shard.map.as_ref());
        }
        map.flush();
        assert_eq!(map.len(), 4096);
        assert_eq!(map.get(4095), Some(4095));
        assert_eq!(map.get(0), Some(0), "batch upsert overwrote the seed key");
    }

    #[test]
    fn merge_waits_for_both_shards_to_see_writes() {
        let map = ShardedMap::new(config(2), registry()).unwrap();
        // Two empty seed shards sum far below merge_below, but neither has
        // seen a write: the monitor must leave the directory alone no matter
        // how many rounds elapse.
        for _ in 0..10 {
            map.maintain_once();
        }
        assert_eq!(map.num_shards(), 2, "never-written seed shards merged");

        // A write to only one member keeps the pair ineligible.
        map.insert(KEY_MIN + 1, 1);
        for _ in 0..10 {
            map.maintain_once();
        }
        assert_eq!(map.num_shards(), 2, "half-written pair merged");

        // Once both members have seen a write, the cold pair merges after
        // the hysteresis streak completes.
        map.insert(KEY_MAX - 1, 2);
        for _ in 0..10 {
            map.maintain_once();
        }
        assert_eq!(map.num_shards(), 1);
        assert_eq!(map.get(KEY_MIN + 1), Some(1));
        assert_eq!(map.get(KEY_MAX - 1), Some(2));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ShardedConfig {
            shards: 0,
            ..config(1)
        }
        .validate()
        .is_err());
        assert!(ShardedConfig {
            inner_spec: "sharded:2:pma-sync".to_string(),
            ..config(1)
        }
        .validate()
        .is_err());
        assert!(ShardedConfig {
            inner_spec: " ".to_string(),
            ..config(1)
        }
        .validate()
        .is_err());
        assert!(ShardedConfig {
            split_above: 10,
            merge_below: 20,
            ..config(1)
        }
        .validate()
        .is_err());
        assert!(ShardedMap::new(config(1), registry()).is_ok());
        let unknown = ShardedConfig {
            inner_spec: "warp-drive".to_string(),
            ..config(2)
        };
        assert!(ShardedMap::new(unknown, registry()).is_err());
    }
}
